//! The traffic-controller components for both bridge designs.

use pnp_core::{ComponentBuilder, ReceiveBinds, RecvAttachment, SendAttachment};
use pnp_kernel::{expr, Action, Guard};

use crate::props::{RECV_FAIL_SIGNAL, RECV_SUCC_SIGNAL};

/// Which end of the bridge a controller manages, which fixes its start
/// phase: the blue controller admits first, the red controller first waits
/// for the blue batch to cross.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerSide {
    /// Starts in the admitting phase.
    Blue,
    /// Starts waiting for the other side's cars to exit.
    Red,
}

/// Builds a controller for the *exactly-N-cars-per-turn* design (Fig. 13).
///
/// Each cycle the controller admits exactly `n` cars from its enter
/// connector (blocking receives), then collects exactly `n` exit
/// notifications from the opposite side's cars before admitting again. No
/// controller-to-controller communication exists in this design.
pub fn exactly_n_controller(
    name: &str,
    side: ControllerSide,
    n: i32,
    enter: &RecvAttachment,
    exit: &RecvAttachment,
) -> ComponentBuilder {
    let mut ctrl = ComponentBuilder::new(name);
    let admitted = ctrl.local("admitted", 0);
    let exits = ctrl.local("exits", 0);

    // Declare in an order that lets `set_initial` pick the right phase.
    let admit_loop = ctrl.location("admit_loop");
    let exit_loop = ctrl.location("exit_loop");
    let admitted_one = ctrl.location("admitted_one");
    let saw_exit = ctrl.location("saw_exit");

    // Admitting phase: take n enter requests, one at a time. Receiving a
    // request *is* the admission — with synchronous car-side send ports the
    // car is released exactly here. recv_msg's first internal transition is
    // unguarded, so the turn-count guard sits on a gate location in front.
    let admit_gate = ctrl.location("admit_gate");
    ctrl.transition(
        admit_loop,
        admit_gate,
        Guard::when(expr::lt(expr::local(admitted), n.into())),
        Action::Skip,
        "may admit another",
    );
    ctrl.recv_msg(
        admit_gate,
        admitted_one,
        enter,
        None,
        ReceiveBinds::ignore(),
    );
    let count_admit = Action::assign(admitted, expr::local(admitted) + 1.into());
    ctrl.transition(
        admitted_one,
        admit_loop,
        Guard::always(),
        count_admit,
        "count admission",
    );
    ctrl.transition(
        admit_loop,
        exit_loop,
        Guard::when(expr::ge(expr::local(admitted), n.into())),
        Action::assign(exits, 0.into()),
        "turn over: await exits",
    );

    // Exit phase: collect n exit notifications from the opposite side's
    // cars, then start the next admitting turn.
    let exit_gate = ctrl.location("exit_gate");
    ctrl.transition(
        exit_loop,
        exit_gate,
        Guard::when(expr::lt(expr::local(exits), n.into())),
        Action::Skip,
        "await another exit",
    );
    ctrl.recv_msg(exit_gate, saw_exit, exit, None, ReceiveBinds::ignore());
    ctrl.transition(
        saw_exit,
        exit_loop,
        Guard::always(),
        Action::assign(exits, expr::local(exits) + 1.into()),
        "count exit",
    );
    ctrl.transition(
        exit_loop,
        admit_loop,
        Guard::when(expr::ge(expr::local(exits), n.into())),
        Action::assign(admitted, 0.into()),
        "my turn again",
    );

    match side {
        ControllerSide::Blue => ctrl.set_initial(admit_loop),
        ControllerSide::Red => {
            // The red controller's first turn only begins after the blue
            // batch crosses; entering at the exit-collection phase encodes
            // exactly that.
            ctrl.set_initial(exit_loop)
        }
    }
    ctrl
}

/// Builds a controller for the *at-most-N-cars-per-turn* design (Fig. 14).
///
/// The controller polls (non-blocking receives) its enter connector while
/// it holds the turn, admitting up to `n` cars but yielding immediately
/// when none are waiting. Yielding hands the opposite controller the number
/// of cars admitted this turn over a controller-to-controller connector;
/// the receiving controller collects exactly that many exit notifications
/// before starting its own turn, which keeps the bridge safe.
pub fn at_most_n_controller(
    name: &str,
    side: ControllerSide,
    n: i32,
    enter: &RecvAttachment,
    exit: &RecvAttachment,
    yield_turn: &SendAttachment,
    take_turn: &RecvAttachment,
) -> ComponentBuilder {
    let mut ctrl = ComponentBuilder::new(name);
    let admitted = ctrl.local("admitted", 0);
    let needed = ctrl.local("needed", 0);
    let got = ctrl.local("got", 0);
    let status = ctrl.local("status", 0);

    let admit_loop = ctrl.location("admit_loop");
    let admit_check = ctrl.location("admit_check");
    let yield_now = ctrl.location("yield");
    let handover_wait = ctrl.location("handover_wait");
    let handover_check = ctrl.location("handover_check");
    let collect = ctrl.location("collect");
    let collect_check = ctrl.location("collect_check");

    let succ = Guard::when(expr::eq(expr::local(status), RECV_SUCC_SIGNAL.into()));
    let fail = Guard::when(expr::eq(expr::local(status), RECV_FAIL_SIGNAL.into()));

    // Admitting phase (my turn): poll for a waiting car.
    let admit_gate = ctrl.location("admit_gate");
    ctrl.transition(
        admit_loop,
        admit_gate,
        Guard::when(expr::lt(expr::local(admitted), n.into())),
        Action::Skip,
        "poll for a car",
    );
    ctrl.recv_msg(
        admit_gate,
        admit_check,
        enter,
        None,
        ReceiveBinds::ignore().with_status(status),
    );
    ctrl.transition(
        admit_check,
        admit_loop,
        succ.clone(),
        Action::assign(admitted, expr::local(admitted) + 1.into()),
        "admit car",
    );
    // No car waiting: yield the turn immediately (the design's whole
    // point).
    ctrl.transition(
        admit_check,
        yield_now,
        fail.clone(),
        Action::Skip,
        "nobody waiting: yield",
    );
    ctrl.transition(
        admit_loop,
        yield_now,
        Guard::when(expr::ge(expr::local(admitted), n.into())),
        Action::Skip,
        "batch full: yield",
    );

    // Yield: tell the other controller how many cars it must see exit.
    let yielded = ctrl.location("yielded");
    ctrl.send_msg(
        yield_now,
        yielded,
        yield_turn,
        expr::local(admitted),
        0.into(),
        None,
    );
    ctrl.transition(
        yielded,
        handover_wait,
        Guard::always(),
        Action::assign(got, 0.into()),
        "await turn",
    );

    // Wait (polling) for the other controller to yield back.
    ctrl.recv_msg(
        handover_wait,
        handover_check,
        take_turn,
        None,
        ReceiveBinds::data_into(needed).with_status(status),
    );
    ctrl.transition(
        handover_check,
        collect,
        succ.clone(),
        Action::Skip,
        "turn received",
    );
    ctrl.transition(
        handover_check,
        handover_wait,
        fail.clone(),
        Action::Skip,
        "no turn yet",
    );

    // Collect exactly `needed` exit notifications before admitting.
    let collect_gate = ctrl.location("collect_gate");
    ctrl.transition(
        collect,
        collect_gate,
        Guard::when(expr::lt(expr::local(got), expr::local(needed))),
        Action::Skip,
        "poll for an exit",
    );
    ctrl.recv_msg(
        collect_gate,
        collect_check,
        exit,
        None,
        ReceiveBinds::ignore().with_status(status),
    );
    ctrl.transition(
        collect_check,
        collect,
        succ,
        Action::assign(got, expr::local(got) + 1.into()),
        "count exit",
    );
    ctrl.transition(collect_check, collect, fail, Action::Skip, "no exit yet");
    ctrl.transition(
        collect,
        admit_loop,
        Guard::when(expr::ge(expr::local(got), expr::local(needed))),
        Action::assign(admitted, 0.into()),
        "bridge clear: my turn",
    );

    match side {
        ControllerSide::Blue => ctrl.set_initial(admit_loop),
        ControllerSide::Red => ctrl.set_initial(handover_wait),
    }
    ctrl
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_core::{ChannelKind, RecvPortKind, SendPortKind, SystemBuilder};

    #[test]
    fn controller_components_validate() {
        let mut sys = SystemBuilder::new();
        let e = sys.connector("enter", ChannelKind::Fifo { capacity: 2 });
        let x = sys.connector("exit", ChannelKind::SingleSlot);
        let t1 = sys.connector("to_other", ChannelKind::SingleSlot);
        let t2 = sys.connector("from_other", ChannelKind::SingleSlot);
        let enter = sys.recv_port(e, RecvPortKind::blocking());
        let exit = sys.recv_port(x, RecvPortKind::blocking());
        let yield_turn = sys.send_port(t1, SendPortKind::SynBlocking);
        let take_turn = sys.recv_port(t2, RecvPortKind::nonblocking());

        let blue = exactly_n_controller("b", ControllerSide::Blue, 2, &enter, &exit);
        let red = exactly_n_controller("r", ControllerSide::Red, 2, &enter, &exit);
        assert_eq!(blue.location_count(), red.location_count());

        let am = at_most_n_controller(
            "b2",
            ControllerSide::Blue,
            2,
            &enter,
            &exit,
            &yield_turn,
            &take_turn,
        );
        assert!(am.location_count() > blue.location_count());
    }
}
