//! Properties and measurements for the bridge designs.

use pnp_kernel::{expr, EventKind, Predicate, Program, Proposition, Simulator};

/// The `RecvStatus` success signal value, re-exported for component guards.
pub(crate) const RECV_SUCC_SIGNAL: i32 = pnp_core::signals::RECV_SUCC;
/// The `RecvStatus` failure signal value.
pub(crate) const RECV_FAIL_SIGNAL: i32 = pnp_core::signals::RECV_FAIL;

/// The bridge safety property (paper Section 4): cars traveling in opposite
/// directions are never on the bridge at the same time.
///
/// Returns a named invariant over the `blue_on_bridge` / `red_on_bridge`
/// globals, ready for
/// [`SafetyChecks::invariants`](pnp_kernel::SafetyChecks::invariants).
///
/// # Panics
///
/// Panics if `program` is not a bridge system (missing the occupancy
/// globals).
pub fn safety_invariant(program: &Program) -> (String, Predicate) {
    let blue = program
        .global_by_name("blue_on_bridge")
        .expect("not a bridge program: blue_on_bridge missing");
    let red = program
        .global_by_name("red_on_bridge")
        .expect("not a bridge program: red_on_bridge missing");
    (
        "no opposite-direction cars on the bridge".to_string(),
        Predicate::from_expr(expr::not(expr::and(
            expr::gt(expr::global(blue), 0.into()),
            expr::gt(expr::global(red), 0.into()),
        ))),
    )
}

/// LTL propositions `blue_on` and `red_on` (some car of that color is on
/// the bridge), for liveness-style queries.
///
/// # Panics
///
/// Panics if `program` is not a bridge system.
pub fn side_props(program: &Program) -> Vec<Proposition> {
    let blue = program
        .global_by_name("blue_on_bridge")
        .expect("not a bridge program: blue_on_bridge missing");
    let red = program
        .global_by_name("red_on_bridge")
        .expect("not a bridge program: red_on_bridge missing");
    vec![
        Proposition::new(
            "blue_on",
            Predicate::from_expr(expr::gt(expr::global(blue), 0.into())),
        ),
        Proposition::new(
            "red_on",
            Predicate::from_expr(expr::gt(expr::global(red), 0.into())),
        ),
    ]
}

/// Runs the random simulator for `steps` steps and counts completed
/// crossings per side, identified by the cars' "drive off bridge"
/// transitions. Returns `(blue_crossings, red_crossings)`.
///
/// This quantifies the paper's informal efficiency comparison between the
/// two designs (e.g. with no red cars, the exactly-`N` design stalls after
/// one batch while the at-most-`N` design keeps yielding the empty turn).
///
/// # Errors
///
/// Returns [`pnp_kernel::KernelError`] if the model is broken.
pub fn crossings_in(
    program: &Program,
    steps: usize,
    seed: u64,
) -> Result<(u64, u64), pnp_kernel::KernelError> {
    let mut blue = 0u64;
    let mut red = 0u64;
    let car_colors: Vec<Option<bool>> = program
        .processes()
        .iter()
        .map(|p| {
            if p.name().starts_with("Blue") {
                Some(true)
            } else if p.name().starts_with("Red") {
                Some(false)
            } else {
                None
            }
        })
        .collect();
    let mut sim = Simulator::new(program, seed);
    sim.run_with(steps, |_, events| {
        for event in events {
            if event.label() == "drive off bridge" && matches!(event.kind(), EventKind::Internal) {
                match car_colors[event.proc().index()] {
                    Some(true) => blue += 1,
                    Some(false) => red += 1,
                    None => {}
                }
            }
        }
    })?;
    Ok((blue, red))
}
