//! # pnp-bridge — the single-lane bridge case study
//!
//! Reproduces the worked example of the paper's Section 4 (Figs. 12–14): a
//! bridge wide enough for a single lane of traffic, with *blue* cars
//! entering from one end and *red* cars from the other, and one traffic
//! controller per end. Cars request entry from their controller and notify
//! the opposite controller when they exit; the safety property is that cars
//! traveling in opposite directions are never on the bridge together.
//!
//! Two designs are provided, both assembled purely from the PnP building
//! blocks in [`pnp_core`]:
//!
//! * [`exactly_n_bridge`] (Fig. 13) — controllers take strict turns
//!   admitting exactly `N` cars. The send-port kind used for enter requests
//!   is a parameter: with [`SendPortKind::AsynBlocking`] the design has the
//!   paper's seeded interaction bug (a car drives on as soon as its request
//!   is *buffered*), which verification exposes; swapping in
//!   [`SendPortKind::SynBlocking`] — one building block, no component
//!   change — fixes it.
//! * [`at_most_n_bridge`] (Fig. 14) — controllers may yield their turn
//!   early when no cars are waiting, which requires two extra
//!   controller-to-controller connectors and polling (non-blocking) receive
//!   ports throughout.
//!
//! [`safety_invariant`] expresses "no crash" as a checker invariant, and
//! [`crossings_in`] measures traffic throughput under the random
//! simulator, quantifying the paper's informal claim that the at-most-`N`
//! design yields better traffic flow.

#![warn(missing_docs)]
mod cars;
mod controllers;
mod designs;
mod props;

pub use cars::car_component;
pub use controllers::{at_most_n_controller, exactly_n_controller, ControllerSide};
pub use designs::{at_most_n_bridge, build_bridge, exactly_n_bridge, BridgeConfig, BridgeDesign};
pub use props::{crossings_in, safety_invariant, side_props};

pub use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
