//! Assembly of the two bridge designs from the PnP building blocks.

use pnp_core::{ChannelKind, RecvPortKind, SendPortKind, System, SystemBuildError, SystemBuilder};

use crate::cars::car_component;
use crate::controllers::{at_most_n_controller, exactly_n_controller, ControllerSide};

/// Which bridge design to assemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeDesign {
    /// Strict alternation, exactly `N` cars per turn (Fig. 13).
    ExactlyN,
    /// Early-yield turns, at most `N` cars per turn (Fig. 14).
    AtMostN,
}

/// Parameters for a bridge system.
#[derive(Debug, Clone, Copy)]
pub struct BridgeConfig {
    /// Number of blue cars.
    pub blue_cars: usize,
    /// Number of red cars.
    pub red_cars: usize,
    /// Cars admitted per turn (`N`).
    pub cars_per_turn: i32,
    /// Crossings per car; `None` makes cars loop forever.
    pub laps: Option<i32>,
    /// The send-port kind cars use for *enter requests*. The paper's buggy
    /// initial design uses [`SendPortKind::AsynBlocking`]; the one-block
    /// fix swaps in [`SendPortKind::SynBlocking`].
    pub enter_send: SendPortKind,
    /// The channel kind buffering enter requests (the paper uses a FIFO
    /// queue sized for the cars).
    pub enter_channel: ChannelKind,
}

impl BridgeConfig {
    /// The paper's *initial* (buggy) Fig. 13 configuration: asynchronous
    /// blocking enter sends, one car per side, one car per turn.
    pub fn buggy() -> BridgeConfig {
        BridgeConfig {
            blue_cars: 1,
            red_cars: 1,
            cars_per_turn: 1,
            laps: None,
            enter_send: SendPortKind::AsynBlocking,
            enter_channel: ChannelKind::Fifo { capacity: 2 },
        }
    }

    /// The fixed configuration: the single building-block swap to
    /// synchronous blocking enter sends.
    pub fn fixed() -> BridgeConfig {
        BridgeConfig {
            enter_send: SendPortKind::SynBlocking,
            ..BridgeConfig::buggy()
        }
    }

    /// The fixed design deployed over a *lossy* enter channel, with a
    /// checking (non-retrying) synchronous send port. The channel may drop
    /// an enter request and report the loss as `SEND_FAIL`; the checking
    /// port passes the failure on instead of retrying, and the car —
    /// unchanged, as always — drives on regardless. Verification finds an
    /// opposite-direction crash again: the deployment fault re-opens the
    /// fixed design's safety argument.
    pub fn lossy_enter() -> BridgeConfig {
        BridgeConfig {
            enter_send: SendPortKind::SynChecking,
            enter_channel: ChannelKind::lossy(ChannelKind::Fifo { capacity: 2 }),
            ..BridgeConfig::buggy()
        }
    }

    /// The one-block repair for [`BridgeConfig::lossy_enter`]: swap the
    /// checking send port for the *blocking* (retrying) synchronous
    /// variant. The port re-offers the request until the channel accepts
    /// it, masking the loss entirely — the design re-verifies clean on the
    /// same lossy channel without touching any component model.
    pub fn lossy_enter_fixed() -> BridgeConfig {
        BridgeConfig {
            enter_send: SendPortKind::SynBlocking,
            ..BridgeConfig::lossy_enter()
        }
    }

    /// Sets the enter-request send-port kind.
    pub fn with_enter_send(mut self, kind: SendPortKind) -> BridgeConfig {
        self.enter_send = kind;
        self
    }

    /// Sets the enter-request channel kind.
    pub fn with_enter_channel(mut self, kind: ChannelKind) -> BridgeConfig {
        self.enter_channel = kind;
        self
    }

    /// Sets the car counts.
    pub fn with_cars(mut self, blue: usize, red: usize) -> BridgeConfig {
        self.blue_cars = blue;
        self.red_cars = red;
        self
    }

    /// Sets `N`, the cars-per-turn bound.
    pub fn with_cars_per_turn(mut self, n: i32) -> BridgeConfig {
        self.cars_per_turn = n;
        self
    }

    /// Sets the lap budget.
    pub fn with_laps(mut self, laps: Option<i32>) -> BridgeConfig {
        self.laps = laps;
        self
    }
}

/// Builds the *exactly-N-cars-per-turn* bridge (paper Fig. 13).
///
/// Connectors: `BlueEnter`/`RedEnter` buffer enter requests from cars to
/// their controller; `RedExit`/`BlueExit` carry exit notifications to the
/// *opposite* controller. Exit connectors use asynchronous blocking sends
/// into single-slot buffers; enter connectors use `config.enter_send` and
/// `config.enter_channel` — the design decision under study.
///
/// # Errors
///
/// Returns [`SystemBuildError`] if the configuration produces an invalid
/// system (e.g. zero cars on both sides).
pub fn exactly_n_bridge(config: &BridgeConfig) -> Result<System, SystemBuildError> {
    let mut sys = SystemBuilder::new();
    let blue_on = sys.global("blue_on_bridge", 0);
    let red_on = sys.global("red_on_bridge", 0);

    let blue_enter = sys.connector("BlueEnter", config.enter_channel);
    let red_enter = sys.connector("RedEnter", config.enter_channel);
    // Exit notifications from blue cars arrive at the red controller, and
    // vice versa.
    let red_exit = sys.connector("RedExit", ChannelKind::SingleSlot);
    let blue_exit = sys.connector("BlueExit", ChannelKind::SingleSlot);

    let blue_enter_rx = sys.recv_port(blue_enter, RecvPortKind::blocking());
    let red_enter_rx = sys.recv_port(red_enter, RecvPortKind::blocking());
    let red_exit_rx = sys.recv_port(red_exit, RecvPortKind::blocking());
    let blue_exit_rx = sys.recv_port(blue_exit, RecvPortKind::blocking());

    for i in 0..config.blue_cars {
        let enter = sys.send_port(blue_enter, config.enter_send);
        let exit = sys.send_port(red_exit, SendPortKind::AsynBlocking);
        let car = car_component(&format!("BlueCar{i}"), &enter, &exit, blue_on, config.laps);
        sys.add_component(car);
    }
    for i in 0..config.red_cars {
        let enter = sys.send_port(red_enter, config.enter_send);
        let exit = sys.send_port(blue_exit, SendPortKind::AsynBlocking);
        let car = car_component(&format!("RedCar{i}"), &enter, &exit, red_on, config.laps);
        sys.add_component(car);
    }

    sys.add_component(exactly_n_controller(
        "BlueController",
        ControllerSide::Blue,
        config.cars_per_turn,
        &blue_enter_rx,
        &blue_exit_rx,
    ));
    sys.add_component(exactly_n_controller(
        "RedController",
        ControllerSide::Red,
        config.cars_per_turn,
        &red_enter_rx,
        &red_exit_rx,
    ));

    sys.build()
}

/// Builds the *at-most-N-cars-per-turn* bridge (paper Fig. 14).
///
/// Beyond the Fig. 13 connectors, two controller-to-controller connectors
/// (`BlueToRed`, `RedToBlue`: synchronous blocking send, single-slot
/// buffer, non-blocking receive) carry turn handovers, and — because the
/// controllers must poll cars and the other controller — every
/// controller-side receive port becomes non-blocking, exactly as the paper
/// describes.
///
/// # Errors
///
/// Returns [`SystemBuildError`] if the configuration produces an invalid
/// system.
pub fn at_most_n_bridge(config: &BridgeConfig) -> Result<System, SystemBuildError> {
    let mut sys = SystemBuilder::new();
    let blue_on = sys.global("blue_on_bridge", 0);
    let red_on = sys.global("red_on_bridge", 0);

    let blue_enter = sys.connector("BlueEnter", config.enter_channel);
    let red_enter = sys.connector("RedEnter", config.enter_channel);
    let red_exit = sys.connector("RedExit", ChannelKind::SingleSlot);
    let blue_exit = sys.connector("BlueExit", ChannelKind::SingleSlot);
    let blue_to_red = sys.connector("BlueToRed", ChannelKind::SingleSlot);
    let red_to_blue = sys.connector("RedToBlue", ChannelKind::SingleSlot);

    // Controllers poll everything: non-blocking receive ports throughout.
    let blue_enter_rx = sys.recv_port(blue_enter, RecvPortKind::nonblocking());
    let red_enter_rx = sys.recv_port(red_enter, RecvPortKind::nonblocking());
    let red_exit_rx = sys.recv_port(red_exit, RecvPortKind::nonblocking());
    let blue_exit_rx = sys.recv_port(blue_exit, RecvPortKind::nonblocking());
    let blue_to_red_rx = sys.recv_port(blue_to_red, RecvPortKind::nonblocking());
    let red_to_blue_rx = sys.recv_port(red_to_blue, RecvPortKind::nonblocking());
    let blue_to_red_tx = sys.send_port(blue_to_red, SendPortKind::SynBlocking);
    let red_to_blue_tx = sys.send_port(red_to_blue, SendPortKind::SynBlocking);

    for i in 0..config.blue_cars {
        let enter = sys.send_port(blue_enter, config.enter_send);
        let exit = sys.send_port(red_exit, SendPortKind::AsynBlocking);
        let car = car_component(&format!("BlueCar{i}"), &enter, &exit, blue_on, config.laps);
        sys.add_component(car);
    }
    for i in 0..config.red_cars {
        let enter = sys.send_port(red_enter, config.enter_send);
        let exit = sys.send_port(blue_exit, SendPortKind::AsynBlocking);
        let car = car_component(&format!("RedCar{i}"), &enter, &exit, red_on, config.laps);
        sys.add_component(car);
    }

    sys.add_component(at_most_n_controller(
        "BlueController",
        ControllerSide::Blue,
        config.cars_per_turn,
        &blue_enter_rx,
        &blue_exit_rx,
        &blue_to_red_tx,
        &red_to_blue_rx,
    ));
    sys.add_component(at_most_n_controller(
        "RedController",
        ControllerSide::Red,
        config.cars_per_turn,
        &red_enter_rx,
        &red_exit_rx,
        &red_to_blue_tx,
        &blue_to_red_rx,
    ));

    sys.build()
}

/// Builds the design selected by `design`.
///
/// # Errors
///
/// As for the specific builders.
pub fn build_bridge(
    design: BridgeDesign,
    config: &BridgeConfig,
) -> Result<System, SystemBuildError> {
    match design {
        BridgeDesign::ExactlyN => exactly_n_bridge(config),
        BridgeDesign::AtMostN => at_most_n_bridge(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::safety_invariant;
    use pnp_kernel::{Checker, SafetyChecks, SafetyOutcome};

    fn check_safety(system: &System) -> SafetyOutcome {
        let program = system.program();
        let inv = safety_invariant(program);
        Checker::new(program)
            .check_safety(&SafetyChecks {
                deadlock: false,
                invariants: vec![inv],
            })
            .unwrap()
            .outcome
    }

    #[test]
    fn buggy_design_violates_safety_with_short_trace() {
        let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
        match check_safety(&system) {
            SafetyOutcome::InvariantViolated { name, trace } => {
                assert!(name.contains("opposite-direction"));
                // BFS counterexamples are shortest; the crash needs both
                // cars' requests buffered and both driving on.
                assert!(trace.len() <= 20, "unexpectedly long: {}", trace.len());
            }
            other => panic!("expected the paper's bug, got {other:?}"),
        }
    }

    #[test]
    fn one_block_swap_fixes_the_bug() {
        let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
        assert!(check_safety(&system).is_holds());
    }

    #[test]
    fn fixed_design_reuses_component_models() {
        // The paper's headline reuse claim: the fix changes only the
        // connector; every component process is structurally identical.
        let buggy = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
        let fixed = exactly_n_bridge(&BridgeConfig::fixed()).unwrap();
        let components = |s: &System| -> Vec<(String, usize, usize)> {
            s.program()
                .processes()
                .iter()
                .zip(s.topology().iter())
                .filter(|(_, (_, role))| !role.is_connector_part())
                .map(|(p, _)| {
                    (
                        p.name().to_string(),
                        p.location_count(),
                        p.transition_count(),
                    )
                })
                .collect()
        };
        assert_eq!(components(&buggy), components(&fixed));
    }

    #[test]
    fn at_most_n_design_is_safe() {
        let system = at_most_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
        assert!(check_safety(&system).is_holds());
    }

    #[test]
    fn at_most_n_with_async_enter_is_also_buggy() {
        // The same wrong block choice breaks the improved design too.
        let system = at_most_n_bridge(&BridgeConfig::buggy().with_laps(Some(1))).unwrap();
        assert!(!check_safety(&system).is_holds());
    }

    #[test]
    fn build_bridge_dispatches() {
        let cfg = BridgeConfig::fixed().with_laps(Some(1));
        let a = build_bridge(BridgeDesign::ExactlyN, &cfg).unwrap();
        let b = build_bridge(BridgeDesign::AtMostN, &cfg).unwrap();
        // The at-most-N design has two extra connectors (6 more block
        // processes: 2 channels + 2 send + 2 recv ports).
        assert_eq!(
            a.topology().connector_process_count() + 6,
            b.topology().connector_process_count()
        );
    }

    #[test]
    fn config_builders() {
        let cfg = BridgeConfig::buggy()
            .with_cars(2, 0)
            .with_cars_per_turn(3)
            .with_laps(Some(4));
        assert_eq!((cfg.blue_cars, cfg.red_cars), (2, 0));
        assert_eq!(cfg.cars_per_turn, 3);
        assert_eq!(cfg.laps, Some(4));
        assert_eq!(BridgeConfig::fixed().enter_send, SendPortKind::SynBlocking);
        assert_eq!(BridgeConfig::buggy().enter_send, SendPortKind::AsynBlocking);
    }

    /// Exhaustive verification of the two-cars-per-side configuration
    /// (~1M states); run with `cargo test -- --ignored`.
    #[test]
    #[ignore = "explores ~1M states (about 20s in release, minutes in debug)"]
    fn two_cars_per_side_is_safe() {
        for n in [1, 2] {
            let cfg = BridgeConfig::fixed()
                .with_cars(2, 2)
                .with_cars_per_turn(n)
                .with_laps(Some(1));
            let system = exactly_n_bridge(&cfg).unwrap();
            assert!(check_safety(&system).is_holds(), "N = {n}");
        }
    }

    #[test]
    fn crossings_counter_sees_traffic() {
        let cfg = BridgeConfig::fixed().with_laps(None);
        let system = exactly_n_bridge(&cfg).unwrap();
        let (blue, red) = crate::props::crossings_in(system.program(), 4000, 7).unwrap();
        assert!(blue > 0, "no blue crossings in 4000 steps");
        assert!(red > 0, "no red crossings in 4000 steps");
    }

    #[test]
    fn exactly_n_stalls_with_an_empty_side() {
        // With no red cars the strict-turn design admits one blue batch and
        // then waits forever for red exits; at-most-N keeps flowing.
        let cfg = BridgeConfig::fixed().with_cars(1, 0).with_laps(None);
        let strict = exactly_n_bridge(&cfg).unwrap();
        let flexible = at_most_n_bridge(&cfg).unwrap();
        let steps = 6000;
        let (strict_blue, _) = crate::props::crossings_in(strict.program(), steps, 11).unwrap();
        let (flex_blue, _) = crate::props::crossings_in(flexible.program(), steps, 11).unwrap();
        assert!(
            strict_blue <= cfg.cars_per_turn as u64,
            "strict design crossed {strict_blue} times, expected at most one batch"
        );
        assert!(
            flex_blue > strict_blue * 3,
            "expected the at-most-N design to dominate: {flex_blue} vs {strict_blue}"
        );
    }
}
