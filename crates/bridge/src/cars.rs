//! The car component, shared unchanged by every bridge design.
//!
//! A car repeatedly: requests entry through its side's *enter* connector,
//! drives onto the bridge (incrementing its side's occupancy global),
//! crosses, drives off (decrementing it), and notifies the opposite
//! controller through the *exit* connector. The component never changes
//! when connector semantics are swapped — that reuse is the point of the
//! case study.

use pnp_core::{ComponentBuilder, SendAttachment};
use pnp_kernel::{expr, Action, GlobalId, Guard};

/// Builds one car component.
///
/// * `name` — e.g. `"BlueCar0"`.
/// * `enter` — send attachment on the side's enter connector.
/// * `exit` — send attachment on the *opposite* controller's exit
///   connector.
/// * `occupancy` — this side's on-bridge counter global.
/// * `laps` — how many crossings to make; `None` loops forever.
///
/// The returned component talks to its connectors exclusively through the
/// standard interfaces, so it is byte-for-byte identical across the buggy,
/// fixed, and at-most-`N` designs.
///
/// `_exit_unused` note: exit notifications carry payload `1` and tag `0`.
pub fn car_component(
    name: &str,
    enter: &SendAttachment,
    exit: &SendAttachment,
    occupancy: GlobalId,
    laps: Option<i32>,
) -> ComponentBuilder {
    let mut car = ComponentBuilder::new(name);
    let lap = car.local("lap", 0);

    let idle = car.location("idle");
    let granted = car.location("granted");
    let crossing = car.location("crossing");
    let off_bridge = car.location("off_bridge");
    let notified = car.location("notified");
    let done = car.location("done");
    car.mark_end(done);

    // Request entry. The guard enforces the lap budget; with `laps: None`
    // the car runs forever.
    let want_lap = match laps {
        Some(n) => Guard::when(expr::lt(expr::local(lap), n.into())),
        None => Guard::always(),
    };
    // The send interface is emitted between explicit locations; the guard
    // must sit on the first step, so wrap with a guarded skip.
    let request = car.location("request");
    car.transition(idle, request, want_lap, Action::Skip, "approach bridge");
    if let Some(n) = laps {
        car.transition(
            idle,
            done,
            Guard::when(expr::ge(expr::local(lap), n.into())),
            Action::Skip,
            "leave for good",
        );
    }
    car.send_msg(request, granted, enter, 1.into(), 0.into(), None);

    // The SendStatus arrived: as far as this car knows, it may drive on.
    // Whether that is actually safe depends on the enter connector's
    // semantics — the crux of the case study.
    car.transition(
        granted,
        crossing,
        Guard::always(),
        Action::assign(occupancy, expr::global(occupancy) + 1.into()),
        "drive onto bridge",
    );
    car.transition(
        crossing,
        off_bridge,
        Guard::always(),
        Action::assign(occupancy, expr::global(occupancy) - 1.into()),
        "drive off bridge",
    );
    // Notify the opposite controller. The lap counter only exists (and is
    // only incremented) under a finite lap budget, keeping the state space
    // finite when cars loop forever.
    car.send_msg(off_bridge, notified, exit, 1.into(), 0.into(), None);
    let lap_action = match laps {
        Some(_) => Action::assign(lap, expr::local(lap) + 1.into()),
        None => Action::Skip,
    };
    car.transition(notified, idle, Guard::always(), lap_action, "lap complete");

    car
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_core::{ChannelKind, SendPortKind, SystemBuilder};

    #[test]
    fn car_component_validates_and_is_design_independent() {
        let mut sys = SystemBuilder::new();
        let occ = sys.global("occ", 0);
        let enter_conn = sys.connector("enter", ChannelKind::Fifo { capacity: 2 });
        let exit_conn = sys.connector("exit", ChannelKind::SingleSlot);
        let enter = sys.send_port(enter_conn, SendPortKind::AsynBlocking);
        let exit = sys.send_port(exit_conn, SendPortKind::AsynBlocking);

        let finite = car_component("car", &enter, &exit, occ, Some(3));
        let forever = car_component("car", &enter, &exit, occ, None);
        // The finite car has one extra transition (leave for good); the
        // structure is otherwise identical.
        assert_eq!(finite.location_count(), forever.location_count());
    }
}
