//! Crash-tolerant verification on the bridge case study (ISSUE acceptance
//! criteria):
//!
//! * an interrupted bridge verification, resumed from its flushed
//!   snapshot, reports exactly the state counts and verdict of an
//!   uninterrupted run;
//! * the bitstate backend verifies the fixed bridge inside a caller-set
//!   arena, reporting coverage plus the pinned Bloom omission estimate;
//! * a seeded violation found under a lossy backend is validated by exact
//!   replay — never a hash-collision artifact.

use std::cell::RefCell;
use std::rc::Rc;

use pnp_bridge::{exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp_kernel::{
    bloom_omission_probability, Checker, FileSink, SafetyChecks, SafetyOutcome, SearchConfig,
    Snapshot, SnapshotError, VisitedKind,
};

fn bridge_checks(program: &pnp_kernel::Program) -> SafetyChecks {
    SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    }
}

/// Interrupt the fixed-bridge search at a states budget, snapshot to a
/// file, resume from disk, and require the exact totals and verdict of the
/// uninterrupted run — repeatedly, at several interruption points.
#[test]
fn interrupted_bridge_resume_matches_uninterrupted_run() {
    let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    let program = system.program();
    let checks = bridge_checks(program);

    let full = Checker::new(program).check_safety(&checks).unwrap();
    assert!(full.outcome.is_holds(), "{:?}", full.outcome);

    for interrupt_at in [5, 37, 200] {
        let dir = std::env::temp_dir().join(format!(
            "pnp_resume_bridge_{}_{interrupt_at}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bridge.pnpsnap");

        let interrupted = Checker::with_config(
            program,
            SearchConfig {
                max_states: interrupt_at,
                ..SearchConfig::default()
            },
        )
        .checkpoint_to(FileSink::new(&path))
        .checkpoint_tag("no crash")
        .check_safety(&checks)
        .unwrap();
        assert!(
            matches!(interrupted.outcome, SafetyOutcome::LimitReached { .. }),
            "budget must trip: {:?}",
            interrupted.outcome
        );
        assert_eq!(interrupted.stats.unique_states, interrupt_at);

        let snapshot = pnp_kernel::load_snapshot(&path).unwrap();
        assert_eq!(snapshot.tag(), "no crash");
        assert_eq!(snapshot.states_covered(), interrupt_at);
        let resumed = Checker::resume_from(program, snapshot)
            .unwrap()
            .with_search_config(SearchConfig::default())
            .check_safety(&checks)
            .unwrap();

        assert_eq!(
            format!("{:?}", resumed.outcome),
            format!("{:?}", full.outcome)
        );
        assert_eq!(resumed.stats.unique_states, full.stats.unique_states);
        assert_eq!(resumed.stats.steps, full.stats.steps);
        assert_eq!(resumed.stats.max_depth, full.stats.max_depth);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A snapshot of one program must refuse to resume a different program.
#[test]
fn resume_refuses_a_mismatched_program() {
    let fixed = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    let buggy = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();

    let sink = Rc::new(RefCell::new(Vec::new()));
    Checker::with_config(
        fixed.program(),
        SearchConfig {
            max_states: 10,
            ..SearchConfig::default()
        },
    )
    .checkpoint_to(Rc::clone(&sink))
    .check_safety(&bridge_checks(fixed.program()))
    .unwrap();

    let snapshot = Snapshot::decode(&sink.borrow()).unwrap();
    match Checker::resume_from(buggy.program(), snapshot) {
        Err(SnapshotError::FingerprintMismatch { .. }) => {}
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
}

/// The bitstate backend verifies the fixed bridge within a caller-set
/// arena and reports HoldsApprox with the standard Bloom omission
/// estimate — pinned here against the formula on a known run.
#[test]
fn bitstate_verifies_fixed_bridge_with_pinned_omission_estimate() {
    let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    let program = system.program();
    let checks = bridge_checks(program);

    let exact = Checker::new(program).check_safety(&checks).unwrap();
    assert!(exact.outcome.is_holds());

    let arena_bytes = 1 << 20; // 1 MiB: plenty for this run, still bounded
    let kind = VisitedKind::Bitstate {
        arena_bytes,
        hashes: 3,
    };
    let report = Checker::with_config(
        program,
        SearchConfig {
            visited: kind,
            ..SearchConfig::default()
        },
    )
    .check_safety(&checks)
    .unwrap();

    // The arena is far from saturated, so no omissions are expected: the
    // approximate run covers exactly the exact run's state space.
    match report.outcome {
        SafetyOutcome::HoldsApprox {
            hash_mode,
            states_visited,
            omission_probability,
        } => {
            assert_eq!(hash_mode, kind);
            assert_eq!(states_visited, exact.stats.unique_states);
            let arena_bits = (arena_bytes as u64).div_ceil(8) * 64;
            assert_eq!(
                omission_probability,
                bloom_omission_probability(arena_bits, 3, states_visited)
            );
            assert!(omission_probability > 0.0 && omission_probability < 1e-3);
        }
        other => panic!("expected HoldsApprox, got {other:?}"),
    }
    assert!(!report.outcome.is_holds(), "approx is not an exact proof");
    assert!(report.outcome.holds_modulo_hashing());
    // Memory stays within the caller-set arena (plus bookkeeping, well
    // under the exact search's per-state payload cost for large runs).
    assert!(report.stats.approx_memory_bytes >= arena_bytes);
}

/// A genuine seeded violation (the paper's buggy design) is still found
/// under the lossy backends, and its trace is exact-replay-validated: the
/// counterexample equals the exact backend's, with zero replay rejections.
#[test]
fn lossy_backends_find_the_seeded_violation_with_validated_trace() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let checks = bridge_checks(program);

    let exact = Checker::new(program).check_safety(&checks).unwrap();
    let SafetyOutcome::InvariantViolated { name, trace } = &exact.outcome else {
        panic!("buggy bridge must violate: {:?}", exact.outcome);
    };

    for kind in [
        VisitedKind::Compact,
        VisitedKind::Bitstate {
            arena_bytes: 1 << 20,
            hashes: 3,
        },
    ] {
        let report = Checker::with_config(
            program,
            SearchConfig {
                visited: kind,
                ..SearchConfig::default()
            },
        )
        .check_safety(&checks)
        .unwrap();
        let SafetyOutcome::InvariantViolated {
            name: lossy_name,
            trace: lossy_trace,
        } = &report.outcome
        else {
            panic!("{kind} missed the seeded violation: {:?}", report.outcome);
        };
        assert_eq!(lossy_name, name);
        assert_eq!(
            lossy_trace.len(),
            trace.len(),
            "{kind}: same shortest trace"
        );
        assert_eq!(report.stats.replay_rejected, 0, "{kind}: trace is genuine");
    }
}
