//! The bridge case study under fault injection (ISSUE acceptance
//! criterion): deploying the *fixed* Fig. 13 design over a lossy enter
//! channel re-opens the safety argument — the checker produces an
//! opposite-direction crash counterexample — and a one-building-block
//! retry-port swap repairs it, re-verifying clean without touching any
//! component model.

use pnp_bridge::{exactly_n_bridge, safety_invariant, BridgeConfig, ChannelKind, SendPortKind};
use pnp_core::System;
use pnp_kernel::{Checker, SafetyChecks, SafetyOutcome};

fn check_safety(system: &System) -> SafetyOutcome {
    let program = system.program();
    let inv = safety_invariant(program);
    Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![inv],
        })
        .unwrap()
        .outcome
}

/// The lossy deployment crashes: a dropped enter request is reported as
/// `SEND_FAIL`, the checking port passes the failure on, and the car
/// drives onto the bridge without the controller's permission.
#[test]
fn lossy_enter_channel_reopens_the_safety_bug() {
    let system = exactly_n_bridge(&BridgeConfig::lossy_enter()).unwrap();
    match check_safety(&system) {
        SafetyOutcome::InvariantViolated { name, trace } => {
            assert!(name.contains("opposite-direction"));
            assert!(!trace.is_empty());
        }
        other => panic!("expected the lossy-deployment crash, got {other:?}"),
    }
}

/// Control experiment: the very same checking port is safe on the
/// fault-free channel — the counterexample above is caused by the channel
/// fault, not by the port swap.
#[test]
fn checking_port_is_safe_without_the_channel_fault() {
    let config = BridgeConfig::lossy_enter()
        .with_enter_channel(ChannelKind::Fifo { capacity: 2 })
        .with_laps(Some(1));
    let system = exactly_n_bridge(&config).unwrap();
    assert!(check_safety(&system).is_holds());
}

/// The repair: one building block (checking send → blocking/retrying
/// send) and the design re-verifies clean on the *same* lossy channel.
#[test]
fn retry_port_masks_the_loss_and_reverifies_clean() {
    let config = BridgeConfig::lossy_enter_fixed().with_laps(Some(1));
    let system = exactly_n_bridge(&config).unwrap();
    assert!(check_safety(&system).is_holds());
}

/// The reuse claim extends to fault repair: the broken lossy deployment
/// and its retry-port fix share structurally identical component models —
/// only connector-part processes differ.
#[test]
fn lossy_fix_reuses_component_models() {
    let broken = exactly_n_bridge(&BridgeConfig::lossy_enter()).unwrap();
    let repaired = exactly_n_bridge(&BridgeConfig::lossy_enter_fixed()).unwrap();
    let components = |s: &System| -> Vec<(String, usize, usize)> {
        s.program()
            .processes()
            .iter()
            .zip(s.topology().iter())
            .filter(|(_, (_, role))| !role.is_connector_part())
            .map(|(p, _)| {
                (
                    p.name().to_string(),
                    p.location_count(),
                    p.transition_count(),
                )
            })
            .collect()
    };
    assert_eq!(components(&broken), components(&repaired));
    assert_eq!(
        BridgeConfig::lossy_enter_fixed().enter_send,
        SendPortKind::SynBlocking
    );
}
