//! [`SimNet`]: a seeded, deterministic in-memory network.
//!
//! Peers register a handler under a name; an endpoint obtained from
//! [`SimNet::endpoint`] implements [`Transport`] and delivers requests to
//! those handlers with faults injected at every message boundary:
//!
//! * **dropped request** — the handler never runs, the caller times out;
//! * **dropped response** — the handler *ran*, the caller times out (the
//!   ambiguity that makes exactly-once hard);
//! * **duplicated delivery** — the handler runs twice (a retransmitted
//!   request whose first response was lost), the caller sees the second
//!   response — the probe for idempotency bugs;
//! * **connection reset** — the handler ran, the caller got partial
//!   bytes;
//! * **asymmetric partition** — a directed link is cut: requests (or
//!   only responses) on that direction vanish while the reverse
//!   direction still works;
//! * **peer crash** — a downed peer refuses connections until restarted;
//!   a peer that crashes *inside* its handler resets the caller.
//!
//! All probabilistic faults draw from one [`SplitMix64`] stream seeded
//! at construction, in delivery order — the same seed and call sequence
//! replay the same fault schedule, the exact analogue of the kernel's
//! `SimFs`.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use pnp_kernel::SplitMix64;

use crate::{NetError, Transport, WireRequest, WireResponse};

/// A peer's request handler.
pub type Handler = Arc<dyn Fn(&WireRequest) -> WireResponse + Send + Sync>;

/// Per-mille probabilities for the seeded faults (0 = off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetPlan {
    /// Request vanishes before the peer sees it.
    pub drop_request_per_mille: u16,
    /// Response vanishes after the peer processed the request.
    pub drop_response_per_mille: u16,
    /// Request is delivered twice (handler runs twice).
    pub duplicate_per_mille: u16,
    /// Connection resets after the peer processed the request.
    pub reset_per_mille: u16,
}

/// Monotonic delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Exchanges attempted.
    pub requests: u64,
    /// Refused: peer unknown or down.
    pub refused: u64,
    /// Requests dropped before delivery.
    pub dropped_requests: u64,
    /// Responses dropped after the handler ran.
    pub dropped_responses: u64,
    /// Handlers invoked a second time for one request.
    pub duplicated: u64,
    /// Resets after the handler ran.
    pub resets: u64,
    /// Exchanges blackholed by a partition.
    pub partitioned: u64,
}

struct Inner {
    peers: HashMap<String, Handler>,
    down: HashSet<String>,
    /// Directed cut links `(from, to)`.
    cuts: HashSet<(String, String)>,
    plan: NetPlan,
    rng: SplitMix64,
    stats: NetStats,
}

/// The simulated network; shared behind an [`Arc`].
pub struct SimNet {
    inner: Mutex<Inner>,
}

impl SimNet {
    /// An empty network with the given fault seed.
    pub fn new(seed: u64) -> Arc<SimNet> {
        Arc::new(SimNet {
            inner: Mutex::new(Inner {
                peers: HashMap::new(),
                down: HashSet::new(),
                cuts: HashSet::new(),
                plan: NetPlan::default(),
                rng: SplitMix64::seed_from_u64(seed ^ 0x7369_6d6e_6574_5f31),
                stats: NetStats::default(),
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) a peer's handler and brings it up.
    pub fn register(&self, name: &str, handler: Handler) {
        let mut inner = self.lock();
        inner.peers.insert(name.to_string(), handler);
        inner.down.remove(name);
    }

    /// Crashes a peer: connections are refused until [`SimNet::restart`].
    /// A crash taking effect while the peer is inside a handler resets
    /// the in-flight caller instead of answering it.
    pub fn crash(&self, name: &str) {
        self.lock().down.insert(name.to_string());
    }

    /// Brings a crashed peer back (its handler stays registered).
    pub fn restart(&self, name: &str) {
        self.lock().down.remove(name);
    }

    /// Whether the peer is currently down.
    pub fn is_down(&self, name: &str) -> bool {
        self.lock().down.contains(name)
    }

    /// Cuts the directed link `from → to`. Requests from `from` to `to`
    /// vanish; if only the reverse direction is cut, requests arrive but
    /// their responses vanish (the asymmetric-partition case).
    pub fn cut(&self, from: &str, to: &str) {
        self.lock().cuts.insert((from.to_string(), to.to_string()));
    }

    /// Heals the directed link `from → to`.
    pub fn heal(&self, from: &str, to: &str) {
        self.lock().cuts.remove(&(from.to_string(), to.to_string()));
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.lock().cuts.clear();
    }

    /// Arms the probabilistic fault plan.
    pub fn set_plan(&self, plan: NetPlan) {
        self.lock().plan = plan;
    }

    /// A snapshot of the delivery counters.
    pub fn stats(&self) -> NetStats {
        self.lock().stats
    }

    /// An endpoint named `from`, for partition directionality.
    pub fn endpoint(self: &Arc<SimNet>, from: &str) -> SimEndpoint {
        SimEndpoint {
            net: Arc::clone(self),
            from: from.to_string(),
        }
    }

    fn draw(inner: &mut Inner, per_mille: u16) -> bool {
        per_mille > 0 && inner.rng.next_u64() % 1000 < u64::from(per_mille)
    }
}

/// One named attachment point on a [`SimNet`]; implements [`Transport`].
pub struct SimEndpoint {
    net: Arc<SimNet>,
    from: String,
}

impl Transport for SimEndpoint {
    fn request(&self, peer: &str, request: &WireRequest) -> Result<WireResponse, NetError> {
        // Phase 1 (under the lock): route the request and draw the
        // request-side faults. The handler itself runs unlocked so peers
        // may use the network from inside their handlers.
        let (handler, duplicate) = {
            let mut inner = self.net.lock();
            inner.stats.requests += 1;
            if inner.cuts.contains(&(self.from.clone(), peer.to_string())) {
                inner.stats.partitioned += 1;
                return Err(NetError::Timeout(format!(
                    "partition {} -> {peer}",
                    self.from
                )));
            }
            let Some(handler) = inner.peers.get(peer).cloned() else {
                inner.stats.refused += 1;
                return Err(NetError::Refused(format!("no peer '{peer}'")));
            };
            if inner.down.contains(peer) {
                inner.stats.refused += 1;
                return Err(NetError::Refused(format!("peer '{peer}' is down")));
            }
            let drop_request = inner.plan.drop_request_per_mille;
            if SimNet::draw(&mut inner, drop_request) {
                inner.stats.dropped_requests += 1;
                return Err(NetError::Timeout(format!("request to {peer} dropped")));
            }
            let duplicate_per_mille = inner.plan.duplicate_per_mille;
            let duplicate = SimNet::draw(&mut inner, duplicate_per_mille);
            (handler, duplicate)
        };

        let mut response = handler(request);
        if duplicate {
            self.net.lock().stats.duplicated += 1;
            response = handler(request);
        }

        // Phase 2: response-side faults. The handler has already run, so
        // every fault here leaves the caller unsure whether its request
        // took effect.
        let mut inner = self.net.lock();
        if inner.down.contains(peer) {
            inner.stats.resets += 1;
            return Err(NetError::Reset(format!(
                "peer '{peer}' crashed mid-request"
            )));
        }
        if inner.cuts.contains(&(peer.to_string(), self.from.clone())) {
            inner.stats.partitioned += 1;
            return Err(NetError::Timeout(format!(
                "partition {peer} -> {} (response lost)",
                self.from
            )));
        }
        let drop_response = inner.plan.drop_response_per_mille;
        if SimNet::draw(&mut inner, drop_response) {
            inner.stats.dropped_responses += 1;
            return Err(NetError::Timeout(format!("response from {peer} dropped")));
        }
        let reset = inner.plan.reset_per_mille;
        if SimNet::draw(&mut inner, reset) {
            inner.stats.resets += 1;
            return Err(NetError::Reset(format!("reset mid-response from {peer}")));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn echo_peer(net: &Arc<SimNet>, name: &str) -> Arc<AtomicU64> {
        let hits = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&hits);
        net.register(
            name,
            Arc::new(move |req: &WireRequest| {
                counter.fetch_add(1, Ordering::SeqCst);
                WireResponse::new(200, req.body.clone())
            }),
        );
        hits
    }

    #[test]
    fn clean_network_delivers() {
        let net = SimNet::new(1);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        let response = endpoint
            .request("w1", &WireRequest::post("/x", "hello"))
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"hello");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(matches!(
            endpoint.request("nobody", &WireRequest::get("/x")),
            Err(NetError::Refused(_))
        ));
    }

    #[test]
    fn crash_and_restart() {
        let net = SimNet::new(2);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        net.crash("w1");
        assert!(matches!(
            endpoint.request("w1", &WireRequest::get("/x")),
            Err(NetError::Refused(_))
        ));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        net.restart("w1");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
    }

    #[test]
    fn asymmetric_partition_runs_handler_but_loses_response() {
        let net = SimNet::new(3);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        // Cut only the response direction: the peer processes the
        // request, the caller cannot tell.
        net.cut("w1", "coord");
        let error = endpoint.request("w1", &WireRequest::get("/x")).unwrap_err();
        assert!(matches!(error, NetError::Timeout(_)));
        assert!(error.request_delivered());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Cut the request direction: the handler never runs.
        net.heal("w1", "coord");
        net.cut("coord", "w1");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_err());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        net.heal_all();
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
    }

    #[test]
    fn duplicate_delivery_runs_handler_twice() {
        let net = SimNet::new(4);
        let hits = echo_peer(&net, "w1");
        net.set_plan(NetPlan {
            duplicate_per_mille: 1000,
            ..NetPlan::default()
        });
        let endpoint = net.endpoint("c");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn seeded_fault_schedules_replay() {
        let run = |seed: u64| -> Vec<bool> {
            let net = SimNet::new(seed);
            echo_peer(&net, "w1");
            net.set_plan(NetPlan {
                drop_request_per_mille: 300,
                drop_response_per_mille: 200,
                reset_per_mille: 100,
                duplicate_per_mille: 150,
            });
            let endpoint = net.endpoint("c");
            (0..64)
                .map(|_| endpoint.request("w1", &WireRequest::get("/x")).is_ok())
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !ok));
    }
}
