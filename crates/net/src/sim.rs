//! [`SimNet`]: a seeded, deterministic in-memory network.
//!
//! Peers register a handler under a name; an endpoint obtained from
//! [`SimNet::endpoint`] implements [`Transport`] and delivers requests to
//! those handlers with faults injected at every message boundary:
//!
//! * **dropped request** — the handler never runs, the caller times out;
//! * **dropped response** — the handler *ran*, the caller times out (the
//!   ambiguity that makes exactly-once hard);
//! * **duplicated delivery** — the handler runs twice (a retransmitted
//!   request whose first response was lost), the caller sees the second
//!   response — the probe for idempotency bugs;
//! * **connection reset** — the handler ran, the caller got partial
//!   bytes;
//! * **asymmetric partition** — a directed link is cut: requests (or
//!   only responses) on that direction vanish while the reverse
//!   direction still works;
//! * **peer crash** — a downed peer refuses connections until restarted;
//!   a peer that crashes *inside* its handler resets the caller.
//!
//! All probabilistic faults draw from one [`SplitMix64`] stream seeded
//! at construction, in delivery order — the same seed and call sequence
//! replay the same fault schedule, the exact analogue of the kernel's
//! `SimFs`.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use pnp_kernel::SplitMix64;

use crate::{NetError, Transport, WireRequest, WireResponse};

/// A peer's request handler.
pub type Handler = Arc<dyn Fn(&WireRequest) -> WireResponse + Send + Sync>;

/// Per-mille probabilities for the seeded faults (0 = off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetPlan {
    /// Request vanishes before the peer sees it.
    pub drop_request_per_mille: u16,
    /// Response vanishes after the peer processed the request.
    pub drop_response_per_mille: u16,
    /// Request is delivered twice (handler runs twice).
    pub duplicate_per_mille: u16,
    /// Connection resets after the peer processed the request.
    pub reset_per_mille: u16,
}

/// A network-fault kind, shared by the probabilistic [`NetPlan`] and
/// the exact, delivery-indexed [`NetInjection`] hooks the chaos-schedule
/// search drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetFaultKind {
    /// The request vanishes before the peer sees it.
    DropRequest,
    /// The response vanishes after the handler ran.
    DropResponse,
    /// The handler runs twice for one request.
    Duplicate,
    /// The connection resets after the handler ran.
    Reset,
}

impl NetFaultKind {
    /// The stable serialized name (schedule files, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            NetFaultKind::DropRequest => "drop-request",
            NetFaultKind::DropResponse => "drop-response",
            NetFaultKind::Duplicate => "duplicate",
            NetFaultKind::Reset => "reset",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<NetFaultKind, String> {
        match name {
            "drop-request" => Ok(NetFaultKind::DropRequest),
            "drop-response" => Ok(NetFaultKind::DropResponse),
            "duplicate" => Ok(NetFaultKind::Duplicate),
            "reset" => Ok(NetFaultKind::Reset),
            other => Err(format!(
                "unknown network fault '{other}' (want drop-request, drop-response, \
                 duplicate, or reset)"
            )),
        }
    }
}

impl std::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One exact injection: fire `kind` on the `at_delivery`-th exchange
/// attempted on this network (1-based, counting every
/// [`Transport::request`] call through any endpoint).
///
/// Unlike the probabilistic [`NetPlan`], injections survive
/// [`SimNet::set_plan`]: the delivery counter is monotonic for the
/// network's whole life, so a schedule of injections describes one
/// replayable run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetInjection {
    /// The 1-based delivery index the fault fires on.
    pub at_delivery: u64,
    /// What fires.
    pub kind: NetFaultKind,
}

/// One fault that actually fired, for the run's injected-fault trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultRecord {
    /// The 1-based delivery index it fired on.
    pub delivery: u64,
    /// What fired.
    pub kind: NetFaultKind,
    /// The requesting endpoint.
    pub from: String,
    /// The target peer.
    pub to: String,
}

impl std::fmt::Display for NetFaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "net {} @{} ({} -> {})",
            self.kind, self.delivery, self.from, self.to
        )
    }
}

/// Monotonic delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Exchanges attempted.
    pub requests: u64,
    /// Refused: peer unknown or down.
    pub refused: u64,
    /// Requests dropped before delivery.
    pub dropped_requests: u64,
    /// Responses dropped after the handler ran.
    pub dropped_responses: u64,
    /// Handlers invoked a second time for one request.
    pub duplicated: u64,
    /// Resets after the handler ran.
    pub resets: u64,
    /// Exchanges blackholed by a partition.
    pub partitioned: u64,
}

struct Inner {
    peers: HashMap<String, Handler>,
    down: HashSet<String>,
    /// Directed cut links `(from, to)`.
    cuts: HashSet<(String, String)>,
    plan: NetPlan,
    /// Exact delivery-indexed injections still waiting to fire.
    injections: Vec<NetInjection>,
    /// Every fault that actually fired, in firing order.
    trace: Vec<NetFaultRecord>,
    rng: SplitMix64,
    stats: NetStats,
}

impl Inner {
    /// Records a fired fault against the current delivery index.
    fn record(&mut self, kind: NetFaultKind, from: &str, to: &str) {
        self.trace.push(NetFaultRecord {
            delivery: self.stats.requests,
            kind,
            from: from.to_string(),
            to: to.to_string(),
        });
    }
}

/// The simulated network; shared behind an [`Arc`].
pub struct SimNet {
    inner: Mutex<Inner>,
}

impl SimNet {
    /// An empty network with the given fault seed.
    pub fn new(seed: u64) -> Arc<SimNet> {
        Arc::new(SimNet {
            inner: Mutex::new(Inner {
                peers: HashMap::new(),
                down: HashSet::new(),
                cuts: HashSet::new(),
                plan: NetPlan::default(),
                injections: Vec::new(),
                trace: Vec::new(),
                rng: SplitMix64::seed_from_u64(seed ^ 0x7369_6d6e_6574_5f31),
                stats: NetStats::default(),
            }),
        })
    }

    /// Installs the exact delivery-indexed injections (replacing any not
    /// yet fired). Unlike [`SimNet::set_plan`], these are indexed
    /// against the network's monotonic delivery counter.
    pub fn set_injections(&self, injections: Vec<NetInjection>) {
        self.lock().injections = injections;
    }

    /// Injections that have not fired yet.
    pub fn pending_injections(&self) -> usize {
        self.lock().injections.len()
    }

    /// Every fault that actually fired so far (plan-drawn and
    /// injected), in firing order.
    pub fn fault_trace(&self) -> Vec<NetFaultRecord> {
        self.lock().trace.clone()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) a peer's handler and brings it up.
    pub fn register(&self, name: &str, handler: Handler) {
        let mut inner = self.lock();
        inner.peers.insert(name.to_string(), handler);
        inner.down.remove(name);
    }

    /// Crashes a peer: connections are refused until [`SimNet::restart`].
    /// A crash taking effect while the peer is inside a handler resets
    /// the in-flight caller instead of answering it.
    pub fn crash(&self, name: &str) {
        self.lock().down.insert(name.to_string());
    }

    /// Brings a crashed peer back (its handler stays registered).
    pub fn restart(&self, name: &str) {
        self.lock().down.remove(name);
    }

    /// Whether the peer is currently down.
    pub fn is_down(&self, name: &str) -> bool {
        self.lock().down.contains(name)
    }

    /// Cuts the directed link `from → to`. Requests from `from` to `to`
    /// vanish; if only the reverse direction is cut, requests arrive but
    /// their responses vanish (the asymmetric-partition case).
    pub fn cut(&self, from: &str, to: &str) {
        self.lock().cuts.insert((from.to_string(), to.to_string()));
    }

    /// Heals the directed link `from → to`.
    pub fn heal(&self, from: &str, to: &str) {
        self.lock().cuts.remove(&(from.to_string(), to.to_string()));
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.lock().cuts.clear();
    }

    /// Arms the probabilistic fault plan.
    pub fn set_plan(&self, plan: NetPlan) {
        self.lock().plan = plan;
    }

    /// A snapshot of the delivery counters.
    pub fn stats(&self) -> NetStats {
        self.lock().stats
    }

    /// An endpoint named `from`, for partition directionality.
    pub fn endpoint(self: &Arc<SimNet>, from: &str) -> SimEndpoint {
        SimEndpoint {
            net: Arc::clone(self),
            from: from.to_string(),
        }
    }

    fn draw(inner: &mut Inner, per_mille: u16) -> bool {
        per_mille > 0 && inner.rng.next_u64() % 1000 < u64::from(per_mille)
    }
}

/// One named attachment point on a [`SimNet`]; implements [`Transport`].
pub struct SimEndpoint {
    net: Arc<SimNet>,
    from: String,
}

impl Transport for SimEndpoint {
    fn request(&self, peer: &str, request: &WireRequest) -> Result<WireResponse, NetError> {
        // Phase 1 (under the lock): route the request and draw the
        // request-side faults. The handler itself runs unlocked so peers
        // may use the network from inside their handlers. Plan draws
        // consume the RNG stream *before* injections are consulted, so
        // arming an injection never shifts the seeded background faults.
        let (handler, duplicate, delivery, injected) = {
            let mut inner = self.net.lock();
            inner.stats.requests += 1;
            let delivery = inner.stats.requests;
            let mut injected = [false; 4];
            let mut index = 0;
            while index < inner.injections.len() {
                if inner.injections[index].at_delivery == delivery {
                    let injection = inner.injections.swap_remove(index);
                    injected[injection.kind as usize] = true;
                } else {
                    index += 1;
                }
            }
            if inner.cuts.contains(&(self.from.clone(), peer.to_string())) {
                inner.stats.partitioned += 1;
                return Err(NetError::Timeout(format!(
                    "partition {} -> {peer}",
                    self.from
                )));
            }
            let Some(handler) = inner.peers.get(peer).cloned() else {
                inner.stats.refused += 1;
                return Err(NetError::Refused(format!("no peer '{peer}'")));
            };
            if inner.down.contains(peer) {
                inner.stats.refused += 1;
                return Err(NetError::Refused(format!("peer '{peer}' is down")));
            }
            let drop_request = inner.plan.drop_request_per_mille;
            if SimNet::draw(&mut inner, drop_request)
                || injected[NetFaultKind::DropRequest as usize]
            {
                inner.stats.dropped_requests += 1;
                inner.record(NetFaultKind::DropRequest, &self.from, peer);
                return Err(NetError::Timeout(format!("request to {peer} dropped")));
            }
            let duplicate_per_mille = inner.plan.duplicate_per_mille;
            let duplicate = SimNet::draw(&mut inner, duplicate_per_mille)
                || injected[NetFaultKind::Duplicate as usize];
            (handler, duplicate, delivery, injected)
        };

        let mut response = handler(request);
        if duplicate {
            {
                let mut inner = self.net.lock();
                inner.stats.duplicated += 1;
                inner.trace.push(NetFaultRecord {
                    delivery,
                    kind: NetFaultKind::Duplicate,
                    from: self.from.clone(),
                    to: peer.to_string(),
                });
            }
            response = handler(request);
        }

        // Phase 2: response-side faults. The handler has already run, so
        // every fault here leaves the caller unsure whether its request
        // took effect. (Nested requests from inside the handler may have
        // advanced the delivery counter, so this exchange's records pin
        // the index captured in phase 1.)
        let mut inner = self.net.lock();
        if inner.down.contains(peer) {
            inner.stats.resets += 1;
            return Err(NetError::Reset(format!(
                "peer '{peer}' crashed mid-request"
            )));
        }
        if inner.cuts.contains(&(peer.to_string(), self.from.clone())) {
            inner.stats.partitioned += 1;
            return Err(NetError::Timeout(format!(
                "partition {peer} -> {} (response lost)",
                self.from
            )));
        }
        let drop_response = inner.plan.drop_response_per_mille;
        if SimNet::draw(&mut inner, drop_response) || injected[NetFaultKind::DropResponse as usize]
        {
            inner.stats.dropped_responses += 1;
            inner.trace.push(NetFaultRecord {
                delivery,
                kind: NetFaultKind::DropResponse,
                from: self.from.clone(),
                to: peer.to_string(),
            });
            return Err(NetError::Timeout(format!("response from {peer} dropped")));
        }
        let reset = inner.plan.reset_per_mille;
        if SimNet::draw(&mut inner, reset) || injected[NetFaultKind::Reset as usize] {
            inner.stats.resets += 1;
            inner.trace.push(NetFaultRecord {
                delivery,
                kind: NetFaultKind::Reset,
                from: self.from.clone(),
                to: peer.to_string(),
            });
            return Err(NetError::Reset(format!("reset mid-response from {peer}")));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn echo_peer(net: &Arc<SimNet>, name: &str) -> Arc<AtomicU64> {
        let hits = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&hits);
        net.register(
            name,
            Arc::new(move |req: &WireRequest| {
                counter.fetch_add(1, Ordering::SeqCst);
                WireResponse::new(200, req.body.clone())
            }),
        );
        hits
    }

    #[test]
    fn clean_network_delivers() {
        let net = SimNet::new(1);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        let response = endpoint
            .request("w1", &WireRequest::post("/x", "hello"))
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"hello");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(matches!(
            endpoint.request("nobody", &WireRequest::get("/x")),
            Err(NetError::Refused(_))
        ));
    }

    #[test]
    fn crash_and_restart() {
        let net = SimNet::new(2);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        net.crash("w1");
        assert!(matches!(
            endpoint.request("w1", &WireRequest::get("/x")),
            Err(NetError::Refused(_))
        ));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        net.restart("w1");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
    }

    #[test]
    fn asymmetric_partition_runs_handler_but_loses_response() {
        let net = SimNet::new(3);
        let hits = echo_peer(&net, "w1");
        let endpoint = net.endpoint("coord");
        // Cut only the response direction: the peer processes the
        // request, the caller cannot tell.
        net.cut("w1", "coord");
        let error = endpoint.request("w1", &WireRequest::get("/x")).unwrap_err();
        assert!(matches!(error, NetError::Timeout(_)));
        assert!(error.request_delivered());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Cut the request direction: the handler never runs.
        net.heal("w1", "coord");
        net.cut("coord", "w1");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_err());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        net.heal_all();
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
    }

    #[test]
    fn duplicate_delivery_runs_handler_twice() {
        let net = SimNet::new(4);
        let hits = echo_peer(&net, "w1");
        net.set_plan(NetPlan {
            duplicate_per_mille: 1000,
            ..NetPlan::default()
        });
        let endpoint = net.endpoint("c");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn seeded_fault_schedules_replay() {
        let run = |seed: u64| -> Vec<bool> {
            let net = SimNet::new(seed);
            echo_peer(&net, "w1");
            net.set_plan(NetPlan {
                drop_request_per_mille: 300,
                drop_response_per_mille: 200,
                reset_per_mille: 100,
                duplicate_per_mille: 150,
            });
            let endpoint = net.endpoint("c");
            (0..64)
                .map(|_| endpoint.request("w1", &WireRequest::get("/x")).is_ok())
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !ok));
    }

    #[test]
    fn exact_injections_fire_at_their_delivery_and_record_the_trace() {
        let net = SimNet::new(0);
        let hits = echo_peer(&net, "w1");
        net.set_injections(vec![
            NetInjection {
                at_delivery: 2,
                kind: NetFaultKind::DropRequest,
            },
            NetInjection {
                at_delivery: 4,
                kind: NetFaultKind::Duplicate,
            },
            NetInjection {
                at_delivery: 5,
                kind: NetFaultKind::DropResponse,
            },
            NetInjection {
                at_delivery: 6,
                kind: NetFaultKind::Reset,
            },
        ]);
        assert_eq!(net.pending_injections(), 4);
        let endpoint = net.endpoint("coord");
        let get = WireRequest::get("/x");

        assert!(endpoint.request("w1", &get).is_ok(), "delivery 1 is clean");
        assert!(matches!(
            endpoint.request("w1", &get),
            Err(NetError::Timeout(_))
        ));
        assert_eq!(hits.load(Ordering::SeqCst), 1, "dropped request never ran");
        assert!(endpoint.request("w1", &get).is_ok(), "delivery 3 is clean");
        assert!(
            endpoint.request("w1", &get).is_ok(),
            "duplicate still answers"
        );
        assert_eq!(hits.load(Ordering::SeqCst), 4, "delivery 4 ran twice");
        assert!(matches!(
            endpoint.request("w1", &get),
            Err(NetError::Timeout(_))
        ));
        assert_eq!(hits.load(Ordering::SeqCst), 5, "dropped response still ran");
        assert!(matches!(
            endpoint.request("w1", &get),
            Err(NetError::Reset(_))
        ));
        assert_eq!(net.pending_injections(), 0);

        let trace: Vec<String> = net.fault_trace().iter().map(|r| r.to_string()).collect();
        assert_eq!(
            trace,
            vec![
                "net drop-request @2 (coord -> w1)",
                "net duplicate @4 (coord -> w1)",
                "net drop-response @5 (coord -> w1)",
                "net reset @6 (coord -> w1)",
            ]
        );
    }

    #[test]
    fn injections_survive_plan_changes_and_index_the_whole_run() {
        let net = SimNet::new(0);
        echo_peer(&net, "w1");
        net.set_injections(vec![NetInjection {
            at_delivery: 3,
            kind: NetFaultKind::DropRequest,
        }]);
        let endpoint = net.endpoint("c");
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
        net.set_plan(NetPlan::default());
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_ok());
        assert!(endpoint.request("w1", &WireRequest::get("/x")).is_err());
        assert_eq!(net.pending_injections(), 0);
    }

    #[test]
    fn plan_drawn_faults_land_in_the_trace_deterministically() {
        let run = |seed: u64| -> Vec<String> {
            let net = SimNet::new(seed);
            echo_peer(&net, "w1");
            net.set_plan(NetPlan {
                drop_request_per_mille: 250,
                drop_response_per_mille: 250,
                reset_per_mille: 100,
                duplicate_per_mille: 100,
            });
            let endpoint = net.endpoint("c");
            for _ in 0..64 {
                let _ = endpoint.request("w1", &WireRequest::get("/x"));
            }
            net.fault_trace().iter().map(|r| r.to_string()).collect()
        };
        let trace = run(11);
        assert!(!trace.is_empty(), "heavy plan should fire something");
        assert_eq!(trace, run(11), "same seed, same trace");
        assert_ne!(trace, run(12), "different seed, different trace");
    }
}
