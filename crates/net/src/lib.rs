//! `pnp-net`: the network analogue of the kernel's `Vfs` layer.
//!
//! Every remote exchange in the stack — the `pnp-check --submit` client,
//! the cluster coordinator's dispatches, heartbeats, and result
//! transfers — goes through the [`Transport`] trait instead of touching
//! [`std::net`] directly. Two implementations exist:
//!
//! * [`RealTcp`]: one `Connection: close` HTTP/1.1 exchange per request
//!   over a real socket, with connect/read/write timeouts.
//! * [`SimNet`]: a seeded in-memory network that delivers requests to
//!   registered in-process peers and injects faults — dropped requests,
//!   dropped responses, duplicated deliveries, connection resets, and
//!   asymmetric partitions — at every message boundary, deterministically
//!   from the seed. The exact analogue of the kernel's `SimFs`.
//!
//! The separation mirrors the paper's component/connector split: the
//! protocol state machines (client retries, coordinator fail-over) are
//! components; the transport is an explicit connector whose failure
//! modes are part of its contract and can be exhausted in tests.
#![warn(missing_docs)]

pub mod client;
pub mod real;
pub mod sim;

pub use client::{ClientError, SubmitClient, SubmitOutcome};
pub use real::RealTcp;
pub use sim::{NetFaultKind, NetFaultRecord, NetInjection, NetPlan, NetStats, SimEndpoint, SimNet};

/// One request: an HTTP-shaped `(method, target, body)` triple. `target`
/// carries the path and query string exactly as it would appear on the
/// request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path plus query string, e.g. `/jobs?threads=2`.
    pub target: String,
    /// The body (empty when there is none).
    pub body: Vec<u8>,
}

impl WireRequest {
    /// A bodyless `GET`.
    pub fn get(target: impl Into<String>) -> WireRequest {
        WireRequest {
            method: "GET".into(),
            target: target.into(),
            body: Vec::new(),
        }
    }

    /// A `POST` with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Vec<u8>>) -> WireRequest {
        WireRequest {
            method: "POST".into(),
            target: target.into(),
            body: body.into(),
        }
    }

    /// The first query parameter named `key`, percent-decoded.
    pub fn query(&self, key: &str) -> Option<String> {
        let (_, query) = self.target.split_once('?')?;
        query
            .split('&')
            .filter_map(|kv| kv.split_once('=').or(Some((kv, ""))))
            .find(|(k, _)| percent_decode(k) == key)
            .map(|(_, v)| percent_decode(v))
    }

    /// The path without the query string.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }
}

/// One response: status plus body. Headers beyond `Retry-After` carry no
/// protocol meaning in this stack, so only that one survives transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The `Retry-After` header in seconds, when the peer sent one.
    pub retry_after: Option<u64>,
    /// The body.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// A response with a status and a body, no `Retry-After`.
    pub fn new(status: u16, body: impl Into<Vec<u8>>) -> WireResponse {
        WireResponse {
            status,
            retry_after: None,
            body: body.into(),
        }
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why an exchange failed. Every variant is transient from the caller's
/// point of view; [`NetError::request_delivered`] tells the caller
/// whether the peer may have *processed* the request — the distinction
/// that decides whether a non-idempotent retry risks a duplicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The connection could not be established: the request was never
    /// sent, so retrying is always safe.
    Refused(String),
    /// The connection died after the request was sent (reset, EOF
    /// mid-response): the peer may or may not have processed it.
    Reset(String),
    /// No response arrived in time: the peer may or may not have
    /// processed the request.
    Timeout(String),
}

impl NetError {
    /// Whether the request may have reached the peer. `false` means a
    /// retry cannot duplicate a side effect.
    pub fn request_delivered(&self) -> bool {
        !matches!(self, NetError::Refused(_))
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Refused(m) => write!(f, "connection refused: {m}"),
            NetError::Reset(m) => write!(f, "connection reset: {m}"),
            NetError::Timeout(m) => write!(f, "timed out: {m}"),
        }
    }
}

/// A request/response transport to named peers (`host:port` for
/// [`RealTcp`], registered peer names for [`SimNet`]).
pub trait Transport: Send + Sync {
    /// Performs one exchange with `peer`.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] when no response was obtained; see
    /// [`NetError::request_delivered`] for retry safety.
    fn request(&self, peer: &str, request: &WireRequest) -> Result<WireResponse, NetError>;
}

/// Percent-encodes a query component (everything but unreserved chars).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decodes `%XX` and `+`; invalid escapes pass through.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = |b: Option<&u8>| (*b? as char).to_digit(16).map(|d| d as u8);
                match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Extracts `"key":"value"` from flat JSON (the daemon's responses carry
/// no escapes in the fields clients read).
pub fn json_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = json.find(&needle)? + needle.len();
    json[start..].split('"').next().map(str::to_string)
}

/// Extracts `"key":N` from flat JSON.
pub fn json_num(json: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_request_query_and_path() {
        let req = WireRequest::get("/jobs?budget=states%3D100&tenant=a+b");
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.query("budget").as_deref(), Some("states=100"));
        assert_eq!(req.query("tenant").as_deref(), Some("a b"));
        assert_eq!(req.query("missing"), None);
        assert_eq!(WireRequest::get("/health").path(), "/health");
    }

    #[test]
    fn percent_roundtrip() {
        let original = "states=100,time=50 ms&x";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn refused_is_the_only_safe_retry() {
        assert!(!NetError::Refused("x".into()).request_delivered());
        assert!(NetError::Reset("x".into()).request_delivered());
        assert!(NetError::Timeout("x".into()).request_delivered());
    }

    #[test]
    fn json_extractors() {
        let json = r#"{"id":"j-3","retry_after_ms":1500,"neg":-2}"#;
        assert_eq!(json_str(json, "id").as_deref(), Some("j-3"));
        assert_eq!(json_num(json, "retry_after_ms"), Some(1500));
        assert_eq!(json_num(json, "neg"), Some(-2));
        assert_eq!(json_str(json, "absent"), None);
    }
}
