//! The job-submission client used by `pnp-check --submit`, generic over
//! [`Transport`] so the SimNet tests can drive it through every network
//! fault.
//!
//! The retry contract is built around [`NetError::request_delivered`]:
//!
//! * A **refused** connection provably never reached the daemon, so the
//!   client retries it transparently — no duplicate is possible.
//! * A **reset or timeout** after the request was sent is ambiguous: the
//!   daemon may have admitted the job. Without an idempotency key the
//!   client refuses to guess — it surfaces a clean *retryable* error and
//!   never resubmits on its own. With [`SubmitClient::idem_key`] set the
//!   daemon deduplicates, so the client retries the ambiguous cases too
//!   and a duplicated delivery still admits exactly one job.
//! * Status polls and cancels are idempotent and always retried.

use std::time::Duration;

use crate::{json_num, json_str, NetError, Transport, WireRequest};

/// How a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transient: the caller may retry the whole operation later.
    Retryable {
        /// What happened.
        reason: String,
        /// The daemon's `Retry-After` hint, when it sent one.
        retry_after_ms: Option<u64>,
    },
    /// Permanent: retrying cannot help (bad request, unknown job, …).
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable {
                reason,
                retry_after_ms,
            } => match retry_after_ms {
                Some(ms) => write!(f, "{reason} (retry in {ms} ms)"),
                None => write!(f, "{reason} (retryable)"),
            },
            ClientError::Fatal(reason) => f.write_str(reason),
        }
    }
}

/// A submitted job's identity and polling URLs.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The daemon-assigned job id (`j-N`, or `g-N` from a coordinator).
    pub id: String,
}

/// The client; `transport` decides whether exchanges hit real sockets
/// ([`crate::RealTcp`]) or a [`crate::SimNet`].
pub struct SubmitClient<T: Transport> {
    transport: T,
    /// Transparent retries for safe (undelivered or idempotent)
    /// failures (default 3).
    pub max_retries: u32,
    /// Pause between transparent retries (default 100 ms; tests use 0).
    pub retry_backoff: Duration,
    /// Idempotency key sent as `idem=KEY` on submissions. When set, the
    /// daemon deduplicates resubmissions, making ambiguous-failure
    /// retries safe.
    pub idem_key: Option<String>,
}

impl<T: Transport> SubmitClient<T> {
    /// A client over `transport` with default retry policy.
    pub fn new(transport: T) -> SubmitClient<T> {
        SubmitClient {
            transport,
            max_retries: 3,
            retry_backoff: Duration::from_millis(100),
            idem_key: None,
        }
    }

    fn pause(&self) {
        if !self.retry_backoff.is_zero() {
            std::thread::sleep(self.retry_backoff);
        }
    }

    /// Submits `source` to the daemon at `peer` with the given
    /// (already-encoded) query string after `/jobs`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Retryable`] on shed (503) or an ambiguous network
    /// failure; [`ClientError::Fatal`] on anything a retry cannot fix.
    pub fn submit(
        &self,
        peer: &str,
        source: &str,
        query: &str,
    ) -> Result<SubmitOutcome, ClientError> {
        let mut target = String::from("/jobs");
        let mut sep = '?';
        if !query.is_empty() {
            target.push(sep);
            target.push_str(query);
            sep = '&';
        }
        if let Some(key) = &self.idem_key {
            target.push(sep);
            target.push_str("idem=");
            target.push_str(&crate::percent_encode(key));
        }
        let request = WireRequest::post(target, source.as_bytes().to_vec());
        let mut last_error: Option<NetError> = None;
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.pause();
            }
            match self.transport.request(peer, &request) {
                Ok(response) => {
                    return Self::parse_submit(
                        &response.text(),
                        response.status,
                        response.retry_after,
                    )
                }
                Err(error) => {
                    let safe = !error.request_delivered() || self.idem_key.is_some();
                    if !safe {
                        // The daemon may have admitted the job; without an
                        // idempotency key a resubmit could double-admit.
                        return Err(ClientError::Retryable {
                            reason: format!(
                                "submit outcome unknown ({error}); the job may or may not \
                                 have been admitted — check the daemon before resubmitting"
                            ),
                            retry_after_ms: None,
                        });
                    }
                    last_error = Some(error);
                }
            }
        }
        Err(ClientError::Retryable {
            reason: format!(
                "submit failed after {} attempts: {}",
                self.max_retries + 1,
                last_error.map_or_else(|| "no error".into(), |e| e.to_string())
            ),
            retry_after_ms: None,
        })
    }

    fn parse_submit(
        body: &str,
        status: u16,
        retry_after: Option<u64>,
    ) -> Result<SubmitOutcome, ClientError> {
        match status {
            202 => json_str(body, "id")
                .map(|id| SubmitOutcome { id })
                .ok_or_else(|| {
                    ClientError::Fatal(format!("submit response carried no job id: {body}"))
                }),
            503 => Err(ClientError::Retryable {
                reason: format!(
                    "server overloaded ({})",
                    json_str(body, "reason").unwrap_or_else(|| "shed".into())
                ),
                retry_after_ms: json_num(body, "retry_after_ms")
                    .map(|ms| ms as u64)
                    .or(retry_after.map(|s| s * 1000)),
            }),
            status => Err(ClientError::Fatal(format!(
                "submit failed with HTTP {status}: {body}"
            ))),
        }
    }

    /// Polls the job's result once (with transparent retries for
    /// transient network failures — polling is idempotent). `Ok(None)`
    /// means still running.
    ///
    /// # Errors
    ///
    /// [`ClientError::Retryable`] when the daemon stayed unreachable;
    /// [`ClientError::Fatal`] on an unknown job or malformed answer.
    pub fn poll_result(&self, peer: &str, id: &str) -> Result<Option<String>, ClientError> {
        let request = WireRequest::get(format!("/jobs/{id}/result"));
        let mut last_error = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.pause();
            }
            match self.transport.request(peer, &request) {
                Ok(response) => {
                    return match response.status {
                        200 => Ok(Some(response.text())),
                        202 => Ok(None),
                        // Shed under overload: surface the daemon's
                        // back-off hint so wait loops can honor it.
                        503 => Err(ClientError::Retryable {
                            reason: format!(
                                "server overloaded ({})",
                                json_str(&response.text(), "reason")
                                    .unwrap_or_else(|| "shed".into())
                            ),
                            retry_after_ms: json_num(&response.text(), "retry_after_ms")
                                .map(|ms| ms as u64)
                                .or(response.retry_after.map(|s| s * 1000)),
                        }),
                        status => Err(ClientError::Fatal(format!(
                            "polling {id} failed with HTTP {status}: {}",
                            response.text()
                        ))),
                    };
                }
                Err(error) => last_error = error.to_string(),
            }
        }
        Err(ClientError::Retryable {
            reason: format!("cannot poll {id}: {last_error}"),
            retry_after_ms: None,
        })
    }

    /// Polls until the job reaches a terminal state. Sleeps
    /// `retry_backoff` between rounds, stretching the pause to any
    /// `Retry-After` hint an overloaded daemon sends, and caps **total**
    /// wall time at `deadline` when one is given — `Ok(None)` then means
    /// the budget ran out with the job still running, so callers can
    /// report an honest INCONCLUSIVE instead of hanging.
    ///
    /// # Errors
    ///
    /// [`ClientError::Fatal`] on an unknown job or malformed answer.
    /// Without a deadline, [`ClientError::Retryable`] when the daemon
    /// stays unreachable; with one, unreachability is retried until the
    /// deadline expires.
    pub fn wait_result(
        &self,
        peer: &str,
        id: &str,
        deadline: Option<Duration>,
    ) -> Result<Option<String>, ClientError> {
        let started = std::time::Instant::now();
        loop {
            let hint = match self.poll_result(peer, id) {
                Ok(Some(body)) => return Ok(Some(body)),
                Ok(None) => None,
                Err(ClientError::Retryable {
                    reason,
                    retry_after_ms,
                }) => {
                    if deadline.is_none() {
                        // No budget to burn waiting out an outage.
                        return Err(ClientError::Retryable {
                            reason,
                            retry_after_ms,
                        });
                    }
                    retry_after_ms
                }
                Err(fatal) => return Err(fatal),
            };
            let mut pause = hint.map_or(self.retry_backoff, Duration::from_millis);
            if let Some(limit) = deadline {
                let elapsed = started.elapsed();
                if elapsed >= limit {
                    return Ok(None);
                }
                // Never sleep past the deadline itself.
                pause = pause.min(limit - elapsed);
            }
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// Requests cooperative cancellation (idempotent, retried).
    ///
    /// # Errors
    ///
    /// [`ClientError::Retryable`] when the daemon stayed unreachable.
    pub fn cancel(&self, peer: &str, id: &str) -> Result<(), ClientError> {
        let request = WireRequest::post(format!("/jobs/{id}/cancel"), Vec::new());
        let mut last_error = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.pause();
            }
            match self.transport.request(peer, &request) {
                Ok(_) => return Ok(()),
                Err(error) => last_error = error.to_string(),
            }
        }
        Err(ClientError::Retryable {
            reason: format!("cannot cancel {id}: {last_error}"),
            retry_after_ms: None,
        })
    }
}
