//! [`RealTcp`]: one `Connection: close` HTTP/1.1 exchange per request
//! over a real socket.
//!
//! The client half of the daemon's from-scratch HTTP layer: request
//! line plus `Content-Length` body out, status line plus headers plus
//! body in. Every socket operation is bounded — connect, read, and
//! write timeouts — so a stalled or vanished peer becomes a clean
//! [`NetError`] instead of a hung client.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::{NetError, Transport, WireRequest, WireResponse};

/// The real-socket transport.
#[derive(Debug, Clone)]
pub struct RealTcp {
    /// Connect timeout (default 3 s).
    pub connect_timeout: Duration,
    /// Deadline for reading the whole response (default 10 s). Bounds
    /// total elapsed read time, not each read syscall, so a peer
    /// trickling one byte per interval still times out.
    pub read_timeout: Duration,
    /// Write timeout for the request (default 10 s).
    pub write_timeout: Duration,
}

impl Default for RealTcp {
    fn default() -> RealTcp {
        RealTcp {
            connect_timeout: Duration::from_secs(3),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

fn classify(context: &str, error: &std::io::Error) -> NetError {
    match error.kind() {
        ErrorKind::ConnectionRefused => NetError::Refused(format!("{context}: {error}")),
        ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout(context.to_string()),
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => NetError::Reset(format!("{context}: {error}")),
        _ => NetError::Reset(format!("{context}: {error}")),
    }
}

impl Transport for RealTcp {
    fn request(&self, peer: &str, request: &WireRequest) -> Result<WireResponse, NetError> {
        let addr: std::net::SocketAddr = peer
            .parse()
            .or_else(|_| {
                use std::net::ToSocketAddrs;
                peer.to_socket_addrs()
                    .map_err(std::io::Error::other)?
                    .next()
                    .ok_or_else(|| std::io::Error::other("no address"))
            })
            .map_err(|e| NetError::Refused(format!("cannot resolve {peer}: {e}")))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| classify(&format!("connect to {peer}"), &e))?;
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        let _ = stream.set_write_timeout(Some(self.write_timeout));

        let head = format!(
            "{} {} HTTP/1.1\r\nHost: {peer}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            request.method,
            request.target,
            request.body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(&request.body))
            .and_then(|()| stream.flush())
            .map_err(|e| {
                // The head may have partially reached the peer; a failed
                // send is not provably undelivered, except on refusal.
                classify(&format!("send to {peer}"), &e)
            })?;

        // Read under an overall deadline: re-arm the socket timeout
        // with the time left before every read, so a slow-trickling
        // peer cannot hold the exchange open past `read_timeout`.
        let deadline = std::time::Instant::now() + self.read_timeout;
        let mut raw = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|d| !d.is_zero())
                .ok_or_else(|| NetError::Timeout(format!("read from {peer}")))?;
            let _ = stream.set_read_timeout(Some(remaining));
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(classify(&format!("read from {peer}"), &e)),
            }
        }
        parse_response(&raw)
            .ok_or_else(|| NetError::Reset(format!("malformed response from {peer}")))
    }
}

/// Parses a full `Connection: close` HTTP/1.1 response. Returns `None`
/// on malformed or truncated input (a short `Content-Length` body counts
/// as truncated: the peer died mid-response).
fn parse_response(raw: &[u8]) -> Option<WireResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut retry_after = None;
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "retry-after" => retry_after = value.parse().ok(),
                "content-length" => content_length = value.parse().ok(),
                _ => {}
            }
        }
    }
    let body = raw[head_end + 4..].to_vec();
    if let Some(expected) = content_length {
        if body.len() < expected {
            return None;
        }
    }
    Some(WireResponse {
        status,
        retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_responses_and_detects_truncation() {
        let ok = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n\
                   Content-Length: 4\r\n\r\nbody";
        let response = parse_response(ok).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.retry_after, Some(2));
        assert_eq!(response.body, b"body");
        // Body shorter than Content-Length: the peer died mid-response.
        let torn = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nbo";
        assert!(parse_response(torn).is_none());
        assert!(parse_response(b"garbage").is_none());
    }

    #[test]
    fn refused_when_no_listener() {
        // Bind then drop to find a port with nothing listening.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let result = RealTcp::default().request(&addr.to_string(), &WireRequest::get("/health"));
        assert!(matches!(result, Err(NetError::Refused(_))));
    }

    #[test]
    fn trickling_peer_hits_the_overall_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
            // Headers promise a large body, then one byte per 50 ms:
            // each read succeeds inside a per-syscall timeout, so only
            // an overall deadline can stop this.
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n")
                .unwrap();
            for _ in 0..100 {
                if stream.write_all(b"x").is_err() {
                    return; // Client gave up — exactly what we want.
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let client = RealTcp {
            read_timeout: Duration::from_millis(300),
            ..RealTcp::default()
        };
        let started = std::time::Instant::now();
        let result = client.request(&addr, &WireRequest::get("/health"));
        assert!(matches!(result, Err(NetError::Timeout(_))), "{result:?}");
        assert!(started.elapsed() < Duration::from_secs(3));
        server.join().unwrap();
    }

    #[test]
    fn exchanges_with_a_real_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            assert!(String::from_utf8_lossy(&buf[..n]).starts_with("POST /jobs?x=1 HTTP/1.1"));
            stream
                .write_all(b"HTTP/1.1 202 Accepted\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        });
        let response = RealTcp::default()
            .request(&addr, &WireRequest::post("/jobs?x=1", "body"))
            .unwrap();
        assert_eq!(response.status, 202);
        assert_eq!(response.body, b"ok");
        server.join().unwrap();
    }
}
