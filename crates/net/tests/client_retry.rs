//! `pnp-check --submit` client behaviour under transient network
//! failure, driven through [`SimNet`]: refused connections retry
//! transparently, ambiguous failures (reset mid-response) surface a
//! clean retryable error without resubmitting, and idempotency keys
//! make every ambiguous case safe — duplicated deliveries and blind
//! retries still admit exactly one job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pnp_net::{ClientError, NetPlan, SimNet, SubmitClient, WireRequest, WireResponse};

/// A miniature daemon: admits `POST /jobs`, deduplicating on the `idem`
/// query key exactly like the real supervisor, and counts admissions.
struct MiniDaemon {
    admissions: AtomicU64,
    by_idem: Mutex<std::collections::HashMap<String, u64>>,
    next: AtomicU64,
}

impl MiniDaemon {
    fn install(net: &Arc<SimNet>, name: &str) -> Arc<MiniDaemon> {
        let daemon = Arc::new(MiniDaemon {
            admissions: AtomicU64::new(0),
            by_idem: Mutex::new(std::collections::HashMap::new()),
            next: AtomicU64::new(1),
        });
        let handler = Arc::clone(&daemon);
        net.register(
            name,
            Arc::new(move |request: &WireRequest| handler.handle(request)),
        );
        daemon
    }

    fn handle(&self, request: &WireRequest) -> WireResponse {
        if request.method != "POST" || request.path() != "/jobs" {
            return WireResponse::new(404, b"{\"error\":\"not_found\"}".to_vec());
        }
        let id = match request.query("idem") {
            Some(key) => {
                let mut index = self.by_idem.lock().unwrap();
                *index.entry(key.to_string()).or_insert_with(|| {
                    self.admissions.fetch_add(1, Ordering::SeqCst);
                    self.next.fetch_add(1, Ordering::SeqCst)
                })
            }
            None => {
                self.admissions.fetch_add(1, Ordering::SeqCst);
                self.next.fetch_add(1, Ordering::SeqCst)
            }
        };
        WireResponse::new(202, format!("{{\"id\":\"j-{id}\"}}").into_bytes())
    }

    fn admitted(&self) -> u64 {
        self.admissions.load(Ordering::SeqCst)
    }
}

fn fast_client(net: &Arc<SimNet>) -> SubmitClient<pnp_net::SimEndpoint> {
    let mut client = SubmitClient::new(net.endpoint("client"));
    client.retry_backoff = Duration::ZERO;
    client
}

/// A refused connection provably never reached the daemon: the client
/// retries transparently and, once the daemon is back, succeeds without
/// ever double-submitting.
#[test]
fn refused_connection_retries_transparently_and_never_double_submits() {
    let net = SimNet::new(11);
    let daemon = MiniDaemon::install(&net, "daemon");
    let client = fast_client(&net);

    net.crash("daemon");
    let error = client
        .submit("daemon", "system { }", "")
        .expect_err("every attempt is refused");
    match &error {
        ClientError::Retryable { reason, .. } => {
            assert!(
                reason.contains("submit failed after 4 attempts"),
                "refusals are retried to exhaustion: {reason}"
            );
        }
        other => panic!("refusal must stay retryable, got {other:?}"),
    }
    assert_eq!(daemon.admitted(), 0, "nothing reached the daemon");

    net.restart("daemon");
    let outcome = client
        .submit("daemon", "system { }", "")
        .expect("daemon is back");
    assert_eq!(outcome.id, "j-1");
    assert_eq!(daemon.admitted(), 1);
}

/// A reset mid-response is ambiguous: the daemon may have admitted the
/// job. Without an idempotency key the client must not guess — it
/// surfaces a clean retryable error and does not resubmit on its own.
#[test]
fn ambiguous_reset_without_idem_surfaces_cleanly_without_resubmitting() {
    let net = SimNet::new(12);
    let daemon = MiniDaemon::install(&net, "daemon");
    let client = fast_client(&net);
    net.set_plan(NetPlan {
        reset_per_mille: 1000,
        ..NetPlan::default()
    });

    let error = client
        .submit("daemon", "system { }", "")
        .expect_err("the response is always reset");
    match &error {
        ClientError::Retryable { reason, .. } => {
            assert!(
                reason.contains("submit outcome unknown"),
                "ambiguity is named, not hidden: {reason}"
            );
        }
        other => panic!("ambiguous failures must stay retryable, got {other:?}"),
    }
    assert_eq!(
        daemon.admitted(),
        1,
        "exactly one request went out: the client did not blind-retry"
    );
}

/// With an idempotency key the daemon deduplicates, so the client *may*
/// retry ambiguous failures — and however many land, exactly one job is
/// admitted.
#[test]
fn idem_key_makes_ambiguous_retries_safe() {
    let net = SimNet::new(13);
    let daemon = MiniDaemon::install(&net, "daemon");
    let mut client = fast_client(&net);
    client.idem_key = Some("job-42".into());
    net.set_plan(NetPlan {
        reset_per_mille: 1000,
        ..NetPlan::default()
    });

    // Every attempt reaches the daemon and every response is reset: the
    // client exhausts its retries, but the daemon admits only one job.
    let error = client
        .submit("daemon", "system { }", "")
        .expect_err("all responses reset");
    assert!(matches!(error, ClientError::Retryable { .. }));
    assert_eq!(daemon.admitted(), 1, "dedup held across 4 deliveries");

    // The caller retries the whole operation once the network heals and
    // gets the originally-admitted job back.
    net.set_plan(NetPlan::default());
    let outcome = client.submit("daemon", "system { }", "").expect("heals");
    assert_eq!(outcome.id, "j-1");
    assert_eq!(daemon.admitted(), 1, "still exactly one admission");
}

/// A duplicated delivery (retransmit whose first response was lost) runs
/// the daemon handler twice for one client call; the idempotency key
/// keeps the admission count at one.
#[test]
fn duplicated_delivery_with_idem_admits_exactly_once() {
    let net = SimNet::new(14);
    let daemon = MiniDaemon::install(&net, "daemon");
    let mut client = fast_client(&net);
    client.idem_key = Some("dup-1".into());
    net.set_plan(NetPlan {
        duplicate_per_mille: 1000,
        ..NetPlan::default()
    });

    let outcome = client
        .submit("daemon", "system { }", "")
        .expect("delivered");
    assert_eq!(outcome.id, "j-1");
    assert_eq!(
        net.stats().duplicated,
        1,
        "the delivery really was duplicated"
    );
    assert_eq!(daemon.admitted(), 1, "second delivery deduplicated");
}

/// Result polling is idempotent and therefore always retried; a flaky
/// link that eventually delivers yields the result without error.
#[test]
fn poll_is_retried_through_dropped_requests() {
    let net = SimNet::new(15);
    let hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&hits);
    net.register(
        "daemon",
        Arc::new(move |_request: &WireRequest| {
            counter.fetch_add(1, Ordering::SeqCst);
            WireResponse::new(200, b"{\"verdict\":\"passed\"}".to_vec())
        }),
    );
    let client = fast_client(&net);
    net.set_plan(NetPlan {
        drop_request_per_mille: 500,
        ..NetPlan::default()
    });

    let mut delivered = 0;
    for _ in 0..16 {
        if let Ok(Some(body)) = client.poll_result("daemon", "j-1") {
            assert!(body.contains("passed"));
            delivered += 1;
        }
    }
    assert!(delivered > 0, "retries punch through a 50% drop rate");
    assert!(hits.load(Ordering::SeqCst) >= delivered);
}
