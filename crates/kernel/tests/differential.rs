//! Differential tests: the parallel safety search must agree with the
//! sequential kernel.
//!
//! For every corpus program, parallel runs at 2, 4, and 8 threads are
//! compared against the sequential (1-thread) run:
//!
//! * identical verdicts, always;
//! * identical `unique_states`, `steps`, and `max_depth` for exhaustive
//!   `Holds` runs under the exact backend (the parallel kernel explores
//!   the same reduced state graph, level by level);
//! * violation traces of the same (shortest) length that replay exactly
//!   against the program.
//!
//! The determinism contract is pinned here too: a 1-thread run is fully
//! reproducible (byte-identical report modulo wall-clock `elapsed`);
//! for threads > 1 the verdict and the exhaustive-run counters above are
//! stable, while `peak_frontier`, `approx_memory_bytes`, `elapsed`, and
//! *which* counterexample is reported may vary between runs.

use std::cell::RefCell;
use std::mem::discriminant;
use std::rc::Rc;
use std::time::Duration;

use pnp_kernel::{
    expr, Action, Checker, Guard, Predicate, ProcessBuilder, Program, ProgramBuilder, SafetyChecks,
    SafetyOutcome, SearchConfig, Snapshot, VisitedKind,
};

/// Two processes that each toggle a shared flag `n` times.
fn toggler(n: i32) -> Program {
    let mut prog = ProgramBuilder::new();
    let flag = prog.global("flag", 0);
    for name in ["a", "b"] {
        let mut p = ProcessBuilder::new(name);
        let count = p.local("count", 0);
        let s0 = p.location("loop");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(count), n.into())),
            Action::assign_all(vec![
                (flag.into(), expr::not(expr::global(flag))),
                (count.into(), expr::local(count) + 1.into()),
            ]),
            "toggle",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::local(count), n.into())),
            Action::Skip,
            "finish",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// A producer/consumer pair over a bounded FIFO channel.
fn buffered_pipe(messages: i32, capacity: usize) -> Program {
    let mut prog = ProgramBuilder::new();
    let chan = prog.channel("pipe", capacity, 1);
    let got = prog.global("got", 0);

    let mut producer = ProcessBuilder::new("producer");
    let sent = producer.local("sent", 0);
    let s0 = producer.location("send");
    let s1 = producer.location("done");
    producer.mark_end(s1);
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::send(chan, vec![expr::local(sent) + 1.into()]),
        "send",
    );
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::assign(sent, expr::local(sent) + 1.into()),
        "bump",
    );
    producer.transition(
        s0,
        s1,
        Guard::when(expr::ge(expr::local(sent), messages.into())),
        Action::Skip,
        "finish",
    );
    prog.add_process(producer).unwrap();

    let mut consumer = ProcessBuilder::new("consumer");
    let seen = consumer.local("seen", 0);
    let c0 = consumer.location("recv");
    let c1 = consumer.location("done");
    consumer.mark_end(c0);
    consumer.mark_end(c1);
    consumer.transition(c0, c0, Guard::always(), Action::recv_any(chan, 1), "recv");
    consumer.transition(
        c0,
        c1,
        Guard::when(expr::ge(expr::local(seen), 0.into())),
        Action::assign(got, expr::global(got) + 1.into()),
        "tally",
    );
    prog.add_process(consumer).unwrap();
    prog.build().unwrap()
}

/// Two processes that each wait to receive before sending: a guaranteed
/// deadlock.
fn mutual_wait() -> Program {
    let mut prog = ProgramBuilder::new();
    let c1 = prog.channel("c1", 0, 1);
    let c2 = prog.channel("c2", 0, 1);
    for (name, recv_chan, send_chan) in [("p", c1, c2), ("q", c2, c1)] {
        let mut p = ProcessBuilder::new(name);
        let s0 = p.location("wait");
        let s1 = p.location("reply");
        let s2 = p.location("done");
        p.mark_end(s2);
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::recv_any(recv_chan, 1),
            "recv",
        );
        p.transition(
            s1,
            s2,
            Guard::always(),
            Action::send(send_chan, vec![1.into()]),
            "send",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// Two incrementers racing past an asserted bound: an assertion failure
/// a few levels deep.
fn assertion_bug() -> Program {
    let mut prog = ProgramBuilder::new();
    let x = prog.global("x", 0);
    for name in ["inc_a", "inc_b"] {
        let mut p = ProcessBuilder::new(name);
        let s0 = p.location("first");
        let s1 = p.location("second");
        let s2 = p.location("check");
        let s3 = p.location("done");
        p.mark_end(s3);
        let bump = Action::assign(x, expr::global(x) + 1.into());
        p.transition(s0, s1, Guard::always(), bump.clone(), "bump1");
        p.transition(s1, s2, Guard::always(), bump, "bump2");
        p.transition(
            s2,
            s3,
            Guard::always(),
            Action::assert(expr::lt(expr::global(x), 4.into()), "x < 4"),
            "assert",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// A seeded invariant bug: the flag escapes its advertised bound only
/// after both processes have toggled several times.
fn seeded_invariant_bug() -> (Program, SafetyChecks) {
    let mut prog = ProgramBuilder::new();
    let total = prog.global("total", 0);
    for name in ["a", "b"] {
        let mut p = ProcessBuilder::new(name);
        let count = p.local("count", 0);
        let s0 = p.location("loop");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(count), 3.into())),
            Action::assign_all(vec![
                (total.into(), expr::global(total) + 1.into()),
                (count.into(), expr::local(count) + 1.into()),
            ]),
            "bump",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::local(count), 3.into())),
            Action::Skip,
            "finish",
        );
        prog.add_process(p).unwrap();
    }
    let program = prog.build().unwrap();
    let total = program.global_by_name("total").unwrap();
    let checks = SafetyChecks {
        deadlock: false,
        invariants: vec![(
            "total under 5".into(),
            Predicate::from_expr(expr::lt(expr::global(total), 5.into())),
        )],
    };
    (program, checks)
}

/// The differential corpus: name, program, and the checks to run.
fn corpus() -> Vec<(&'static str, Program, SafetyChecks)> {
    let mut corpus = Vec::new();

    let program = toggler(4);
    let flag = program.global_by_name("flag").unwrap();
    corpus.push((
        "toggler holds",
        program,
        SafetyChecks {
            deadlock: true,
            invariants: vec![(
                "flag is a bit".into(),
                Predicate::from_expr(expr::and(
                    expr::ge(expr::global(flag), 0.into()),
                    expr::le(expr::global(flag), 1.into()),
                )),
            )],
        },
    ));

    corpus.push((
        "buffered pipe holds",
        buffered_pipe(3, 2),
        SafetyChecks {
            deadlock: false,
            invariants: Vec::new(),
        },
    ));

    corpus.push((
        "mutual wait deadlock",
        mutual_wait(),
        SafetyChecks::deadlock_only(),
    ));

    corpus.push((
        "assertion bug",
        assertion_bug(),
        SafetyChecks {
            deadlock: false,
            invariants: Vec::new(),
        },
    ));

    let (program, checks) = seeded_invariant_bug();
    corpus.push(("seeded invariant bug", program, checks));

    corpus
}

fn run(
    program: &Program,
    checks: &SafetyChecks,
    threads: usize,
    visited: VisitedKind,
) -> pnp_kernel::SafetyReport {
    Checker::with_config(
        program,
        SearchConfig {
            threads,
            visited,
            ..SearchConfig::default()
        },
    )
    .check_safety(checks)
    .unwrap()
}

#[test]
fn parallel_matches_sequential_on_corpus() {
    for (name, program, checks) in corpus() {
        let seq = run(&program, &checks, 1, VisitedKind::Exact);
        for threads in [2, 4, 8] {
            let par = run(&program, &checks, threads, VisitedKind::Exact);
            assert_eq!(
                discriminant(&par.outcome),
                discriminant(&seq.outcome),
                "{name}@{threads}: verdict {:?} vs sequential {:?}",
                par.outcome,
                seq.outcome
            );
            if seq.outcome.is_holds() {
                assert_eq!(
                    par.stats.unique_states, seq.stats.unique_states,
                    "{name}@{threads}: states"
                );
                assert_eq!(par.stats.steps, seq.stats.steps, "{name}@{threads}: steps");
                assert_eq!(
                    par.stats.max_depth, seq.stats.max_depth,
                    "{name}@{threads}: depth"
                );
            } else {
                // BFS shortest-counterexample property: the parallel trace
                // may differ from the sequential one but must be equally
                // short and must replay exactly.
                let seq_trace = seq.outcome.trace().expect("sequential trace");
                let par_trace = par.outcome.trace().expect("parallel trace");
                assert_eq!(
                    par_trace.len(),
                    seq_trace.len(),
                    "{name}@{threads}: trace length"
                );
                let end = Checker::new(&program).replay_trace(par_trace).unwrap();
                assert!(end.is_some(), "{name}@{threads}: trace must replay exactly");
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_without_reduction() {
    for (name, program, checks) in corpus() {
        let base = SearchConfig {
            partial_order_reduction: false,
            ..SearchConfig::default()
        };
        let seq = Checker::with_config(&program, base)
            .check_safety(&checks)
            .unwrap();
        let par = Checker::with_config(&program, SearchConfig { threads: 4, ..base })
            .check_safety(&checks)
            .unwrap();
        assert_eq!(
            discriminant(&par.outcome),
            discriminant(&seq.outcome),
            "{name}: verdict"
        );
        if seq.outcome.is_holds() {
            assert_eq!(par.stats.unique_states, seq.stats.unique_states, "{name}");
            assert_eq!(par.stats.steps, seq.stats.steps, "{name}");
            assert_eq!(par.stats.max_depth, seq.stats.max_depth, "{name}");
        }
    }
}

#[test]
fn parallel_compact_backend_agrees_on_corpus() {
    // The corpus is far too small for 64-bit hash collisions, so the
    // compact backend must report the same (approximate) verdicts and
    // state counts in both kernels.
    for (name, program, checks) in corpus() {
        let seq = run(&program, &checks, 1, VisitedKind::Compact);
        let par = run(&program, &checks, 4, VisitedKind::Compact);
        assert_eq!(
            discriminant(&par.outcome),
            discriminant(&seq.outcome),
            "{name}: verdict {:?} vs {:?}",
            par.outcome,
            seq.outcome
        );
        if let (
            SafetyOutcome::HoldsApprox {
                states_visited: s, ..
            },
            SafetyOutcome::HoldsApprox {
                states_visited: p, ..
            },
        ) = (&seq.outcome, &par.outcome)
        {
            assert_eq!(p, s, "{name}: states modulo hashing");
        }
        assert_eq!(par.stats.replay_rejected, 0, "{name}: no replay rejections");
    }
}

#[test]
fn single_thread_reports_are_byte_identical_across_runs() {
    // threads = 1 dispatches to the exact sequential kernel: everything
    // except wall-clock `elapsed` is reproducible bit for bit.
    for (name, program, checks) in corpus() {
        let reports: Vec<String> = (0..3)
            .map(|_| {
                let mut report = run(&program, &checks, 1, VisitedKind::Exact);
                report.stats.elapsed = Duration::ZERO;
                format!("{report:?}")
            })
            .collect();
        assert_eq!(reports[0], reports[1], "{name}: run 1 vs 2");
        assert_eq!(reports[1], reports[2], "{name}: run 2 vs 3");
    }
}

/// Runs `program` until the `max_states` budget trips, flushing
/// checkpoints to an in-memory sink, and returns the final snapshot.
fn interrupt_with_budget(
    program: &Program,
    checks: &SafetyChecks,
    visited: VisitedKind,
    max_states: usize,
) -> Snapshot {
    let sink: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let report = Checker::with_config(
        program,
        SearchConfig {
            max_states,
            visited,
            ..SearchConfig::default()
        },
    )
    .checkpoint_to(Rc::clone(&sink))
    .checkpoint_every(16)
    .checkpoint_tag("differential")
    .check_safety(checks)
    .unwrap();
    assert!(
        matches!(report.outcome, SafetyOutcome::LimitReached { .. }),
        "budget of {max_states} states must interrupt the search, got {:?}",
        report.outcome
    );
    let bytes = sink.borrow().clone();
    assert!(
        !bytes.is_empty(),
        "an interrupted search must leave a snapshot"
    );
    Snapshot::decode(&bytes).expect("snapshot must decode")
}

#[test]
fn resume_at_different_thread_count_matches_uninterrupted_run() {
    // Interrupt an exhaustive `Holds` search mid-way, then resume from
    // the checkpoint at *different* thread counts. The level-synchronized
    // design guarantees the resumed totals equal the uninterrupted run's,
    // regardless of how many workers finish the job.
    for (name, program, checks) in corpus() {
        let reference = run(&program, &checks, 1, VisitedKind::Exact);
        if !reference.outcome.is_holds() {
            continue;
        }
        let budget = reference.stats.unique_states / 2;
        let snapshot = interrupt_with_budget(&program, &checks, VisitedKind::Exact, budget);
        assert!(
            snapshot.states_covered() > 0,
            "{name}: snapshot covers work"
        );
        assert!(
            snapshot.states_covered() < reference.stats.unique_states,
            "{name}: snapshot must be a strict prefix of the search"
        );
        for threads in [1, 4] {
            let resumed = Checker::resume_from(&program, snapshot.clone())
                .expect("fingerprint matches")
                .with_search_config(SearchConfig {
                    threads,
                    ..SearchConfig::default()
                })
                .check_safety(&checks)
                .unwrap();
            assert!(resumed.outcome.is_holds(), "{name}@{threads}: verdict");
            assert_eq!(
                resumed.stats.unique_states, reference.stats.unique_states,
                "{name}@{threads}: resumed states"
            );
            assert_eq!(
                resumed.stats.steps, reference.stats.steps,
                "{name}@{threads}: resumed steps"
            );
            assert_eq!(
                resumed.stats.max_depth, reference.stats.max_depth,
                "{name}@{threads}: resumed depth"
            );
        }
    }
}

#[test]
fn repeated_interruptions_still_converge_to_exact_totals() {
    // Simulated crash storm: the search is budget-tripped over and over,
    // each resume picking up from the previous snapshot with a slightly
    // larger budget, until it finally completes. However many faults land,
    // the completed run's totals are byte-identical to the uninterrupted
    // run's.
    let (name, program, checks) = ("toggler holds", toggler(5), SafetyChecks::deadlock_only());
    let reference = run(&program, &checks, 1, VisitedKind::Exact);
    assert!(reference.outcome.is_holds());

    let mut snapshot = interrupt_with_budget(&program, &checks, VisitedKind::Exact, 20);
    let mut budget = 20;
    let mut faults = 1;
    let final_report = loop {
        budget += 20;
        let sink: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let report = Checker::resume_from(&program, snapshot.clone())
            .expect("fingerprint matches")
            .with_search_config(SearchConfig {
                max_states: budget,
                ..SearchConfig::default()
            })
            .checkpoint_to(Rc::clone(&sink))
            .checkpoint_every(16)
            .check_safety(&checks)
            .unwrap();
        match report.outcome {
            SafetyOutcome::LimitReached { .. } => {
                faults += 1;
                assert!(faults < 64, "{name}: runaway interruption loop");
                let bytes = sink.borrow().clone();
                assert!(!bytes.is_empty(), "{name}: each trip leaves a snapshot");
                snapshot = Snapshot::decode(&bytes).unwrap();
            }
            _ => break report,
        }
    };
    assert!(
        faults >= 2,
        "{name}: the storm must actually interrupt twice+"
    );
    assert!(final_report.outcome.is_holds(), "{name}: final verdict");
    assert_eq!(
        final_report.stats.unique_states, reference.stats.unique_states,
        "{name}: states after {faults} faults"
    );
    assert_eq!(final_report.stats.steps, reference.stats.steps, "{name}");
    assert_eq!(
        final_report.stats.max_depth, reference.stats.max_depth,
        "{name}"
    );
}

#[test]
fn lossy_backend_resume_finds_parked_violation_and_trace_replays() {
    // The seeded invariant bug under the *lossy* compact backend: the
    // search is interrupted at a level boundary before the violation
    // level is reached (the candidate is still "parked" in the frontier),
    // then resumed at a different thread count. The resumed search must
    // surface the violation, and — because lossy backends replay-validate
    // candidates — the reported trace must replay exactly against the
    // program.
    let (program, checks) = seeded_invariant_bug();
    let sequential = run(&program, &checks, 1, VisitedKind::Compact);
    let expected_trace_len = sequential
        .outcome
        .trace()
        .expect("seeded bug must violate")
        .len();

    // A budget well below the full state count: the violation occurs at
    // total == 5, several levels deep, so a tiny budget parks it.
    let snapshot = interrupt_with_budget(&program, &checks, VisitedKind::Compact, 12);
    assert_eq!(snapshot.visited_kind(), VisitedKind::Compact);
    assert!(
        snapshot.frontier_len() > 0,
        "parked work must be in the frontier"
    );

    for threads in [1, 4] {
        let resumed = Checker::resume_from(&program, snapshot.clone())
            .expect("fingerprint matches")
            .with_search_config(SearchConfig {
                threads,
                ..SearchConfig::default()
            })
            .check_safety(&checks)
            .unwrap();
        let trace = match &resumed.outcome {
            SafetyOutcome::InvariantViolated { name, trace } => {
                assert_eq!(name, "total under 5", "@{threads}");
                trace
            }
            other => panic!("@{threads}: expected violation, got {other:?}"),
        };
        assert_eq!(
            trace.len(),
            expected_trace_len,
            "@{threads}: shortest counterexample survives the interruption"
        );
        let end = Checker::new(&program)
            .replay_trace(trace)
            .expect("replay evaluates");
        assert!(
            end.is_some(),
            "@{threads}: resumed-run trace must replay exactly"
        );
    }
}

#[test]
fn multi_thread_verdicts_are_stable_across_runs() {
    // For threads > 1 the *verdict* is deterministic, and so are the
    // exhaustive-run counters (unique_states/steps/max_depth). The fields
    // allowed to vary are: which counterexample is reported (same length,
    // still shortest), `peak_frontier`, `approx_memory_bytes`, and
    // `elapsed`.
    for (name, program, checks) in corpus() {
        let a = run(&program, &checks, 4, VisitedKind::Exact);
        let b = run(&program, &checks, 4, VisitedKind::Exact);
        assert_eq!(
            discriminant(&a.outcome),
            discriminant(&b.outcome),
            "{name}: verdict stable"
        );
        if a.outcome.is_holds() {
            assert_eq!(a.stats.unique_states, b.stats.unique_states, "{name}");
            assert_eq!(a.stats.steps, b.stats.steps, "{name}");
            assert_eq!(a.stats.max_depth, b.stats.max_depth, "{name}");
        }
        if let (Some(ta), Some(tb)) = (a.outcome.trace(), b.outcome.trace()) {
            assert_eq!(ta.len(), tb.len(), "{name}: shortest-trace length stable");
        }
    }
}
