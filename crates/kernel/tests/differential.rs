//! Differential tests: the parallel safety search must agree with the
//! sequential kernel.
//!
//! For every corpus program, parallel runs at 2, 4, and 8 threads are
//! compared against the sequential (1-thread) run:
//!
//! * identical verdicts, always;
//! * identical `unique_states`, `steps`, and `max_depth` for exhaustive
//!   `Holds` runs under the exact backend (the parallel kernel explores
//!   the same reduced state graph, level by level);
//! * violation traces of the same (shortest) length that replay exactly
//!   against the program.
//!
//! The determinism contract is pinned here too: a 1-thread run is fully
//! reproducible (byte-identical report modulo wall-clock `elapsed`);
//! for threads > 1 the verdict and the exhaustive-run counters above are
//! stable, while `peak_frontier`, `approx_memory_bytes`, `elapsed`, and
//! *which* counterexample is reported may vary between runs.

use std::mem::discriminant;
use std::time::Duration;

use pnp_kernel::{
    expr, Action, Checker, Guard, Predicate, ProcessBuilder, Program, ProgramBuilder, SafetyChecks,
    SafetyOutcome, SearchConfig, VisitedKind,
};

/// Two processes that each toggle a shared flag `n` times.
fn toggler(n: i32) -> Program {
    let mut prog = ProgramBuilder::new();
    let flag = prog.global("flag", 0);
    for name in ["a", "b"] {
        let mut p = ProcessBuilder::new(name);
        let count = p.local("count", 0);
        let s0 = p.location("loop");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(count), n.into())),
            Action::assign_all(vec![
                (flag.into(), expr::not(expr::global(flag))),
                (count.into(), expr::local(count) + 1.into()),
            ]),
            "toggle",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::local(count), n.into())),
            Action::Skip,
            "finish",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// A producer/consumer pair over a bounded FIFO channel.
fn buffered_pipe(messages: i32, capacity: usize) -> Program {
    let mut prog = ProgramBuilder::new();
    let chan = prog.channel("pipe", capacity, 1);
    let got = prog.global("got", 0);

    let mut producer = ProcessBuilder::new("producer");
    let sent = producer.local("sent", 0);
    let s0 = producer.location("send");
    let s1 = producer.location("done");
    producer.mark_end(s1);
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::send(chan, vec![expr::local(sent) + 1.into()]),
        "send",
    );
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::assign(sent, expr::local(sent) + 1.into()),
        "bump",
    );
    producer.transition(
        s0,
        s1,
        Guard::when(expr::ge(expr::local(sent), messages.into())),
        Action::Skip,
        "finish",
    );
    prog.add_process(producer).unwrap();

    let mut consumer = ProcessBuilder::new("consumer");
    let seen = consumer.local("seen", 0);
    let c0 = consumer.location("recv");
    let c1 = consumer.location("done");
    consumer.mark_end(c0);
    consumer.mark_end(c1);
    consumer.transition(c0, c0, Guard::always(), Action::recv_any(chan, 1), "recv");
    consumer.transition(
        c0,
        c1,
        Guard::when(expr::ge(expr::local(seen), 0.into())),
        Action::assign(got, expr::global(got) + 1.into()),
        "tally",
    );
    prog.add_process(consumer).unwrap();
    prog.build().unwrap()
}

/// Two processes that each wait to receive before sending: a guaranteed
/// deadlock.
fn mutual_wait() -> Program {
    let mut prog = ProgramBuilder::new();
    let c1 = prog.channel("c1", 0, 1);
    let c2 = prog.channel("c2", 0, 1);
    for (name, recv_chan, send_chan) in [("p", c1, c2), ("q", c2, c1)] {
        let mut p = ProcessBuilder::new(name);
        let s0 = p.location("wait");
        let s1 = p.location("reply");
        let s2 = p.location("done");
        p.mark_end(s2);
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::recv_any(recv_chan, 1),
            "recv",
        );
        p.transition(
            s1,
            s2,
            Guard::always(),
            Action::send(send_chan, vec![1.into()]),
            "send",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// Two incrementers racing past an asserted bound: an assertion failure
/// a few levels deep.
fn assertion_bug() -> Program {
    let mut prog = ProgramBuilder::new();
    let x = prog.global("x", 0);
    for name in ["inc_a", "inc_b"] {
        let mut p = ProcessBuilder::new(name);
        let s0 = p.location("first");
        let s1 = p.location("second");
        let s2 = p.location("check");
        let s3 = p.location("done");
        p.mark_end(s3);
        let bump = Action::assign(x, expr::global(x) + 1.into());
        p.transition(s0, s1, Guard::always(), bump.clone(), "bump1");
        p.transition(s1, s2, Guard::always(), bump, "bump2");
        p.transition(
            s2,
            s3,
            Guard::always(),
            Action::assert(expr::lt(expr::global(x), 4.into()), "x < 4"),
            "assert",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// A seeded invariant bug: the flag escapes its advertised bound only
/// after both processes have toggled several times.
fn seeded_invariant_bug() -> (Program, SafetyChecks) {
    let mut prog = ProgramBuilder::new();
    let total = prog.global("total", 0);
    for name in ["a", "b"] {
        let mut p = ProcessBuilder::new(name);
        let count = p.local("count", 0);
        let s0 = p.location("loop");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(count), 3.into())),
            Action::assign_all(vec![
                (total.into(), expr::global(total) + 1.into()),
                (count.into(), expr::local(count) + 1.into()),
            ]),
            "bump",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::local(count), 3.into())),
            Action::Skip,
            "finish",
        );
        prog.add_process(p).unwrap();
    }
    let program = prog.build().unwrap();
    let total = program.global_by_name("total").unwrap();
    let checks = SafetyChecks {
        deadlock: false,
        invariants: vec![(
            "total under 5".into(),
            Predicate::from_expr(expr::lt(expr::global(total), 5.into())),
        )],
    };
    (program, checks)
}

/// The differential corpus: name, program, and the checks to run.
fn corpus() -> Vec<(&'static str, Program, SafetyChecks)> {
    let mut corpus = Vec::new();

    let program = toggler(4);
    let flag = program.global_by_name("flag").unwrap();
    corpus.push((
        "toggler holds",
        program,
        SafetyChecks {
            deadlock: true,
            invariants: vec![(
                "flag is a bit".into(),
                Predicate::from_expr(expr::and(
                    expr::ge(expr::global(flag), 0.into()),
                    expr::le(expr::global(flag), 1.into()),
                )),
            )],
        },
    ));

    corpus.push((
        "buffered pipe holds",
        buffered_pipe(3, 2),
        SafetyChecks {
            deadlock: false,
            invariants: Vec::new(),
        },
    ));

    corpus.push((
        "mutual wait deadlock",
        mutual_wait(),
        SafetyChecks::deadlock_only(),
    ));

    corpus.push((
        "assertion bug",
        assertion_bug(),
        SafetyChecks {
            deadlock: false,
            invariants: Vec::new(),
        },
    ));

    let (program, checks) = seeded_invariant_bug();
    corpus.push(("seeded invariant bug", program, checks));

    corpus
}

fn run(
    program: &Program,
    checks: &SafetyChecks,
    threads: usize,
    visited: VisitedKind,
) -> pnp_kernel::SafetyReport {
    Checker::with_config(
        program,
        SearchConfig {
            threads,
            visited,
            ..SearchConfig::default()
        },
    )
    .check_safety(checks)
    .unwrap()
}

#[test]
fn parallel_matches_sequential_on_corpus() {
    for (name, program, checks) in corpus() {
        let seq = run(&program, &checks, 1, VisitedKind::Exact);
        for threads in [2, 4, 8] {
            let par = run(&program, &checks, threads, VisitedKind::Exact);
            assert_eq!(
                discriminant(&par.outcome),
                discriminant(&seq.outcome),
                "{name}@{threads}: verdict {:?} vs sequential {:?}",
                par.outcome,
                seq.outcome
            );
            if seq.outcome.is_holds() {
                assert_eq!(
                    par.stats.unique_states, seq.stats.unique_states,
                    "{name}@{threads}: states"
                );
                assert_eq!(par.stats.steps, seq.stats.steps, "{name}@{threads}: steps");
                assert_eq!(
                    par.stats.max_depth, seq.stats.max_depth,
                    "{name}@{threads}: depth"
                );
            } else {
                // BFS shortest-counterexample property: the parallel trace
                // may differ from the sequential one but must be equally
                // short and must replay exactly.
                let seq_trace = seq.outcome.trace().expect("sequential trace");
                let par_trace = par.outcome.trace().expect("parallel trace");
                assert_eq!(
                    par_trace.len(),
                    seq_trace.len(),
                    "{name}@{threads}: trace length"
                );
                let end = Checker::new(&program).replay_trace(par_trace).unwrap();
                assert!(end.is_some(), "{name}@{threads}: trace must replay exactly");
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_without_reduction() {
    for (name, program, checks) in corpus() {
        let base = SearchConfig {
            partial_order_reduction: false,
            ..SearchConfig::default()
        };
        let seq = Checker::with_config(&program, base)
            .check_safety(&checks)
            .unwrap();
        let par = Checker::with_config(&program, SearchConfig { threads: 4, ..base })
            .check_safety(&checks)
            .unwrap();
        assert_eq!(
            discriminant(&par.outcome),
            discriminant(&seq.outcome),
            "{name}: verdict"
        );
        if seq.outcome.is_holds() {
            assert_eq!(par.stats.unique_states, seq.stats.unique_states, "{name}");
            assert_eq!(par.stats.steps, seq.stats.steps, "{name}");
            assert_eq!(par.stats.max_depth, seq.stats.max_depth, "{name}");
        }
    }
}

#[test]
fn parallel_compact_backend_agrees_on_corpus() {
    // The corpus is far too small for 64-bit hash collisions, so the
    // compact backend must report the same (approximate) verdicts and
    // state counts in both kernels.
    for (name, program, checks) in corpus() {
        let seq = run(&program, &checks, 1, VisitedKind::Compact);
        let par = run(&program, &checks, 4, VisitedKind::Compact);
        assert_eq!(
            discriminant(&par.outcome),
            discriminant(&seq.outcome),
            "{name}: verdict {:?} vs {:?}",
            par.outcome,
            seq.outcome
        );
        if let (
            SafetyOutcome::HoldsApprox {
                states_visited: s, ..
            },
            SafetyOutcome::HoldsApprox {
                states_visited: p, ..
            },
        ) = (&seq.outcome, &par.outcome)
        {
            assert_eq!(p, s, "{name}: states modulo hashing");
        }
        assert_eq!(par.stats.replay_rejected, 0, "{name}: no replay rejections");
    }
}

#[test]
fn single_thread_reports_are_byte_identical_across_runs() {
    // threads = 1 dispatches to the exact sequential kernel: everything
    // except wall-clock `elapsed` is reproducible bit for bit.
    for (name, program, checks) in corpus() {
        let reports: Vec<String> = (0..3)
            .map(|_| {
                let mut report = run(&program, &checks, 1, VisitedKind::Exact);
                report.stats.elapsed = Duration::ZERO;
                format!("{report:?}")
            })
            .collect();
        assert_eq!(reports[0], reports[1], "{name}: run 1 vs 2");
        assert_eq!(reports[1], reports[2], "{name}: run 2 vs 3");
    }
}

#[test]
fn multi_thread_verdicts_are_stable_across_runs() {
    // For threads > 1 the *verdict* is deterministic, and so are the
    // exhaustive-run counters (unique_states/steps/max_depth). The fields
    // allowed to vary are: which counterexample is reported (same length,
    // still shortest), `peak_frontier`, `approx_memory_bytes`, and
    // `elapsed`.
    for (name, program, checks) in corpus() {
        let a = run(&program, &checks, 4, VisitedKind::Exact);
        let b = run(&program, &checks, 4, VisitedKind::Exact);
        assert_eq!(
            discriminant(&a.outcome),
            discriminant(&b.outcome),
            "{name}: verdict stable"
        );
        if a.outcome.is_holds() {
            assert_eq!(a.stats.unique_states, b.stats.unique_states, "{name}");
            assert_eq!(a.stats.steps, b.stats.steps, "{name}");
            assert_eq!(a.stats.max_depth, b.stats.max_depth, "{name}");
        }
        if let (Some(ta), Some(tb)) = (a.outcome.trace(), b.outcome.trace()) {
            assert_eq!(ta.len(), tb.len(), "{name}: shortest-trace length stable");
        }
    }
}
