//! Differential tests: the parallel CNDFS acceptance-cycle search must
//! agree with the sequential nested DFS.
//!
//! For every corpus (program, LTL formula, fairness) triple, parallel
//! runs at 2, 4, and 8 threads are compared against the sequential
//! (1-thread) run:
//!
//! * identical verdicts, always — a cycle-freedom claim (`Holds`) from
//!   the swarm must never diverge from the sequential oracle, and vice
//!   versa;
//! * every parallel-found lasso exact-replays against the program
//!   ([`Checker::validate_lasso`], plus an independent prefix replay
//!   through [`Checker::replay_trace`] here);
//! * `threads = 1` never enters the parallel path: its report is
//!   byte-identical (modulo wall-clock `elapsed`) to the default
//!   sequential configuration, run to run.
//!
//! The proptests at the bottom extend the corpus with random concurrent
//! programs: parallel liveness never fabricates and never misses an
//! accepting cycle relative to sequential nested DFS.

use std::mem::discriminant;
use std::time::Duration;

use proptest::prelude::*;

use pnp_kernel::{
    expr, Action, Checker, EventKind, Fairness, Guard, LtlOutcome, LtlReport, Predicate,
    ProcessBuilder, Program, ProgramBuilder, Proposition, SearchConfig, Trace,
};

const PARALLEL_SWEEP: [usize; 3] = [2, 4, 8];

// ---------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------

struct Case {
    name: &'static str,
    program: Program,
    formula: &'static str,
    props: Vec<Proposition>,
    fairness: Fairness,
    /// The verdict the sequential oracle is expected to reach, pinned so
    /// a corpus regression cannot silently weaken the differential test.
    expect_holds: bool,
}

fn prop_global_eq(program: &Program, global: &str, value: i32, name: &str) -> Proposition {
    let id = program.global_by_name(global).unwrap();
    Proposition::new(
        name.to_string(),
        Predicate::from_expr(expr::eq(expr::global(id), value.into())),
    )
}

/// A counter that increments to `stop` and halts (end state).
fn counter(stop: i32) -> Program {
    let mut prog = ProgramBuilder::new();
    let n = prog.global("n", 0);
    let mut p = ProcessBuilder::new("counter");
    let s0 = p.location("run");
    let s1 = p.location("halt");
    p.mark_end(s1);
    p.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::global(n), stop.into())),
        Action::assign(n, expr::global(n) + 1.into()),
        "inc",
    );
    p.transition(
        s0,
        s1,
        Guard::when(expr::ge(expr::global(n), stop.into())),
        Action::Skip,
        "stop",
    );
    prog.add_process(p).unwrap();
    prog.build().unwrap()
}

/// `count` independent processes that each alternate a flag forever.
fn alternators(count: usize) -> Program {
    let mut prog = ProgramBuilder::new();
    for i in 0..count {
        let flag = prog.global(format!("flag{i}"), 0);
        let mut p = ProcessBuilder::new(format!("alt{i}"));
        let s0 = p.location("off");
        let s1 = p.location("on");
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::assign(flag, 1.into()),
            "turn on",
        );
        p.transition(
            s1,
            s0,
            Guard::always(),
            Action::assign(flag, 0.into()),
            "turn off",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// One process spins forever; another has a single always-enabled step
/// that sets a flag. `<> set` distinguishes the fairness modes.
fn spinner_setter() -> Program {
    let mut prog = ProgramBuilder::new();
    let flag = prog.global("flag", 0);
    let mut spinner = ProcessBuilder::new("spinner");
    let s0 = spinner.location("spin");
    spinner.transition(s0, s0, Guard::always(), Action::Skip, "spin");
    prog.add_process(spinner).unwrap();
    let mut setter = ProcessBuilder::new("setter");
    let t0 = setter.location("set");
    let t1 = setter.location("done");
    setter.mark_end(t1);
    setter.transition(
        t0,
        t1,
        Guard::always(),
        Action::assign(flag, 1.into()),
        "set flag",
    );
    prog.add_process(setter).unwrap();
    prog.build().unwrap()
}

/// Two processes that each toggle a shared flag `n` times and halt.
fn toggler(n: i32) -> Program {
    let mut prog = ProgramBuilder::new();
    let flag = prog.global("flag", 0);
    for name in ["a", "b"] {
        let mut p = ProcessBuilder::new(name);
        let count = p.local("count", 0);
        let s0 = p.location("loop");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(count), n.into())),
            Action::assign_all(vec![
                (flag.into(), expr::not(expr::global(flag))),
                (count.into(), expr::local(count) + 1.into()),
            ]),
            "toggle",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::local(count), n.into())),
            Action::Skip,
            "finish",
        );
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

/// A producer/consumer pair over a bounded FIFO channel; the consumer
/// tallies into `got` once it is done receiving.
fn buffered_pipe(messages: i32, capacity: usize) -> Program {
    let mut prog = ProgramBuilder::new();
    let chan = prog.channel("pipe", capacity, 1);
    let got = prog.global("got", 0);

    let mut producer = ProcessBuilder::new("producer");
    let sent = producer.local("sent", 0);
    let s0 = producer.location("send");
    let s1 = producer.location("done");
    producer.mark_end(s1);
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::send(chan, vec![expr::local(sent) + 1.into()]),
        "send",
    );
    producer.transition(
        s0,
        s0,
        Guard::when(expr::lt(expr::local(sent), messages.into())),
        Action::assign(sent, expr::local(sent) + 1.into()),
        "bump",
    );
    producer.transition(
        s0,
        s1,
        Guard::when(expr::ge(expr::local(sent), messages.into())),
        Action::Skip,
        "finish",
    );
    prog.add_process(producer).unwrap();

    let mut consumer = ProcessBuilder::new("consumer");
    let seen = consumer.local("seen", 0);
    let c0 = consumer.location("recv");
    let c1 = consumer.location("done");
    consumer.mark_end(c1);
    consumer.transition(c0, c0, Guard::always(), Action::recv_any(chan, 1), "recv");
    consumer.transition(
        c0,
        c1,
        Guard::when(expr::ge(expr::local(seen), 0.into())),
        Action::assign(got, expr::global(got) + 1.into()),
        "tally",
    );
    prog.add_process(consumer).unwrap();
    prog.build().unwrap()
}

fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();

    let program = counter(3);
    cases.push(Case {
        name: "counter_reaches_stop",
        props: vec![prop_global_eq(&program, "n", 3, "n3")],
        program,
        formula: "<> n3",
        fairness: Fairness::Weak,
        expect_holds: true,
    });

    let program = counter(3);
    cases.push(Case {
        name: "counter_unreachable_value",
        props: vec![prop_global_eq(&program, "n", 5, "n5")],
        program,
        formula: "<> n5",
        fairness: Fairness::Weak,
        expect_holds: false,
    });

    let program = counter(3);
    let n = program.global_by_name("n").unwrap();
    cases.push(Case {
        name: "counter_globally_small",
        props: vec![Proposition::new(
            "small",
            Predicate::from_expr(expr::lt(expr::global(n), 2.into())),
        )],
        program,
        formula: "[] small",
        fairness: Fairness::Weak,
        expect_holds: false,
    });

    let program = alternators(1);
    cases.push(Case {
        name: "alternator_infinitely_often",
        props: vec![prop_global_eq(&program, "flag0", 1, "on")],
        program,
        formula: "[] <> on",
        fairness: Fairness::Weak,
        expect_holds: true,
    });

    let program = alternators(1);
    cases.push(Case {
        name: "alternator_eventually_always",
        props: vec![prop_global_eq(&program, "flag0", 1, "on")],
        program,
        formula: "<> [] on",
        fairness: Fairness::Weak,
        expect_holds: false,
    });

    for (name, fairness, expect_holds) in [
        ("starvation_weakly_fair", Fairness::Weak, true),
        ("starvation_unfair", Fairness::None, false),
    ] {
        let program = spinner_setter();
        cases.push(Case {
            name,
            props: vec![prop_global_eq(&program, "flag", 1, "set")],
            program,
            formula: "<> set",
            fairness,
            expect_holds,
        });
    }

    // Two independent alternators: the first must keep moving under weak
    // fairness (it is always enabled), but an unfair scheduler can run
    // only the second forever.
    for (name, fairness, expect_holds) in [
        ("two_alternators_weakly_fair", Fairness::Weak, true),
        ("two_alternators_unfair", Fairness::None, false),
    ] {
        let program = alternators(2);
        cases.push(Case {
            name,
            props: vec![prop_global_eq(&program, "flag0", 1, "on")],
            program,
            formula: "[] <> on",
            fairness,
            expect_holds,
        });
    }

    // Both togglers halt after an even number of flips, so the frozen
    // final state satisfies `even` forever; `[] <> odd` dies with them.
    let program = toggler(2);
    cases.push(Case {
        name: "toggler_settles_even",
        props: vec![prop_global_eq(&program, "flag", 0, "even")],
        program,
        formula: "[] <> even",
        fairness: Fairness::Weak,
        expect_holds: true,
    });
    let program = toggler(2);
    cases.push(Case {
        name: "toggler_not_forever_odd",
        props: vec![prop_global_eq(&program, "flag", 1, "odd")],
        program,
        formula: "[] <> odd",
        fairness: Fairness::Weak,
        expect_holds: false,
    });

    // Channel coverage: the producer may send forever without bumping
    // `sent`, so the consumer can be kept receiving and never tally —
    // a genuine (non-stutter) violating lasso through the channel.
    let program = buffered_pipe(2, 1);
    let got = program.global_by_name("got").unwrap();
    cases.push(Case {
        name: "pipe_eventually_tallies",
        props: vec![Proposition::new(
            "tallied",
            Predicate::from_expr(expr::ge(expr::global(got), 1.into())),
        )],
        program,
        formula: "<> tallied",
        fairness: Fairness::Weak,
        expect_holds: false,
    });

    cases
}

fn run(case: &Case, threads: usize) -> LtlReport {
    let formula = pnp_ltl::parse(case.formula).unwrap();
    Checker::with_config(
        &case.program,
        SearchConfig {
            threads,
            ..SearchConfig::default()
        },
    )
    .check_ltl_with(&formula, &case.props, case.fairness)
    .unwrap()
}

/// Replays the non-stutter part of a lasso independently of the kernel's
/// own validation: the real prefix of `prefix + cycle` must be a chain of
/// enabled steps from the initial state.
fn assert_real_part_replays(case: &Case, threads: usize, prefix: &Trace, cycle: &Trace) {
    let all: Vec<_> = prefix.events().iter().chain(cycle.events()).collect();
    let real: Vec<_> = all
        .iter()
        .take_while(|e| !matches!(e.kind(), EventKind::Stutter))
        .map(|e| (**e).clone())
        .collect();
    let checker = Checker::new(&case.program);
    let end = checker.replay_trace(&Trace::new(real)).unwrap();
    assert!(
        end.is_some(),
        "{}@{threads}: lasso real part does not replay",
        case.name
    );
}

// ---------------------------------------------------------------------
// Corpus × thread sweep
// ---------------------------------------------------------------------

#[test]
fn corpus_verdicts_agree_across_thread_counts() {
    for case in corpus() {
        let seq = run(&case, 1);
        assert_eq!(
            seq.outcome.is_holds(),
            case.expect_holds,
            "{}: sequential oracle moved off the pinned verdict: {:?}",
            case.name,
            seq.outcome
        );
        assert!(seq.fallback.is_none(), "{}: sequential fallback", case.name);
        for threads in PARALLEL_SWEEP {
            let par = run(&case, threads);
            assert_eq!(
                discriminant(&par.outcome),
                discriminant(&seq.outcome),
                "{}@{threads}: verdict {:?} vs sequential {:?}",
                case.name,
                par.outcome,
                seq.outcome
            );
            assert_eq!(
                par.truncated, seq.truncated,
                "{}@{threads}: truncation flag diverged",
                case.name
            );
            if let LtlOutcome::Violated { prefix, cycle } = &par.outcome {
                assert!(!cycle.is_empty(), "{}@{threads}: empty cycle", case.name);
                let checker = Checker::new(&case.program);
                assert!(
                    checker.validate_lasso(prefix, cycle).unwrap(),
                    "{}@{threads}: parallel lasso failed exact replay validation",
                    case.name
                );
                assert_real_part_replays(&case, threads, prefix, cycle);
            }
        }
    }
}

#[test]
fn sequential_lassos_pass_the_same_validation() {
    // The oracle is held to the harness's own standard too: every
    // sequential counterexample exact-replays.
    for case in corpus() {
        let seq = run(&case, 1);
        if let LtlOutcome::Violated { prefix, cycle } = &seq.outcome {
            let checker = Checker::new(&case.program);
            assert!(
                checker.validate_lasso(prefix, cycle).unwrap(),
                "{}: sequential lasso failed replay validation",
                case.name
            );
            assert_real_part_replays(&case, 1, prefix, cycle);
        }
    }
}

#[test]
fn threads_one_is_byte_identical_to_the_sequential_path() {
    // `threads = 1` must never enter the parallel search: its report —
    // the whole report, counters, outcome, traces — is byte-identical
    // (modulo wall-clock `elapsed`) to the default configuration's
    // sequential run, and reproducible run to run.
    fn normalized(mut report: LtlReport) -> String {
        report.stats.elapsed = Duration::ZERO;
        format!("{report:?}")
    }
    for case in corpus() {
        let formula = pnp_ltl::parse(case.formula).unwrap();
        let default_run = Checker::new(&case.program)
            .check_ltl_with(&formula, &case.props, case.fairness)
            .unwrap();
        let one_thread_a = run(&case, 1);
        let one_thread_b = run(&case, 1);
        assert_eq!(
            normalized(one_thread_a),
            normalized(default_run),
            "{}: threads=1 diverged from the default sequential path",
            case.name
        );
        assert_eq!(
            normalized(run(&case, 1)),
            normalized(one_thread_b),
            "{}: threads=1 not reproducible",
            case.name
        );
    }
}

#[test]
fn parallel_verdicts_are_stable_across_repeats() {
    // The swarm's interleavings vary, the verdict must not.
    for case in corpus() {
        let first = run(&case, 4);
        for _ in 0..2 {
            let again = run(&case, 4);
            assert_eq!(
                discriminant(&again.outcome),
                discriminant(&first.outcome),
                "{}: unstable parallel verdict",
                case.name
            );
        }
    }
}

// ---------------------------------------------------------------------
// Random programs: never fabricate, never miss
// ---------------------------------------------------------------------

/// One step of a random process; mirrors the safety differential
/// generator but stays channel-free so liveness products remain small.
#[derive(Debug, Clone, Copy)]
enum Move {
    BumpGlobal(u8),
    GuardedSkip(u8),
    LoopBack(u8),
}

fn arb_move() -> impl Strategy<Value = Move> {
    prop_oneof![
        (0u8..2).prop_map(Move::BumpGlobal),
        (0u8..2).prop_map(Move::GuardedSkip),
        (0u8..2).prop_map(Move::LoopBack),
    ]
}

/// Builds a program from per-process move lists; `LoopBack` edges return
/// to the process's start, so random programs contain genuine cycles and
/// genuinely terminating branches.
fn build_program(procs: &[Vec<Move>]) -> Program {
    let mut prog = ProgramBuilder::new();
    let g0 = prog.global("g0", 0);
    let g1 = prog.global("g1", 0);
    let globals = [g0, g1];

    for (pi, moves) in procs.iter().enumerate() {
        let mut p = ProcessBuilder::new(format!("p{pi}"));
        let start = p.location("start");
        let mut at = start;
        for (mi, mv) in moves.iter().enumerate() {
            let next = p.location(format!("after{mi}"));
            match mv {
                Move::BumpGlobal(gi) => {
                    let g = globals[*gi as usize];
                    p.transition(
                        at,
                        next,
                        Guard::always(),
                        Action::assign(g, expr::rem(expr::global(g) + 1.into(), 4.into())),
                        "bump global",
                    );
                }
                Move::GuardedSkip(gi) => {
                    let g = globals[*gi as usize];
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::lt(expr::global(g), 3.into())),
                        Action::Skip,
                        "guarded skip",
                    );
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::ge(expr::global(g), 3.into())),
                        Action::assign(g, 0.into()),
                        "reset",
                    );
                }
                Move::LoopBack(gi) => {
                    let g = globals[*gi as usize];
                    p.transition(
                        at,
                        start,
                        Guard::when(expr::lt(expr::global(g), 2.into())),
                        Action::Skip,
                        "loop back",
                    );
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::ge(expr::global(g), 2.into())),
                        Action::Skip,
                        "move on",
                    );
                }
            }
            at = next;
        }
        p.mark_end(at);
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel liveness never fabricates and never misses an accepting
    /// cycle vs sequential nested DFS, on random programs × both fairness
    /// modes × a random thread count — and any parallel-found lasso
    /// exact-replays.
    #[test]
    fn parallel_liveness_agrees_with_sequential(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..4),
            2..4,
        ),
        threads in 2usize..9,
        unfair in 0u8..2,
        formula_pick in 0usize..3,
    ) {
        let program = build_program(&procs);
        let g0 = program.global_by_name("g0").unwrap();
        let props = vec![Proposition::new(
            "g0zero",
            Predicate::from_expr(expr::eq(expr::global(g0), 0.into())),
        )];
        let formula_src = ["<> g0zero", "[] <> g0zero", "<> [] g0zero"][formula_pick];
        let formula = pnp_ltl::parse(formula_src).unwrap();
        let fairness = if unfair == 1 { Fairness::None } else { Fairness::Weak };

        let seq = Checker::new(&program)
            .check_ltl_with(&formula, &props, fairness)
            .unwrap();
        let par = Checker::with_config(
            &program,
            SearchConfig { threads, ..SearchConfig::default() },
        )
        .check_ltl_with(&formula, &props, fairness)
        .unwrap();

        prop_assert_eq!(
            discriminant(&par.outcome),
            discriminant(&seq.outcome),
            "{} under {:?}@{}: parallel {:?} vs sequential {:?}; procs: {:?}",
            formula_src, fairness, threads, par.outcome, seq.outcome, procs
        );
        if let LtlOutcome::Violated { prefix, cycle } = &par.outcome {
            let checker = Checker::new(&program);
            prop_assert!(
                checker.validate_lasso(prefix, cycle).unwrap(),
                "{} under {:?}@{}: lasso failed replay; procs: {:?}",
                formula_src, fairness, threads, procs
            );
        }
    }
}
