//! Property-based tests for the model-checking kernel.
//!
//! Random small concurrent programs are generated and checked for internal
//! consistency:
//!
//! * the partial-order-reduced search and the full search agree on every
//!   safety verdict;
//! * every global-variable valuation the random simulator visits is
//!   reachable according to the exhaustive search;
//! * the expression evaluator agrees with a wide-integer oracle.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use pnp_kernel::{
    expr, Action, BitstateVisited, Checker, CompactVisited, ExactVisited, Expr, Guard, LtlOutcome,
    Predicate, ProcessBuilder, Program, ProgramBuilder, Proposition, SafetyChecks, SafetyOutcome,
    SearchConfig, ShardedBitstateVisited, ShardedCompactVisited, ShardedExactVisited,
    SharedVisitedSet, Simulator, Snapshot, State, StateBudget, VisitedKind, VisitedSet,
};

// ---------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------

/// One step of a random process: the moves are chosen so that any
/// combination yields a *valid* program over 2 globals and 1 buffered
/// channel, with all counters bounded (mod 4) to keep state spaces finite.
#[derive(Debug, Clone, Copy)]
enum Move {
    BumpGlobal(u8),
    SendChan(i8),
    RecvChan,
    GuardedSkip(u8),
    BumpLocal,
}

fn arb_move() -> impl Strategy<Value = Move> {
    prop_oneof![
        (0u8..2).prop_map(Move::BumpGlobal),
        (0i8..3).prop_map(Move::SendChan),
        Just(Move::RecvChan),
        (0u8..2).prop_map(Move::GuardedSkip),
        Just(Move::BumpLocal),
    ]
}

/// Builds a program from per-process move lists. Each process runs its
/// moves in sequence and stops (end state).
fn build_program(procs: &[Vec<Move>]) -> Program {
    let mut prog = ProgramBuilder::new();
    let g0 = prog.global("g0", 0);
    let g1 = prog.global("g1", 0);
    let globals = [g0, g1];
    let ch = prog.channel("ch", 2, 1);

    for (pi, moves) in procs.iter().enumerate() {
        let mut p = ProcessBuilder::new(format!("p{pi}"));
        let counter = p.local("counter", 0);
        let mut at = p.location("start");
        for (mi, mv) in moves.iter().enumerate() {
            let next = p.location(format!("after{mi}"));
            match mv {
                Move::BumpGlobal(gi) => {
                    let g = globals[*gi as usize];
                    p.transition(
                        at,
                        next,
                        Guard::always(),
                        Action::assign(g, expr::rem(expr::global(g) + 1.into(), 4.into())),
                        "bump global",
                    );
                }
                Move::SendChan(v) => {
                    p.transition(
                        at,
                        next,
                        Guard::always(),
                        Action::send(ch, vec![(*v as i32).into()]),
                        "send",
                    );
                }
                Move::RecvChan => {
                    p.transition(at, next, Guard::always(), Action::recv_any(ch, 1), "recv");
                    // A bail-out so pure receivers do not always deadlock:
                    // when g0 is 3 the process may skip the receive.
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::eq(expr::global(g0), 3.into())),
                        Action::Skip,
                        "skip recv",
                    );
                }
                Move::GuardedSkip(gi) => {
                    let g = globals[*gi as usize];
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::lt(expr::global(g), 3.into())),
                        Action::Skip,
                        "guarded skip",
                    );
                    p.transition(
                        at,
                        next,
                        Guard::when(expr::ge(expr::global(g), 3.into())),
                        Action::assign(g, 0.into()),
                        "reset",
                    );
                }
                Move::BumpLocal => {
                    p.transition(
                        at,
                        next,
                        Guard::always(),
                        Action::assign(
                            counter,
                            expr::rem(expr::local(counter) + 1.into(), 4.into()),
                        ),
                        "bump local",
                    );
                }
            }
            at = next;
        }
        p.mark_end(at);
        prog.add_process(p).unwrap();
    }
    prog.build().unwrap()
}

fn verdict_kind(outcome: &SafetyOutcome) -> &'static str {
    match outcome {
        SafetyOutcome::Holds => "holds",
        SafetyOutcome::HoldsApprox { .. } => "holds",
        SafetyOutcome::InvariantViolated { .. } => "invariant",
        SafetyOutcome::AssertionFailed { .. } => "assertion",
        SafetyOutcome::Deadlock { .. } => "deadlock",
        SafetyOutcome::LimitReached { .. } => "limit",
        SafetyOutcome::PredicateError { .. } => "predicate-error",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// POR and full search agree on deadlock and invariant verdicts for
    /// random concurrent programs.
    #[test]
    fn reduced_and_full_search_agree(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..5),
            2..4,
        ),
        bound in 1i32..4,
    ) {
        let program = build_program(&procs);
        let g0 = program.global_by_name("g0").unwrap();
        let checks = SafetyChecks {
            deadlock: true,
            invariants: vec![(
                "g0 below bound".into(),
                Predicate::from_expr(expr::lt(expr::global(g0), bound.into())),
            )],
        };
        let full = Checker::with_config(
            &program,
            SearchConfig { partial_order_reduction: false, ..SearchConfig::default() },
        )
        .check_safety(&checks)
        .unwrap();
        let reduced = Checker::new(&program).check_safety(&checks).unwrap();
        prop_assert_eq!(
            verdict_kind(&full.outcome),
            verdict_kind(&reduced.outcome),
            "procs: {:?}", procs
        );
        // State-count dominance only holds for complete searches; a found
        // violation stops exploration at an order-dependent point.
        if full.outcome.is_holds() {
            prop_assert!(reduced.stats.unique_states <= full.stats.unique_states);
        }
    }

    /// Every global valuation the simulator visits is reachable per the
    /// exhaustive search.
    #[test]
    fn simulator_stays_within_the_reachable_set(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..4),
            2..4,
        ),
        seed in 0u64..1000,
    ) {
        let program = build_program(&procs);
        let g0 = program.global_by_name("g0").unwrap();
        let g1 = program.global_by_name("g1").unwrap();

        // Gather globals seen during one simulation run.
        let mut seen: Vec<(i32, i32)> = vec![];
        let mut sim = Simulator::new(&program, seed);
        sim.run_with(200, |view, _| {
            let pair = (view.global(g0), view.global(g1));
            if !seen.contains(&pair) {
                seen.push(pair);
            }
        }).unwrap();

        // Every pair must be reachable: "never (g0,g1) == pair" violated.
        for (a, b) in seen {
            let never = Predicate::from_expr(expr::not(expr::and(
                expr::eq(expr::global(g0), a.into()),
                expr::eq(expr::global(g1), b.into()),
            )));
            let report = Checker::new(&program)
                .check_safety(&SafetyChecks {
                    deadlock: false,
                    invariants: vec![("never pair".into(), never)],
                })
                .unwrap();
            prop_assert!(
                !report.outcome.is_holds(),
                "simulator visited unreachable globals ({a},{b})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Parallel search vs sequential search
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel kernel never fabricates a violation on a safe program
    /// and never reports `Holds` when the sequential search finds a bug.
    /// For exhaustive `Holds` runs the exact-backend state/step/depth
    /// counters are identical (same reduced graph, level by level).
    #[test]
    fn parallel_search_agrees_with_sequential(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..5),
            2..4,
        ),
        threads in 2usize..9,
        bound in 1i32..4,
    ) {
        let program = build_program(&procs);
        let g0 = program.global_by_name("g0").unwrap();
        let checks = SafetyChecks {
            deadlock: true,
            invariants: vec![(
                "g0 below bound".into(),
                Predicate::from_expr(expr::lt(expr::global(g0), bound.into())),
            )],
        };
        let seq = Checker::new(&program).check_safety(&checks).unwrap();
        let par = Checker::with_config(
            &program,
            SearchConfig { threads, ..SearchConfig::default() },
        )
        .check_safety(&checks)
        .unwrap();

        // Never fabricate: a parallel counterexample implies the program
        // really is unsafe per the sequential search.
        if par.outcome.trace().is_some() {
            prop_assert!(
                !seq.outcome.is_holds(),
                "parallel@{threads} fabricated {:?} on a safe program; procs: {:?}",
                par.outcome, procs
            );
        }
        // Never miss: sequential counterexample implies parallel does not
        // report Holds.
        if seq.outcome.trace().is_some() {
            prop_assert!(
                !par.outcome.is_holds(),
                "parallel@{threads} reported Holds but sequential found {:?}; procs: {:?}",
                seq.outcome, procs
            );
        }
        if seq.outcome.is_holds() {
            prop_assert_eq!(par.stats.unique_states, seq.stats.unique_states);
            prop_assert_eq!(par.stats.steps, seq.stats.steps);
            prop_assert_eq!(par.stats.max_depth, seq.stats.max_depth);
        }
    }
}

/// Builds a distinct [`State`] for each global valuation by instantiating a
/// trivial program whose globals start at those values.
fn state_for(vals: (i32, i32, i32)) -> State {
    let mut prog = ProgramBuilder::new();
    prog.global("g0", vals.0);
    prog.global("g1", vals.1);
    prog.global("g2", vals.2);
    let mut p = ProcessBuilder::new("idle");
    let s0 = p.location("s0");
    p.mark_end(s0);
    prog.add_process(p).unwrap();
    State::initial(&prog.build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded visited-set membership agrees with the unsharded sequential
    /// backends after randomized, interleaved concurrent inserts (including
    /// re-inserted duplicates), for all three backend families.
    #[test]
    fn sharded_visited_membership_agrees_with_unsharded(
        vals in proptest::collection::vec((0i32..50, 0i32..50, 0i32..50), 1..32),
        probes in proptest::collection::vec((0i32..50, 0i32..50, 0i32..50), 1..16),
        threads in 2usize..5,
    ) {
        let states: Vec<std::sync::Arc<State>> =
            vals.iter().map(|v| std::sync::Arc::new(state_for(*v))).collect();

        // Sequential reference backends.
        let mut exact = ExactVisited::new(64);
        let mut compact = CompactVisited::new();
        let mut bitstate = BitstateVisited::new(1024, 3);
        for s in &states {
            let rc = Rc::new((**s).clone());
            exact.insert(&rc);
            compact.insert(&rc);
            bitstate.insert(&rc);
        }

        // Sharded backends, populated from `threads` workers that interleave
        // inserts (each worker also re-inserts its predecessor's states, so
        // duplicate insertion races are exercised).
        let sh_exact = ShardedExactVisited::new(64);
        let sh_compact = ShardedCompactVisited::new();
        let sh_bitstate = ShardedBitstateVisited::new(1024, 3);
        let budget = StateBudget::unlimited();
        std::thread::scope(|scope| {
            for w in 0..threads {
                let states = &states;
                let (sh_exact, sh_compact, sh_bitstate) = (&sh_exact, &sh_compact, &sh_bitstate);
                let budget = &budget;
                scope.spawn(move || {
                    for (i, s) in states.iter().enumerate() {
                        if i % threads == w || (i + 1) % threads == w {
                            sh_exact.insert_if_new(s, budget);
                            sh_compact.insert_if_new(s, budget);
                            sh_bitstate.insert_if_new(s, budget);
                        }
                    }
                });
            }
        });

        for (v, s) in vals.iter().zip(&states) {
            prop_assert!(sh_exact.contains(s), "exact lost {v:?}");
            prop_assert!(sh_compact.contains(s), "compact lost {v:?}");
            prop_assert!(sh_bitstate.contains(s), "bitstate lost {v:?}");
        }
        // Sharded and unsharded backends hash with the same seeds, so they
        // must agree on *every* probe — members and non-members alike.
        for v in &probes {
            let probe = state_for(*v);
            prop_assert_eq!(sh_exact.contains(&probe), exact.contains(&probe), "{:?}", v);
            prop_assert_eq!(sh_compact.contains(&probe), compact.contains(&probe), "{:?}", v);
            prop_assert_eq!(sh_bitstate.contains(&probe), bitstate.contains(&probe), "{:?}", v);
        }
        prop_assert_eq!(sh_exact.len(), exact.len());
        prop_assert_eq!(sh_compact.len(), compact.len());
    }
}

// ---------------------------------------------------------------------
// Planted accepting cycles: parallel liveness vs a known ground truth
// ---------------------------------------------------------------------

/// A program with a *planted* accepting cycle: a main process walks a
/// `pre`-step prefix chain into a `loop_len`-location loop whose step at
/// `beacon_pos` raises a beacon flag (every other loop step lowers it).
/// With `planted == false` the loop-back edge is redirected to a halt
/// state that lowers the beacon, so the beacon flashes at most finitely
/// often and `<> [] quiet` flips from violated to holding. An optional
/// noise alternator widens the product without touching the beacon.
fn planted_lasso_program(
    pre: usize,
    loop_len: usize,
    beacon_pos: usize,
    planted: bool,
    noise: bool,
) -> Program {
    let mut prog = ProgramBuilder::new();
    let beacon = prog.global("beacon", 0);

    let mut p = ProcessBuilder::new("walker");
    let mut at = p.location("start");
    for i in 0..pre {
        let next = p.location(format!("pre{i}"));
        p.transition(at, next, Guard::always(), Action::Skip, "walk");
        at = next;
    }
    let loop_locs: Vec<_> = (0..loop_len)
        .map(|i| p.location(format!("loop{i}")))
        .collect();
    p.transition(
        at,
        loop_locs[0],
        Guard::always(),
        Action::Skip,
        "enter loop",
    );
    for i in 0..loop_len {
        let value = i32::from(i == beacon_pos);
        let action = Action::assign(beacon, value.into());
        if i + 1 < loop_len {
            p.transition(
                loop_locs[i],
                loop_locs[i + 1],
                Guard::always(),
                action,
                "advance",
            );
        } else if planted {
            p.transition(
                loop_locs[i],
                loop_locs[0],
                Guard::always(),
                action,
                "loop back",
            );
        } else {
            let halt = p.location("halt");
            p.mark_end(halt);
            p.transition(
                loop_locs[i],
                halt,
                Guard::always(),
                Action::assign(beacon, 0.into()),
                "halt",
            );
        }
    }
    prog.add_process(p).unwrap();

    if noise {
        let hum = prog.global("hum", 0);
        let mut q = ProcessBuilder::new("noise");
        let n0 = q.location("lo");
        let n1 = q.location("hi");
        q.transition(n0, n1, Guard::always(), Action::assign(hum, 1.into()), "up");
        q.transition(
            n1,
            n0,
            Guard::always(),
            Action::assign(hum, 0.into()),
            "down",
        );
        prog.add_process(q).unwrap();
    }
    prog.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The planted accepting cycle is found at every thread count — and
    /// its cycle-free mutation reports `Holds` at every thread count.
    /// Every violating run is replay-validated.
    #[test]
    fn planted_accepting_cycle_found_at_every_thread_count(
        pre in 0usize..4,
        loop_len in 1usize..5,
        beacon_seed in 0usize..8,
        noise in 0u8..2,
    ) {
        let beacon_pos = beacon_seed % loop_len;
        for planted in [true, false] {
            let program =
                planted_lasso_program(pre, loop_len, beacon_pos, planted, noise == 1);
            let beacon = program.global_by_name("beacon").unwrap();
            let quiet = Proposition::new(
                "quiet",
                Predicate::from_expr(expr::eq(expr::global(beacon), 0.into())),
            );
            for threads in [1usize, 2, 4, 8] {
                let report = Checker::with_config(
                    &program,
                    SearchConfig { threads, ..SearchConfig::default() },
                )
                .check_ltl_str("<> [] quiet", std::slice::from_ref(&quiet))
                .unwrap();
                prop_assert_eq!(
                    report.outcome.is_holds(),
                    !planted,
                    "planted={} threads={} pre={} loop_len={} beacon_pos={}: {:?}",
                    planted, threads, pre, loop_len, beacon_pos, report.outcome
                );
                if let LtlOutcome::Violated { prefix, cycle } = &report.outcome {
                    prop_assert!(
                        Checker::new(&program).validate_lasso(prefix, cycle).unwrap(),
                        "threads={}: reported lasso failed replay validation",
                        threads
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Expression evaluator vs wide-integer oracle
// ---------------------------------------------------------------------

/// A mirrored expression with an i64 reference evaluator.
#[derive(Debug, Clone)]
enum RefExpr {
    Const(i32),
    Add(Box<RefExpr>, Box<RefExpr>),
    Sub(Box<RefExpr>, Box<RefExpr>),
    Mul(Box<RefExpr>, Box<RefExpr>),
    Lt(Box<RefExpr>, Box<RefExpr>),
    And(Box<RefExpr>, Box<RefExpr>),
    Not(Box<RefExpr>),
}

impl RefExpr {
    fn to_expr(&self) -> Expr {
        match self {
            RefExpr::Const(v) => (*v).into(),
            RefExpr::Add(a, b) => a.to_expr() + b.to_expr(),
            RefExpr::Sub(a, b) => a.to_expr() - b.to_expr(),
            RefExpr::Mul(a, b) => a.to_expr() * b.to_expr(),
            RefExpr::Lt(a, b) => expr::lt(a.to_expr(), b.to_expr()),
            RefExpr::And(a, b) => expr::and(a.to_expr(), b.to_expr()),
            RefExpr::Not(a) => expr::not(a.to_expr()),
        }
    }

    /// Evaluates in i64 (no overflow for depth-bounded i16 leaves); returns
    /// `None` if any intermediate leaves i32 range (the kernel reports
    /// overflow there).
    fn eval(&self) -> Option<i64> {
        let v = match self {
            RefExpr::Const(v) => *v as i64,
            RefExpr::Add(a, b) => a.eval()? + b.eval()?,
            RefExpr::Sub(a, b) => a.eval()? - b.eval()?,
            RefExpr::Mul(a, b) => a.eval()? * b.eval()?,
            RefExpr::Lt(a, b) => (a.eval()? < b.eval()?) as i64,
            RefExpr::And(a, b) => {
                let left = a.eval()?;
                if left == 0 {
                    0
                } else {
                    (b.eval()? != 0) as i64
                }
            }
            RefExpr::Not(a) => (a.eval()? == 0) as i64,
        };
        (i32::MIN as i64 <= v && v <= i32::MAX as i64).then_some(v)
    }
}

fn arb_ref_expr() -> impl Strategy<Value = RefExpr> {
    let leaf = (-100i32..100).prop_map(RefExpr::Const);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RefExpr::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::And(Box::new(a), Box::new(b))),
            inner.prop_map(|a| RefExpr::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The kernel's expression evaluator matches the oracle wherever the
    /// oracle stays in i32 range (guards evaluate expressions, so this is
    /// checked through a one-transition program).
    #[test]
    fn expression_evaluator_matches_oracle(re in arb_ref_expr()) {
        let Some(expected) = re.eval() else {
            // Overflowing cases are reported as errors by the kernel; they
            // are exercised in the unit tests.
            return Ok(());
        };
        let mut prog = ProgramBuilder::new();
        let out = prog.global("out", 0);
        let mut p = ProcessBuilder::new("eval");
        let s0 = p.location("s0");
        let s1 = p.location("s1");
        p.mark_end(s1);
        p.transition(s0, s1, Guard::always(), Action::assign(out, re.to_expr()), "compute");
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let mut sim = Simulator::new(&program, 0);
        sim.run(2).unwrap();
        prop_assert_eq!(sim.view().global(out) as i64, expected);
    }
}

// ---------------------------------------------------------------------
// Crash tolerance: checkpoint/resume and lossy visited-set backends
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interrupting a search at an arbitrary states budget, snapshotting,
    /// and resuming explores exactly the state/transition counts — and
    /// reaches exactly the verdict — of an uninterrupted run.
    #[test]
    fn interrupted_resume_is_equivalent_to_one_run(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..5),
            2..4,
        ),
        interrupt_at in 2usize..40,
    ) {
        let program = build_program(&procs);
        let checks = SafetyChecks::deadlock_only();
        let full = Checker::new(&program).check_safety(&checks).unwrap();

        let sink = Rc::new(RefCell::new(Vec::new()));
        let mut report = Checker::with_config(
            &program,
            SearchConfig { max_states: interrupt_at, ..SearchConfig::default() },
        )
        .checkpoint_to(Rc::clone(&sink))
        .check_safety(&checks)
        .unwrap();

        // Resume (possibly repeatedly: each round widens the budget by the
        // same increment, exercising multi-generation snapshots).
        let mut budget = interrupt_at;
        while matches!(report.outcome, SafetyOutcome::LimitReached { .. }) {
            budget += interrupt_at;
            let snapshot = Snapshot::decode(&sink.borrow()).unwrap();
            report = Checker::resume_from(&program, snapshot)
                .unwrap()
                .with_search_config(SearchConfig { max_states: budget, ..SearchConfig::default() })
                .checkpoint_to(Rc::clone(&sink))
                .check_safety(&checks)
                .unwrap();
        }

        prop_assert_eq!(
            format!("{:?}", &report.outcome),
            format!("{:?}", &full.outcome),
            "procs: {:?}", procs
        );
        prop_assert_eq!(report.stats.unique_states, full.stats.unique_states);
        prop_assert_eq!(report.stats.steps, full.stats.steps);
        prop_assert_eq!(report.stats.max_depth, full.stats.max_depth);
    }

    /// A truncated or bit-flipped snapshot fails to decode with a clean
    /// `SnapshotError` — never a panic, never a bogus resume.
    #[test]
    fn corrupted_snapshots_are_rejected_cleanly(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..4),
            2..3,
        ),
        cut in 0usize..10_000,
        flip in 0usize..10_000,
    ) {
        let program = build_program(&procs);
        let sink = Rc::new(RefCell::new(Vec::new()));
        Checker::with_config(
            &program,
            SearchConfig { max_states: 4, ..SearchConfig::default() },
        )
        .checkpoint_to(Rc::clone(&sink))
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        let bytes = sink.borrow().clone();
        if bytes.is_empty() {
            return Ok(()); // search finished under budget: nothing flushed
        }

        let truncated = &bytes[..cut % bytes.len()];
        prop_assert!(Snapshot::decode(truncated).is_err());

        let mut flipped = bytes.clone();
        let i = flip % flipped.len();
        flipped[i] ^= 1 << (flip % 8);
        prop_assert!(Snapshot::decode(&flipped).is_err(), "flip at byte {}", i);
    }

    /// Lossy backends never fabricate a violation: whenever hash
    /// compaction or bitstate hashing reports a counterexample, the exact
    /// search confirms the program really is unsafe. (Collisions may only
    /// *hide* states — soundness of reported violations is absolute.)
    #[test]
    fn lossy_backends_never_fabricate_violations(
        procs in proptest::collection::vec(
            proptest::collection::vec(arb_move(), 1..5),
            2..4,
        ),
    ) {
        let program = build_program(&procs);
        let checks = SafetyChecks::deadlock_only();
        let exact = Checker::new(&program).check_safety(&checks).unwrap();

        // A deliberately tiny arena forces collisions on larger runs, so
        // the exact-replay validation path actually fires.
        for kind in [
            VisitedKind::Compact,
            VisitedKind::Bitstate { arena_bytes: 64, hashes: 2 },
        ] {
            let report = Checker::with_config(
                &program,
                SearchConfig { visited: kind, ..SearchConfig::default() },
            )
            .check_safety(&checks)
            .unwrap();
            let lossy_violated = report.outcome.trace().is_some();
            if lossy_violated {
                prop_assert!(
                    !exact.outcome.is_holds(),
                    "{} fabricated a violation on a safe program: {:?}",
                    kind, procs
                );
            }
            if report.outcome.holds_modulo_hashing() {
                prop_assert!(
                    report.stats.unique_states <= exact.stats.unique_states,
                    "{} visited more states than exist", kind
                );
            }
        }
    }
}
