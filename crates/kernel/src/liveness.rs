//! LTL checking: Büchi product construction and nested depth-first search.
//!
//! [`Checker::check_ltl`] verifies `phi` by translating `! phi` to a Büchi
//! automaton ([`pnp_ltl::translate`]), forming the on-the-fly product with
//! the system's state graph, and searching for an accepting cycle with the
//! classic nested-DFS algorithm (Courcoubetis, Vardi, Wolper, Yannakakis).
//! An accepting cycle is a behavior of the system that violates `phi`; it is
//! reported as a lasso (finite prefix + repeating cycle).
//!
//! Terminating runs are handled with the usual stutter extension: a state
//! with no enabled steps gets an implicit self-loop, so e.g. `<> p` is
//! correctly reported violated by a system that halts before `p`.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use pnp_ltl::{translate, Buchi, Ltl};

use crate::explore::{CancelToken, Checker, Predicate, SearchStats};
use crate::state::{apply_step, enabled_steps, KernelError, State, StateView, Step};
use crate::trace::{Trace, TraceEvent};

/// A named atomic proposition: binds a name used in LTL formulas to a state
/// predicate.
#[derive(Debug, Clone)]
pub struct Proposition {
    pub(crate) name: String,
    pub(crate) predicate: Predicate,
}

impl Proposition {
    /// Creates a proposition.
    pub fn new(name: impl Into<String>, predicate: Predicate) -> Proposition {
        Proposition {
            name: name.into(),
            predicate,
        }
    }

    /// The name referenced from LTL formulas.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The result of an LTL check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LtlOutcome {
    /// No accepting cycle exists: the property holds on every (infinite or
    /// stutter-extended) run.
    Holds,
    /// The property is violated by the run `prefix . cycle^omega`.
    Violated {
        /// Steps from the initial state to the start of the cycle.
        prefix: Trace,
        /// Steps around the accepting cycle.
        cycle: Trace,
    },
}

impl LtlOutcome {
    /// `true` when the property holds.
    pub fn is_holds(&self) -> bool {
        matches!(self, LtlOutcome::Holds)
    }
}

/// The report of an LTL check: the outcome plus exploration statistics.
#[derive(Debug, Clone)]
pub struct LtlReport {
    /// What was found.
    pub outcome: LtlOutcome,
    /// Statistics over the *product* graph (`unique_states` counts product
    /// nodes, which is at most system states x automaton states).
    pub stats: SearchStats,
    /// `true` when the search hit [`crate::SearchConfig::max_states`] system
    /// states before completion; a `Holds` outcome is then only partial.
    pub truncated: bool,
    /// `Some(reason)` when a multi-threaded check
    /// ([`crate::SearchConfig::threads`] > 1) fell back to the sequential
    /// nested-DFS algorithm; the outcome is then the sequential one.
    /// Always `None` for a sequential check.
    pub fallback: Option<&'static str>,
}

/// A compiled Büchi transition: literals resolved to proposition indices.
pub(crate) struct CompiledTransition {
    pub(crate) literals: Vec<(usize, bool)>,
    pub(crate) target: usize,
}

pub(crate) fn compile_buchi(
    buchi: &Buchi,
    props: &[Proposition],
) -> Result<Vec<Vec<CompiledTransition>>, KernelError> {
    let index: HashMap<&str, usize> = props
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    let mut compiled = Vec::with_capacity(buchi.state_count());
    for state in 0..buchi.state_count() {
        let mut outgoing = Vec::new();
        for t in buchi.transitions_from(state) {
            let literals = t
                .label
                .iter()
                .map(|lit| {
                    index
                        .get(lit.prop.as_ref())
                        .map(|&i| (i, lit.positive))
                        .ok_or_else(|| KernelError::UnknownProposition {
                            name: lit.prop.to_string(),
                        })
                })
                .collect::<Result<Vec<_>, _>>()?;
            outgoing.push(CompiledTransition {
                literals,
                target: t.target,
            });
        }
        compiled.push(outgoing);
    }
    Ok(compiled)
}

/// State of the on-the-fly product exploration.
struct ProductGraph<'p> {
    checker: &'p Checker<'p>,
    props: &'p [Proposition],
    buchi: Vec<Vec<CompiledTransition>>,
    accepting: Vec<bool>,

    /// Interned system states.
    sys_index: HashMap<Rc<State>, usize>,
    sys_states: Vec<Rc<State>>,
    /// Cached successor lists; `None` until computed. An empty list means
    /// the state is terminal (stutter applies).
    sys_succ: Vec<Option<SuccList>>,
    /// Cached proposition valuations per system state.
    labels: Vec<Option<Rc<Vec<bool>>>>,
    /// Cached per-state "process has an enabled step (as actor or
    /// rendezvous partner)" bitsets, used by the fairness counters.
    enabled_procs: Vec<Option<Rc<Vec<bool>>>>,

    fairness: Fairness,
    n_procs: usize,
    /// Partial-order reduction table, when applicable (no fairness, no
    /// native propositions).
    reduction: Option<crate::reduction::LocalLocations>,
    truncated: bool,
    edges_explored: usize,
}

/// Scheduling fairness applied during the acceptance-cycle search.
///
/// The PnP building-block models poll (e.g. a blocking receive port retries
/// on `OUT_FAIL`), so without fairness almost every liveness property is
/// "violated" by a schedule that runs the polling loop forever and starves
/// everyone else. [`Fairness::Weak`] excludes such schedules: a violating
/// cycle must, for every process, either contain a step of that process or
/// a state where the process is blocked (SPIN's `-f` option, implemented
/// with the standard Choueka counter construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// Consider every schedule, including starving ones.
    None,
    /// Weak fairness: a process that stays enabled forever must eventually
    /// move. The product is unfolded into `N + 2` copies, so exploration
    /// cost grows by that factor in the worst case.
    #[default]
    Weak,
}

/// A cached system-successor list: `(step, successor system id)` pairs.
type SuccList = Rc<Vec<(Step, usize)>>;

/// A product node: (system state id, automaton state, fairness counter).
///
/// The counter ranges over `0..=N+1` (`N` = process count): `0` = waiting
/// for an accepting automaton state, `k` in `1..=N` = waiting for process
/// `k-1` to move or block, `N+1` = a fair accepting point.
pub(crate) type Node = (usize, usize, u32);

/// An edge into a node: the system step taken, or `None` for stutter.
pub(crate) type Edge = Option<Step>;

/// A recycling arena for product-successor buffers.
///
/// Every DFS frame needs a `Vec<(Edge, Node)>` of product successors, and
/// both nested-DFS loops push and pop frames millions of times on large
/// products — a fresh heap allocation per frame is the hottest allocation
/// site of the liveness checker. The pool hands popped frames' buffers
/// back to new frames (capacity retained, contents cleared), so a search
/// settles into zero successor-buffer allocations once its maximum DFS
/// depth has been reached. Used by the sequential checker and by each
/// CNDFS worker (one pool per worker; buffers never cross threads).
#[derive(Default)]
pub(crate) struct SuccPool {
    free: Vec<Vec<(Edge, Node)>>,
}

impl SuccPool {
    pub(crate) fn take(&mut self) -> Vec<(Edge, Node)> {
        self.free.pop().unwrap_or_default()
    }

    pub(crate) fn give(&mut self, mut buf: Vec<(Edge, Node)>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// The process indices moved by one product edge (at most an actor and
/// its rendezvous partner), without a per-edge heap allocation.
pub(crate) fn moved_procs(step: &Step, buf: &mut [usize; 2]) -> usize {
    buf[0] = step.proc.index();
    match step.partner {
        Some((partner, _)) => {
            buf[1] = partner.index();
            2
        }
        None => 1,
    }
}

impl<'p> ProductGraph<'p> {
    fn intern_sys(&mut self, state: State) -> Option<usize> {
        let rc = Rc::new(state);
        if let Some(&id) = self.sys_index.get(&rc) {
            return Some(id);
        }
        // Cancellation shares the truncation path: the product search
        // stops interning new system states and winds down over the
        // already-explored portion, reporting a truncated (inconclusive)
        // result instead of a proof — the same graceful degradation a
        // tripped state budget gets.
        if self.sys_states.len() >= self.checker.config.max_states
            || self
                .checker
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
        {
            self.truncated = true;
            return None;
        }
        let id = self.sys_states.len();
        self.sys_index.insert(Rc::clone(&rc), id);
        self.sys_states.push(rc);
        self.sys_succ.push(None);
        self.labels.push(None);
        self.enabled_procs.push(None);
        Some(id)
    }

    fn enabled_procs_of(&mut self, sys_id: usize) -> Result<Rc<Vec<bool>>, KernelError> {
        if let Some(cached) = &self.enabled_procs[sys_id] {
            return Ok(Rc::clone(cached));
        }
        let state = Rc::clone(&self.sys_states[sys_id]);
        let mut enabled = vec![false; self.n_procs];
        for step in enabled_steps(self.checker.program, &state)? {
            enabled[step.proc.index()] = true;
            if let Some((partner, _)) = step.partner {
                enabled[partner.index()] = true;
            }
        }
        let rc = Rc::new(enabled);
        self.enabled_procs[sys_id] = Some(Rc::clone(&rc));
        Ok(rc)
    }

    /// Advances the weak-fairness counter across an edge out of `(sys, k)`.
    ///
    /// `source_accepting` is whether the automaton state being left is
    /// accepting; `moved` lists the processes executed by the edge (empty
    /// for stutter).
    fn next_counter(
        &mut self,
        sys: usize,
        k: u32,
        source_accepting: bool,
        moved: &[usize],
    ) -> Result<u32, KernelError> {
        if self.fairness == Fairness::None {
            return Ok(0);
        }
        let n = self.n_procs as u32;
        let enabled = self.enabled_procs_of(sys)?;
        let mut k2 = if k == n + 1 { 0 } else { k };
        if k2 == 0 && source_accepting {
            k2 = 1;
        }
        while k2 >= 1 && k2 <= n {
            let p = (k2 - 1) as usize;
            if moved.contains(&p) || !enabled[p] {
                k2 += 1;
            } else {
                break;
            }
        }
        Ok(k2)
    }

    fn labels_of(&mut self, sys_id: usize) -> Result<Rc<Vec<bool>>, KernelError> {
        if let Some(cached) = &self.labels[sys_id] {
            return Ok(Rc::clone(cached));
        }
        let state = Rc::clone(&self.sys_states[sys_id]);
        let view = StateView::new(self.checker.program, &state);
        let values = self
            .props
            .iter()
            .map(|p| p.predicate.eval(&view))
            .collect::<Result<Vec<bool>, _>>()?;
        let rc = Rc::new(values);
        self.labels[sys_id] = Some(Rc::clone(&rc));
        Ok(rc)
    }

    fn sys_successors(&mut self, sys_id: usize) -> Result<SuccList, KernelError> {
        if let Some(cached) = &self.sys_succ[sys_id] {
            return Ok(Rc::clone(cached));
        }
        let state = Rc::clone(&self.sys_states[sys_id]);
        let mut steps = enabled_steps(self.checker.program, &state)?;
        if let Some(analysis) = &self.reduction {
            steps = crate::reduction::ample_subset(analysis, &state, steps);
        }
        let mut successors = Vec::with_capacity(steps.len());
        for step in steps {
            let applied = apply_step(self.checker.program, &state, step)?;
            if let Some(next_id) = self.intern_sys(applied.state) {
                successors.push((step, next_id));
            }
        }
        let rc = Rc::new(successors);
        self.sys_succ[sys_id] = Some(Rc::clone(&rc));
        Ok(rc)
    }

    /// Product successors of a node, with the edge that reaches each,
    /// appended into a (pooled) buffer.
    fn successors_into(
        &mut self,
        (sys, b, k): Node,
        out: &mut Vec<(Edge, Node)>,
    ) -> Result<(), KernelError> {
        debug_assert!(out.is_empty());
        let source_accepting = self.accepting[b];
        let sys_succ = self.sys_successors(sys)?;
        if sys_succ.is_empty() {
            // Stutter extension: self-loop on the terminal system state.
            // No process moves, but none is enabled either, so the fairness
            // counters pass straight through.
            let k2 = self.next_counter(sys, k, source_accepting, &[])?;
            let labels = self.labels_of(sys)?;
            for t in &self.buchi[b] {
                if t.literals.iter().all(|&(i, pos)| labels[i] == pos) {
                    out.push((None, (sys, t.target, k2)));
                }
            }
        } else {
            let mut moved = [0usize; 2];
            for i in 0..sys_succ.len() {
                let (step, next_sys) = sys_succ[i];
                let n_moved = moved_procs(&step, &mut moved);
                let k2 = self.next_counter(sys, k, source_accepting, &moved[..n_moved])?;
                let labels = self.labels_of(next_sys)?;
                for t in &self.buchi[b] {
                    if t.literals.iter().all(|&(i, pos)| labels[i] == pos) {
                        out.push((Some(step), (next_sys, t.target, k2)));
                    }
                }
            }
        }
        self.edges_explored += out.len();
        Ok(())
    }

    /// Whether a product node is accepting under the configured fairness.
    fn node_accepting(&self, (_, b, k): Node) -> bool {
        match self.fairness {
            Fairness::None => self.accepting[b],
            Fairness::Weak => k == self.n_procs as u32 + 1,
        }
    }

    fn edge_events(&self, source_sys: usize, edge: Edge) -> Result<Vec<TraceEvent>, KernelError> {
        match edge {
            None => Ok(vec![TraceEvent::stutter()]),
            Some(step) => {
                let applied = apply_step(self.checker.program, &self.sys_states[source_sys], step)?;
                Ok(applied.events)
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    Gray,
    Black,
}

impl Checker<'_> {
    /// Checks the LTL property `formula` (with `props` binding its
    /// proposition names to state predicates) against every run of the
    /// program, including stutter-extended terminating runs.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken, a proposition name
    /// in the formula is not bound by `props`, or a predicate fails to
    /// evaluate.
    pub fn check_ltl(
        &self,
        formula: &Ltl,
        props: &[Proposition],
    ) -> Result<LtlReport, KernelError> {
        self.check_ltl_with(formula, props, Fairness::Weak)
    }

    /// Like [`Checker::check_ltl`] with an explicit [`Fairness`] choice.
    ///
    /// When [`crate::SearchConfig::threads`] is greater than one this
    /// dispatches to the parallel CNDFS search
    /// (`crate::pliveness`); `threads <= 1` runs the sequential nested
    /// DFS below, byte-identically to a build without the parallel path.
    ///
    /// # Errors
    ///
    /// As for [`Checker::check_ltl`].
    pub fn check_ltl_with(
        &self,
        formula: &Ltl,
        props: &[Proposition],
        fairness: Fairness,
    ) -> Result<LtlReport, KernelError> {
        if self.config.threads > 1 {
            return crate::pliveness::check_ltl_parallel(self, formula, props, fairness);
        }
        check_ltl_sequential(self, formula, props, fairness)
    }

    /// Convenience wrapper: parses `formula` and calls
    /// [`Checker::check_ltl`].
    ///
    /// # Errors
    ///
    /// Additionally returns [`KernelError::LtlParse`] for malformed
    /// formulas.
    pub fn check_ltl_str(
        &self,
        formula: &str,
        props: &[Proposition],
    ) -> Result<LtlReport, KernelError> {
        let parsed = pnp_ltl::parse(formula).map_err(|e| KernelError::LtlParse {
            message: e.to_string(),
        })?;
        self.check_ltl(&parsed, props)
    }
}

/// The sequential nested-DFS acceptance-cycle search (CVWY). Also the
/// oracle the parallel search falls back to when it cannot preserve a
/// mode, and the algorithm `threads <= 1` runs unchanged.
pub(crate) fn check_ltl_sequential(
    checker: &Checker<'_>,
    formula: &Ltl,
    props: &[Proposition],
    fairness: Fairness,
) -> Result<LtlReport, KernelError> {
    {
        let start = Instant::now();
        let buchi = translate(&formula.negated());
        let compiled = compile_buchi(&buchi, props)?;
        let accepting = (0..buchi.state_count())
            .map(|s| buchi.is_accepting(s))
            .collect::<Vec<_>>();

        let mut graph = ProductGraph {
            checker,
            props,
            buchi: compiled,
            accepting,
            sys_index: HashMap::new(),
            sys_states: Vec::new(),
            sys_succ: Vec::new(),
            labels: Vec::new(),
            enabled_procs: Vec::new(),
            fairness,
            n_procs: checker.program.processes().len(),
            reduction: (checker.config.partial_order_reduction
                && fairness == Fairness::None
                && props.iter().all(|p| p.predicate.is_expr_only()))
            .then(|| crate::reduction::LocalLocations::analyze(checker.program)),
            truncated: false,
            edges_explored: 0,
        };

        let initial_sys = graph
            .intern_sys(State::initial(checker.program))
            .expect("max_states must be at least 1");

        // Initial product nodes: automaton transitions out of state 0 that
        // read the initial system state's labels.
        let labels0 = graph.labels_of(initial_sys)?;
        let mut roots = Vec::new();
        for t in &graph.buchi[buchi.initial()] {
            if t.literals.iter().all(|&(i, pos)| labels0[i] == pos) {
                roots.push((initial_sys, t.target, 0));
            }
        }

        // Nested DFS (CVWY). Gray = on the outer stack; seeds run the inner
        // search in postorder.
        let mut color: HashMap<Node, Color> = HashMap::new();
        let mut parent1: HashMap<Node, (Node, Edge)> = HashMap::new();
        let mut visited2: HashMap<Node, ()> = HashMap::new();
        let mut parent2: HashMap<Node, (Node, Edge)> = HashMap::new();
        let mut pool = SuccPool::default();

        struct Frame {
            node: Node,
            succs: Vec<(Edge, Node)>,
            next: usize,
        }

        let mut found: Option<(Node, Node)> = None; // (seed, gray hit)

        'roots: for root in roots {
            if color.contains_key(&root) {
                continue;
            }
            color.insert(root, Color::Gray);
            let mut root_succs = pool.take();
            graph.successors_into(root, &mut root_succs)?;
            let mut stack: Vec<Frame> = vec![Frame {
                node: root,
                succs: root_succs,
                next: 0,
            }];

            while let Some(frame) = stack.last_mut() {
                if frame.next < frame.succs.len() {
                    let (edge, target) = frame.succs[frame.next];
                    frame.next += 1;
                    let source = frame.node;
                    if let std::collections::hash_map::Entry::Vacant(e) = color.entry(target) {
                        e.insert(Color::Gray);
                        parent1.insert(target, (source, edge));
                        let mut succs = pool.take();
                        graph.successors_into(target, &mut succs)?;
                        stack.push(Frame {
                            node: target,
                            succs,
                            next: 0,
                        });
                    }
                    continue;
                }

                // Postorder: inner search from accepting nodes.
                let seed = frame.node;
                if graph.node_accepting(seed) {
                    let mut seed_succs = pool.take();
                    graph.successors_into(seed, &mut seed_succs)?;
                    #[allow(clippy::type_complexity)] // explicit DFS frame
                    let mut inner: Vec<(Node, Vec<(Edge, Node)>, usize)> =
                        vec![(seed, seed_succs, 0)];
                    visited2.insert(seed, ());
                    while let Some(entry) = inner.last_mut() {
                        if entry.2 < entry.1.len() {
                            let (edge, target) = entry.1[entry.2];
                            entry.2 += 1;
                            let source = entry.0;
                            if color.get(&target) == Some(&Color::Gray) {
                                // Target is on the outer stack: accepting
                                // cycle seed -> ... -> target -> ... -> seed.
                                parent2.insert(target, (source, edge));
                                found = Some((seed, target));
                                break 'roots;
                            }
                            if let std::collections::hash_map::Entry::Vacant(e) =
                                visited2.entry(target)
                            {
                                e.insert(());
                                parent2.insert(target, (source, edge));
                                let mut succs = pool.take();
                                graph.successors_into(target, &mut succs)?;
                                inner.push((target, succs, 0));
                            }
                            continue;
                        }
                        let (_, succs, _) = inner.pop().expect("inner frame present");
                        pool.give(succs);
                    }
                }
                color.insert(seed, Color::Black);
                let frame = stack.pop().expect("outer frame present");
                pool.give(frame.succs);
            }
        }

        let stats = SearchStats {
            unique_states: color.len(),
            steps: graph.edges_explored,
            max_depth: 0,
            elapsed: start.elapsed(),
            ..SearchStats::default()
        };

        let Some((seed, hit)) = found else {
            return Ok(LtlReport {
                outcome: LtlOutcome::Holds,
                stats,
                truncated: graph.truncated,
                fallback: None,
            });
        };

        // Reconstruct the lasso.
        // Prefix: root -> seed along outer-DFS tree parents.
        let mut prefix_edges: Vec<(usize, Edge)> = Vec::new(); // (source sys, edge)
        {
            let mut node = seed;
            while let Some(&(parent, edge)) = parent1.get(&node) {
                prefix_edges.push((parent.0, edge));
                node = parent;
            }
            prefix_edges.reverse();
        }
        // Cycle part A: seed -> hit along inner-DFS parents.
        let mut cycle_a: Vec<(usize, Edge)> = Vec::new();
        {
            // Walk at least one edge so that a cycle closing directly at the
            // seed (hit == seed) is not reconstructed as empty.
            let mut node = hit;
            loop {
                let &(parent, edge) = parent2.get(&node).expect("inner parent chain broken");
                cycle_a.push((parent.0, edge));
                node = parent;
                if node == seed {
                    break;
                }
            }
            cycle_a.reverse();
        }
        // Cycle part B: hit -> seed along the outer stack segment (outer
        // parents lead from seed back up through hit, since hit is gray).
        let mut cycle_b: Vec<(usize, Edge)> = Vec::new();
        if hit != seed {
            let mut node = seed;
            loop {
                let &(parent, edge) = parent1.get(&node).expect("outer parent chain broken");
                cycle_b.push((parent.0, edge));
                if parent == hit {
                    break;
                }
                node = parent;
            }
            cycle_b.reverse();
        }

        let mut prefix_events = Vec::new();
        for (sys, edge) in prefix_edges {
            prefix_events.extend(graph.edge_events(sys, edge)?);
        }
        let mut cycle_events = Vec::new();
        for (sys, edge) in cycle_a.into_iter().chain(cycle_b) {
            cycle_events.extend(graph.edge_events(sys, edge)?);
        }

        Ok(LtlReport {
            outcome: LtlOutcome::Violated {
                prefix: Trace::new(prefix_events),
                cycle: Trace::new(cycle_events),
            },
            stats,
            truncated: graph.truncated,
            fallback: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    /// A counter that increments to `stop` and halts (end state).
    fn counter(stop: i32) -> crate::program::Program {
        let mut prog = ProgramBuilder::new();
        let n = prog.global("n", 0);
        let mut p = ProcessBuilder::new("counter");
        let s0 = p.location("run");
        let s1 = p.location("halt");
        p.mark_end(s1);
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::global(n), stop.into())),
            Action::assign(n, expr::global(n) + 1.into()),
            "inc",
        );
        p.transition(
            s0,
            s1,
            Guard::when(expr::ge(expr::global(n), stop.into())),
            Action::Skip,
            "stop",
        );
        prog.add_process(p).unwrap();
        prog.build().unwrap()
    }

    fn prop_n_eq(program: &crate::program::Program, value: i32) -> Proposition {
        let n = program.global_by_name("n").unwrap();
        Proposition::new(
            format!("n{value}"),
            Predicate::from_expr(expr::eq(expr::global(n), value.into())),
        )
    }

    #[test]
    fn eventually_reached_value_holds() {
        let program = counter(3);
        let checker = Checker::new(&program);
        let report = checker
            .check_ltl_str("<> n3", &[prop_n_eq(&program, 3)])
            .unwrap();
        assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    }

    #[test]
    fn eventually_unreachable_value_is_violated_with_lasso() {
        let program = counter(3);
        let checker = Checker::new(&program);
        let report = checker
            .check_ltl_str("<> n5", &[prop_n_eq(&program, 5)])
            .unwrap();
        match report.outcome {
            LtlOutcome::Violated { prefix: _, cycle } => {
                // The violating run ends in stutter at the halt state.
                assert!(!cycle.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn globally_holds_for_true_bound() {
        let program = counter(3);
        let n = program.global_by_name("n").unwrap();
        let checker = Checker::new(&program);
        let bounded = Proposition::new(
            "bounded",
            Predicate::from_expr(expr::le(expr::global(n), 3.into())),
        );
        let report = checker.check_ltl_str("[] bounded", &[bounded]).unwrap();
        assert!(report.outcome.is_holds());
    }

    #[test]
    fn globally_violated_has_finite_prefix() {
        let program = counter(3);
        let n = program.global_by_name("n").unwrap();
        let checker = Checker::new(&program);
        let small = Proposition::new(
            "small",
            Predicate::from_expr(expr::lt(expr::global(n), 2.into())),
        );
        let report = checker.check_ltl_str("[] small", &[small]).unwrap();
        match report.outcome {
            LtlOutcome::Violated { prefix, .. } => {
                // n reaches 2 after two increments.
                assert!(!prefix.is_empty(), "prefix: {prefix:?}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    /// An infinite alternator between two locations, exposing a flag.
    fn alternator() -> crate::program::Program {
        let mut prog = ProgramBuilder::new();
        let flag = prog.global("flag", 0);
        let mut p = ProcessBuilder::new("alt");
        let s0 = p.location("off");
        let s1 = p.location("on");
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::assign(flag, 1.into()),
            "turn on",
        );
        p.transition(
            s1,
            s0,
            Guard::always(),
            Action::assign(flag, 0.into()),
            "turn off",
        );
        prog.add_process(p).unwrap();
        prog.build().unwrap()
    }

    #[test]
    fn infinitely_often_holds_on_alternator() {
        let program = alternator();
        let flag = program.global_by_name("flag").unwrap();
        let on = Proposition::new(
            "on",
            Predicate::from_expr(expr::eq(expr::global(flag), 1.into())),
        );
        let report = Checker::new(&program)
            .check_ltl_str("[] <> on", &[on])
            .unwrap();
        assert!(report.outcome.is_holds());
    }

    #[test]
    fn eventually_always_violated_on_alternator() {
        let program = alternator();
        let flag = program.global_by_name("flag").unwrap();
        let on = Proposition::new(
            "on",
            Predicate::from_expr(expr::eq(expr::global(flag), 1.into())),
        );
        let report = Checker::new(&program)
            .check_ltl_str("<> [] on", &[on])
            .unwrap();
        match report.outcome {
            LtlOutcome::Violated { cycle, .. } => {
                // The cycle alternates, so it has at least two steps.
                assert!(cycle.len() >= 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn next_operator_sees_first_transition() {
        let program = counter(2);
        let report = Checker::new(&program)
            .check_ltl_str("X n1", &[prop_n_eq(&program, 1)])
            .unwrap();
        assert!(report.outcome.is_holds());
        let report = Checker::new(&program)
            .check_ltl_str("X n2", &[prop_n_eq(&program, 2)])
            .unwrap();
        assert!(!report.outcome.is_holds());
    }

    #[test]
    fn until_ordering_is_verified() {
        let program = counter(3);
        let n = program.global_by_name("n").unwrap();
        let low = Proposition::new(
            "low",
            Predicate::from_expr(expr::lt(expr::global(n), 2.into())),
        );
        let report = Checker::new(&program)
            .check_ltl_str("low U n2", &[low, prop_n_eq(&program, 2)])
            .unwrap();
        assert!(report.outcome.is_holds());
    }

    #[test]
    fn unknown_proposition_is_an_error() {
        let program = counter(1);
        let err = Checker::new(&program)
            .check_ltl_str("<> mystery", &[])
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::UnknownProposition { name } if name == "mystery"
        ));
    }

    #[test]
    fn malformed_formula_is_an_error() {
        let program = counter(1);
        let err = Checker::new(&program)
            .check_ltl_str("<> (", &[])
            .unwrap_err();
        assert!(matches!(err, KernelError::LtlParse { .. }));
    }

    /// One process spins forever; another has a single always-enabled step
    /// that sets a flag. `<> flag` distinguishes the fairness modes: an
    /// unfair scheduler may starve the second process forever.
    #[test]
    fn weak_fairness_excludes_starvation() {
        let mut prog = ProgramBuilder::new();
        let flag = prog.global("flag", 0);
        let mut spinner = ProcessBuilder::new("spinner");
        let s0 = spinner.location("spin");
        spinner.transition(s0, s0, Guard::always(), Action::Skip, "spin");
        prog.add_process(spinner).unwrap();
        let mut setter = ProcessBuilder::new("setter");
        let t0 = setter.location("set");
        let t1 = setter.location("done");
        setter.mark_end(t1);
        setter.transition(
            t0,
            t1,
            Guard::always(),
            Action::assign(flag, 1.into()),
            "set flag",
        );
        prog.add_process(setter).unwrap();
        let program = prog.build().unwrap();

        let set = Proposition::new(
            "set",
            Predicate::from_expr(expr::eq(expr::global(flag), 1.into())),
        );
        let checker = Checker::new(&program);
        // Under weak fairness the setter, being continuously enabled, must
        // eventually move.
        let fair = checker
            .check_ltl_with(
                &pnp_ltl::parse("<> set").unwrap(),
                std::slice::from_ref(&set),
                Fairness::Weak,
            )
            .unwrap();
        assert!(fair.outcome.is_holds(), "{:?}", fair.outcome);
        // Without fairness the spinner may be scheduled forever.
        let unfair = checker
            .check_ltl_with(&pnp_ltl::parse("<> set").unwrap(), &[set], Fairness::None)
            .unwrap();
        assert!(!unfair.outcome.is_holds());
    }

    /// A rendezvous partner counts as "moved" for fairness purposes: the
    /// handshake between sender and receiver is one step of both.
    #[test]
    fn rendezvous_partner_counts_as_progress() {
        let mut prog = ProgramBuilder::new();
        let flag = prog.global("flag", 0);
        let ch = prog.channel("ch", 0, 1);
        let mut spinner = ProcessBuilder::new("spinner");
        let s0 = spinner.location("spin");
        spinner.transition(s0, s0, Guard::always(), Action::Skip, "spin");
        prog.add_process(spinner).unwrap();
        let mut sender = ProcessBuilder::new("sender");
        let t0 = sender.location("send");
        let t1 = sender.location("done");
        sender.mark_end(t1);
        sender.transition(
            t0,
            t1,
            Guard::always(),
            Action::send(ch, vec![1.into()]),
            "send",
        );
        prog.add_process(sender).unwrap();
        let mut receiver = ProcessBuilder::new("receiver");
        let r0 = receiver.location("recv");
        let r1 = receiver.location("mark");
        let r2 = receiver.location("done");
        receiver.mark_end(r2);
        receiver.transition(r0, r1, Guard::always(), Action::recv_any(ch, 1), "recv");
        receiver.transition(
            r1,
            r2,
            Guard::always(),
            Action::assign(flag, 1.into()),
            "mark",
        );
        prog.add_process(receiver).unwrap();
        let program = prog.build().unwrap();
        let set = Proposition::new(
            "delivered",
            Predicate::from_expr(expr::eq(expr::global(flag), 1.into())),
        );
        let report = Checker::new(&program)
            .check_ltl_str("<> delivered", &[set])
            .unwrap();
        assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    }

    #[test]
    fn native_propositions_work() {
        let program = counter(2);
        let pid = program.process_by_name("counter").unwrap();
        let halted = Proposition::new(
            "halted",
            Predicate::native("at halt", move |view| view.location_name(pid) == "halt"),
        );
        let report = Checker::new(&program)
            .check_ltl_str("<> halted", &[halted])
            .unwrap();
        assert!(report.outcome.is_holds());
    }
}
