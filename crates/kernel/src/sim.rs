//! Random simulation of programs, for quantitative workload statistics.
//!
//! The model checker answers "can this happen?"; the simulator answers "how
//! often / how fast does this happen under a random scheduler?". It executes
//! the same step semantics as the explorer, choosing uniformly among enabled
//! steps with a seeded RNG (runs are reproducible). The paper's informal
//! efficiency claims (e.g. the at-most-N bridge design yields better traffic
//! flow) are quantified with it.

use crate::program::Program;
use crate::rng::SplitMix64;
use crate::state::{apply_step, enabled_steps, is_valid_end_state, KernelError, State, StateView};
use crate::trace::TraceEvent;

/// What one simulation step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimObservation {
    /// A step fired, producing these events.
    Step(Vec<TraceEvent>),
    /// No step is enabled: the run has halted.
    Halted {
        /// `true` if the halt is a deadlock (some process is stuck outside a
        /// marked end location).
        deadlock: bool,
    },
}

/// Summary of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimReport {
    /// Steps actually executed.
    pub steps: usize,
    /// Whether the run halted before the step budget ran out.
    pub halted: bool,
    /// Whether the halt was a deadlock.
    pub deadlock: bool,
}

/// A seeded random-walk executor over a [`Program`].
///
/// # Example
///
/// ```
/// use pnp_kernel::{expr, Action, Guard, ProcessBuilder, ProgramBuilder, Simulator};
///
/// let mut prog = ProgramBuilder::new();
/// let n = prog.global("n", 0);
/// let mut p = ProcessBuilder::new("ticker");
/// let s0 = p.location("tick");
/// p.transition(s0, s0, Guard::always(), Action::assign(n, expr::global(n) + 1.into()), "tick");
/// prog.add_process(p)?;
/// let program = prog.build()?;
///
/// let mut sim = Simulator::new(&program, 42);
/// let report = sim.run(100)?;
/// assert_eq!(report.steps, 100);
/// assert_eq!(sim.view().global(n), 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    state: State,
    rng: SplitMix64,
    steps_taken: usize,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator at the program's initial state. The same seed
    /// always reproduces the same run.
    pub fn new(program: &'p Program, seed: u64) -> Simulator<'p> {
        Simulator {
            program,
            state: State::initial(program),
            rng: SplitMix64::seed_from_u64(seed),
            steps_taken: 0,
        }
    }

    /// A read-only view of the current state.
    pub fn view(&self) -> StateView<'_> {
        StateView::new(self.program, &self.state)
    }

    /// The number of steps executed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Resets the simulator to the initial state (keeping the RNG stream).
    pub fn reset(&mut self) {
        self.state = State::initial(self.program);
        self.steps_taken = 0;
    }

    /// Executes one uniformly-random enabled step.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    pub fn step(&mut self) -> Result<SimObservation, KernelError> {
        let steps = enabled_steps(self.program, &self.state)?;
        if steps.is_empty() {
            return Ok(SimObservation::Halted {
                deadlock: !is_valid_end_state(self.program, &self.state),
            });
        }
        let choice = steps[self.rng.gen_index(steps.len())];
        let applied = apply_step(self.program, &self.state, choice)?;
        self.state = applied.state;
        self.steps_taken += 1;
        Ok(SimObservation::Step(applied.events))
    }

    /// Runs up to `max_steps` steps.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    pub fn run(&mut self, max_steps: usize) -> Result<SimReport, KernelError> {
        self.run_with(max_steps, |_, _| {})
    }

    /// Runs up to `max_steps` steps, invoking `observer` with the state
    /// *after* each step and the step's events.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    pub fn run_with(
        &mut self,
        max_steps: usize,
        mut observer: impl FnMut(&StateView<'_>, &[TraceEvent]),
    ) -> Result<SimReport, KernelError> {
        let mut executed = 0;
        while executed < max_steps {
            match self.step()? {
                SimObservation::Step(events) => {
                    executed += 1;
                    observer(&StateView::new(self.program, &self.state), &events);
                }
                SimObservation::Halted { deadlock } => {
                    return Ok(SimReport {
                        steps: executed,
                        halted: true,
                        deadlock,
                    });
                }
            }
        }
        Ok(SimReport {
            steps: executed,
            halted: false,
            deadlock: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    fn ticker(stop: Option<i32>) -> Program {
        let mut prog = ProgramBuilder::new();
        let n = prog.global("n", 0);
        let mut p = ProcessBuilder::new("ticker");
        let s0 = p.location("tick");
        let s1 = p.location("halt");
        p.mark_end(s1);
        let guard = match stop {
            Some(v) => Guard::when(expr::lt(expr::global(n), v.into())),
            None => Guard::always(),
        };
        p.transition(
            s0,
            s0,
            guard,
            Action::assign(n, expr::global(n) + 1.into()),
            "tick",
        );
        if let Some(v) = stop {
            p.transition(
                s0,
                s1,
                Guard::when(expr::ge(expr::global(n), v.into())),
                Action::Skip,
                "stop",
            );
        }
        prog.add_process(p).unwrap();
        prog.build().unwrap()
    }

    #[test]
    fn same_seed_reproduces_the_run() {
        // Two competing processes make the schedule nondeterministic.
        let mut prog = ProgramBuilder::new();
        let a = prog.global("a", 0);
        let b = prog.global("b", 0);
        for (name, g) in [("pa", a), ("pb", b)] {
            let mut p = ProcessBuilder::new(name);
            let s0 = p.location("loop");
            p.transition(
                s0,
                s0,
                Guard::always(),
                Action::assign(g, expr::global(g) + 1.into()),
                "bump",
            );
            prog.add_process(p).unwrap();
        }
        let program = prog.build().unwrap();

        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut sim = Simulator::new(&program, 1234);
            sim.run(50).unwrap();
            runs.push((sim.view().global(a), sim.view().global(b)));
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0].0 + runs[0].1, 50);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut prog = ProgramBuilder::new();
        let a = prog.global("a", 0);
        let b = prog.global("b", 0);
        for (name, g) in [("pa", a), ("pb", b)] {
            let mut p = ProcessBuilder::new(name);
            let s0 = p.location("loop");
            p.transition(
                s0,
                s0,
                Guard::always(),
                Action::assign(g, expr::global(g) + 1.into()),
                "bump",
            );
            prog.add_process(p).unwrap();
        }
        let program = prog.build().unwrap();
        let outcomes: Vec<i32> = (0..4)
            .map(|seed| {
                let mut sim = Simulator::new(&program, seed);
                sim.run(100).unwrap();
                sim.view().global(a)
            })
            .collect();
        assert!(
            outcomes.windows(2).any(|w| w[0] != w[1]),
            "four seeds all produced identical interleavings: {outcomes:?}"
        );
    }

    #[test]
    fn halts_cleanly_at_end_state() {
        let program = ticker(Some(5));
        let mut sim = Simulator::new(&program, 0);
        let report = sim.run(100).unwrap();
        assert!(report.halted);
        assert!(!report.deadlock);
        assert_eq!(report.steps, 6); // 5 ticks + 1 stop
        assert_eq!(sim.view().global_by_name("n"), Some(5));
    }

    #[test]
    fn reports_deadlock_when_stuck_outside_end_state() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("never", 0, 1);
        let mut p = ProcessBuilder::new("waiter");
        let s0 = p.location("wait");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(s0, s1, Guard::always(), Action::recv_any(ch, 1), "recv");
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let mut sim = Simulator::new(&program, 0);
        let report = sim.run(10).unwrap();
        assert!(report.halted);
        assert!(report.deadlock);
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn observer_sees_every_step() {
        let program = ticker(Some(3));
        let mut sim = Simulator::new(&program, 9);
        let mut labels = Vec::new();
        sim.run_with(100, |_, events| {
            labels.extend(events.iter().map(|e| e.label().to_string()));
        })
        .unwrap();
        assert_eq!(labels, ["tick", "tick", "tick", "stop"]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let program = ticker(None);
        let mut sim = Simulator::new(&program, 0);
        sim.run(10).unwrap();
        assert_eq!(sim.steps_taken(), 10);
        sim.reset();
        assert_eq!(sim.steps_taken(), 0);
        assert_eq!(sim.view().global_by_name("n"), Some(0));
    }
}
