//! Visited-set backends for the safety search: exact, hash-compaction, and
//! bitstate (multi-hash Bloom filter).
//!
//! The exact backend is today's behavior: every state is stored, membership
//! is precise, and memory grows linearly with the payload size. The two
//! lossy backends trade completeness for memory, exactly as SPIN's
//! `-DCOLLAPSE`-free hash compaction and `-DBITSTATE` modes do:
//!
//! * **Compact** stores one 64-bit hash per state (~16 bytes each
//!   regardless of payload size). Two distinct states colliding on the full
//!   64-bit hash causes one of them to be treated as already visited — an
//!   *omission*, never a false alarm.
//! * **Bitstate** stores `k` bits per state in a fixed-size bit arena, so
//!   memory is *constant* no matter how many states the search reaches.
//!   Collision probability rises smoothly as the arena fills.
//!
//! Lossy backends can only ever *omit* states (a hash collision makes a new
//! state look visited). Omission can hide a violation, so a completed lossy
//! search weakens `Holds` to `HoldsApprox` with the estimated per-state
//! omission probability; and because the search's bookkeeping (parent
//! links) is hash-indexed too, any violation found under a lossy backend is
//! re-validated by exact replay before being reported.

use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::rng::{mix64, SplitMix64};
use crate::state::State;

/// Seed for the deterministic hash family used by the lossy backends.
/// Derived hashes must be stable across runs so that a resumed search
/// agrees with the snapshot it came from.
const HASH_FAMILY_SEED: u64 = 0xb175_7a7e_5eed_0001;

/// Which visited-set backend the safety search uses.
///
/// Selected via [`crate::SearchConfig::visited`]; the default is
/// [`VisitedKind::Exact`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VisitedKind {
    /// Store every state; precise membership (today's behavior).
    #[default]
    Exact,
    /// Store a 64-bit hash per state (SPIN-style hash compaction).
    Compact,
    /// Store `hashes` bits per state in a fixed arena of `arena_bytes`
    /// bytes (SPIN-style bitstate hashing / Bloom filter).
    Bitstate {
        /// Size of the bit arena in bytes. Rounded up to a whole number of
        /// 64-bit words; must be nonzero.
        arena_bytes: usize,
        /// Number of hash functions (bits set per state), at least 1.
        hashes: u32,
    },
}

impl VisitedKind {
    /// Default bitstate arena: 64 MiB (≈ 5.4 × 10⁸ bits).
    pub const DEFAULT_BITSTATE_ARENA: usize = 64 << 20;
    /// Default number of bitstate hash functions.
    pub const DEFAULT_BITSTATE_HASHES: u32 = 3;

    /// A bitstate backend with the given arena size and the default number
    /// of hash functions.
    pub fn bitstate(arena_bytes: usize) -> VisitedKind {
        VisitedKind::Bitstate {
            arena_bytes,
            hashes: VisitedKind::DEFAULT_BITSTATE_HASHES,
        }
    }

    /// Whether this backend can omit states (and therefore weakens a
    /// completed search's verdict to approximate).
    pub fn is_lossy(&self) -> bool {
        !matches!(self, VisitedKind::Exact)
    }
}

impl fmt::Display for VisitedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisitedKind::Exact => write!(f, "exact"),
            VisitedKind::Compact => write!(f, "hash-compact (64-bit)"),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => write!(
                f,
                "bitstate ({} KiB arena, {hashes} hashes)",
                arena_bytes / 1024
            ),
        }
    }
}

/// A 64-bit content hash of a state under the given seed.
///
/// FNV-1a over every scalar in the state (with container lengths mixed in
/// so variable-length channel queues cannot alias), finished with the
/// SplitMix64 output mixer. Different seeds give effectively independent
/// hash functions, which is what the bitstate family needs.
pub(crate) fn state_hash(state: &State, seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET ^ mix64(seed);
    let mut absorb = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
    for proc in state.procs.iter() {
        absorb(u64::from(proc.loc));
        for &local in proc.locals.iter() {
            absorb(local as u32 as u64);
        }
    }
    for chan in state.chans.iter() {
        absorb(chan.len() as u64);
        for msg in chan.iter() {
            for &field in msg.fields() {
                absorb(field as u32 as u64);
            }
        }
    }
    for &global in state.globals.iter() {
        absorb(global as u32 as u64);
    }
    mix64(h)
}

/// A set of visited states, with backend-specific precision and cost.
///
/// Implemented by [`ExactVisited`], [`CompactVisited`], and
/// [`BitstateVisited`]; the safety search is generic over this trait.
pub trait VisitedSet {
    /// Whether `state` is (believed to be) already visited. Lossy backends
    /// may return `true` for a state never inserted (a collision), never
    /// `false` for one that was.
    fn contains(&self, state: &State) -> bool;

    /// Records `state` as visited.
    fn insert(&mut self, state: &Rc<State>);

    /// Number of states inserted.
    fn len(&self) -> usize;

    /// Whether no state has been inserted yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory held by the backend, in bytes.
    fn approx_bytes(&self) -> usize;

    /// The backend's kind (and parameters).
    fn kind(&self) -> VisitedKind;

    /// Estimated probability that a *new* distinct state would collide with
    /// the current contents and be wrongly treated as visited. Zero for the
    /// exact backend.
    fn omission_probability(&self) -> f64;
}

/// The precise backend: every state payload is stored.
pub struct ExactVisited {
    set: HashSet<Rc<State>>,
    per_state_bytes: usize,
}

impl ExactVisited {
    /// An empty exact set; `per_state_bytes` is the caller's estimate of
    /// the full cost of one stored state (payload plus container overhead).
    pub fn new(per_state_bytes: usize) -> ExactVisited {
        ExactVisited {
            set: HashSet::new(),
            per_state_bytes,
        }
    }
}

impl VisitedSet for ExactVisited {
    fn contains(&self, state: &State) -> bool {
        self.set.contains(state)
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.set.insert(Rc::clone(state));
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn approx_bytes(&self) -> usize {
        self.set.len() * self.per_state_bytes
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Exact
    }

    fn omission_probability(&self) -> f64 {
        0.0
    }
}

/// Hash compaction: one 64-bit hash per state.
pub struct CompactVisited {
    hashes: HashSet<u64>,
    seed: u64,
}

impl CompactVisited {
    /// An empty compacted set.
    pub fn new() -> CompactVisited {
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        CompactVisited {
            hashes: HashSet::new(),
            seed: family.next_u64(),
        }
    }

    /// Rebuilds the set from a snapshot payload.
    pub(crate) fn from_hashes(hashes: impl IntoIterator<Item = u64>) -> CompactVisited {
        let mut set = CompactVisited::new();
        set.hashes.extend(hashes);
        set
    }

    /// The stored hashes, for snapshotting (sorted for determinism).
    pub(crate) fn snapshot_hashes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.hashes.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Default for CompactVisited {
    fn default() -> Self {
        CompactVisited::new()
    }
}

impl VisitedSet for CompactVisited {
    fn contains(&self, state: &State) -> bool {
        self.hashes.contains(&state_hash(state, self.seed))
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.hashes.insert(state_hash(state, self.seed));
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn approx_bytes(&self) -> usize {
        // 8 bytes of hash plus ~8 bytes of HashSet overhead per entry.
        self.hashes.len() * 16
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Compact
    }

    fn omission_probability(&self) -> f64 {
        // A new state collides if its 64-bit hash equals any of the n
        // stored ones: p ≈ n / 2^64.
        self.hashes.len() as f64 / 2f64.powi(64)
    }
}

/// Bitstate hashing: `k` bits per state in a fixed arena (Bloom filter).
pub struct BitstateVisited {
    arena: Vec<u64>,
    bits: u64,
    hashes: u32,
    inserted: usize,
    arena_bytes: usize,
    seed1: u64,
    seed2: u64,
}

impl BitstateVisited {
    /// An empty arena of (at least) `arena_bytes` bytes using `hashes` hash
    /// functions per state. The hash family is seeded from the workspace's
    /// [`SplitMix64`] so it is stable across checkpoint/resume.
    pub fn new(arena_bytes: usize, hashes: u32) -> BitstateVisited {
        let arena_bytes = arena_bytes.max(8);
        let hashes = hashes.max(1);
        let words = arena_bytes.div_ceil(8);
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        // Burn the compact backend's seed so the two backends use
        // independent hash functions.
        let _compact_seed = family.next_u64();
        BitstateVisited {
            arena: vec![0u64; words],
            bits: (words as u64) * 64,
            hashes,
            inserted: 0,
            arena_bytes,
            seed1: family.next_u64(),
            seed2: family.next_u64(),
        }
    }

    /// Rebuilds the arena from a snapshot payload.
    pub(crate) fn from_arena(
        arena_bytes: usize,
        hashes: u32,
        arena: Vec<u64>,
        inserted: usize,
    ) -> BitstateVisited {
        let mut set = BitstateVisited::new(arena_bytes, hashes);
        debug_assert_eq!(set.arena.len(), arena.len());
        set.arena = arena;
        set.inserted = inserted;
        set
    }

    /// The arena words and insert count, for snapshotting.
    pub(crate) fn snapshot_arena(&self) -> (&[u64], usize) {
        (&self.arena, self.inserted)
    }

    /// The `k` bit indices for a state (double hashing: `h1 + i·h2`).
    fn bit_indices(&self, state: &State) -> impl Iterator<Item = u64> + use<> {
        let h1 = state_hash(state, self.seed1);
        let h2 = state_hash(state, self.seed2) | 1; // odd: full period
        let bits = self.bits;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % bits)
    }
}

impl VisitedSet for BitstateVisited {
    fn contains(&self, state: &State) -> bool {
        self.bit_indices(state)
            .all(|bit| self.arena[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    fn insert(&mut self, state: &Rc<State>) {
        let mut fresh = false;
        for bit in self.bit_indices(state).collect::<Vec<_>>() {
            let word = &mut self.arena[(bit / 64) as usize];
            let mask = 1u64 << (bit % 64);
            fresh |= *word & mask == 0;
            *word |= mask;
        }
        if fresh {
            self.inserted += 1;
        }
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn approx_bytes(&self) -> usize {
        self.arena.len() * 8
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Bitstate {
            arena_bytes: self.arena_bytes,
            hashes: self.hashes,
        }
    }

    fn omission_probability(&self) -> f64 {
        bloom_omission_probability(self.bits, self.hashes, self.inserted)
    }
}

/// The standard Bloom-filter false-positive estimate for `m` bits, `k`
/// hash functions, and `n` inserted elements: `(1 − e^(−k·n/m))^k`.
///
/// This is the probability that a new distinct state maps onto `k` bits
/// that are all already set — i.e. the chance it is wrongly skipped.
pub fn bloom_omission_probability(m_bits: u64, k_hashes: u32, n_inserted: usize) -> f64 {
    if n_inserted == 0 {
        return 0.0;
    }
    let m = m_bits as f64;
    let k = f64::from(k_hashes);
    let n = n_inserted as f64;
    (1.0 - (-k * n / m).exp()).powf(k)
}

/// The concrete backend held by the explorer (avoids `dyn` so snapshots can
/// extract backend payloads without downcasting).
pub(crate) enum AnyVisited {
    Exact(ExactVisited),
    Compact(CompactVisited),
    Bitstate(BitstateVisited),
}

impl AnyVisited {
    pub(crate) fn new(kind: VisitedKind, per_state_bytes: usize) -> AnyVisited {
        match kind {
            VisitedKind::Exact => AnyVisited::Exact(ExactVisited::new(per_state_bytes)),
            VisitedKind::Compact => AnyVisited::Compact(CompactVisited::new()),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => AnyVisited::Bitstate(BitstateVisited::new(arena_bytes, hashes)),
        }
    }

    fn inner(&self) -> &dyn VisitedSet {
        match self {
            AnyVisited::Exact(s) => s,
            AnyVisited::Compact(s) => s,
            AnyVisited::Bitstate(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn VisitedSet {
        match self {
            AnyVisited::Exact(s) => s,
            AnyVisited::Compact(s) => s,
            AnyVisited::Bitstate(s) => s,
        }
    }
}

impl VisitedSet for AnyVisited {
    fn contains(&self, state: &State) -> bool {
        self.inner().contains(state)
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.inner_mut().insert(state);
    }

    fn len(&self) -> usize {
        self.inner().len()
    }

    fn approx_bytes(&self) -> usize {
        self.inner().approx_bytes()
    }

    fn kind(&self) -> VisitedKind {
        self.inner().kind()
    }

    fn omission_probability(&self) -> f64 {
        self.inner().omission_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};
    use crate::state::State;

    fn two_states() -> (State, State) {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("g", 0);
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::always(),
            Action::assign(g, crate::expression::expr::global(g) + 1.into()),
            "bump",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let a = State::initial(&program);
        let step = crate::state::enabled_steps(&program, &a).unwrap()[0];
        let b = crate::state::apply_step(&program, &a, step).unwrap().state;
        (a, b)
    }

    #[test]
    fn state_hash_distinguishes_states_and_seeds() {
        let (a, b) = two_states();
        assert_ne!(state_hash(&a, 1), state_hash(&b, 1));
        assert_ne!(state_hash(&a, 1), state_hash(&a, 2));
        assert_eq!(state_hash(&a, 7), state_hash(&a, 7));
    }

    #[test]
    fn every_backend_remembers_inserted_states() {
        let (a, b) = two_states();
        let (a, b) = (Rc::new(a), Rc::new(b));
        let backends: Vec<Box<dyn VisitedSet>> = vec![
            Box::new(ExactVisited::new(128)),
            Box::new(CompactVisited::new()),
            Box::new(BitstateVisited::new(1024, 3)),
        ];
        for mut set in backends {
            assert!(!set.contains(&a), "{} starts empty", set.kind());
            set.insert(&a);
            assert!(set.contains(&a), "{} remembers inserts", set.kind());
            assert!(!set.contains(&b), "{} distinguishes states", set.kind());
            set.insert(&b);
            assert_eq!(set.len(), 2, "{} counts inserts", set.kind());
            assert!(set.approx_bytes() > 0);
        }
    }

    #[test]
    fn exact_backend_reports_zero_omission() {
        let (a, _) = two_states();
        let mut set = ExactVisited::new(128);
        set.insert(&Rc::new(a));
        assert_eq!(set.omission_probability(), 0.0);
        assert!(!set.kind().is_lossy());
    }

    #[test]
    fn lossy_omission_probabilities_are_small_but_positive() {
        let (a, b) = two_states();
        let mut compact = CompactVisited::new();
        compact.insert(&Rc::new(a.clone()));
        let p = compact.omission_probability();
        assert!(p > 0.0 && p < 1e-15, "compact omission {p}");

        let mut bitstate = BitstateVisited::new(1024, 3);
        bitstate.insert(&Rc::new(a));
        bitstate.insert(&Rc::new(b));
        let p = bitstate.omission_probability();
        assert!(p > 0.0 && p < 1e-3, "bitstate omission {p}");
        assert_eq!(p, bloom_omission_probability(1024 * 8, 3, 2));
    }

    #[test]
    fn bitstate_arena_is_constant_size() {
        let (a, b) = two_states();
        let mut set = BitstateVisited::new(4096, 2);
        let before = set.approx_bytes();
        set.insert(&Rc::new(a));
        set.insert(&Rc::new(b));
        assert_eq!(set.approx_bytes(), before);
        assert!(before >= 4096);
    }

    #[test]
    fn bloom_formula_matches_known_values() {
        assert_eq!(bloom_omission_probability(1000, 3, 0), 0.0);
        // m = 1000 bits, k = 1, n = 100: 1 − e^(−0.1) ≈ 0.09516.
        let p = bloom_omission_probability(1000, 1, 100);
        assert!((p - 0.095_162_58).abs() < 1e-6, "{p}");
        // Saturated arena: probability approaches 1.
        let p = bloom_omission_probability(64, 3, 1000);
        assert!(p > 0.99, "{p}");
    }
}
