//! Visited-set backends for the safety search: exact, hash-compaction,
//! bitstate (multi-hash Bloom filter), and disk-backed exact.
//!
//! The exact backend is today's behavior: every state is stored, membership
//! is precise, and memory grows linearly with the payload size. The two
//! lossy backends trade completeness for memory, exactly as SPIN's
//! `-DCOLLAPSE`-free hash compaction and `-DBITSTATE` modes do:
//!
//! * **Compact** stores one 64-bit hash per state (~16 bytes each
//!   regardless of payload size). Two distinct states colliding on the full
//!   64-bit hash causes one of them to be treated as already visited — an
//!   *omission*, never a false alarm.
//! * **Bitstate** stores `k` bits per state in a fixed-size bit arena, so
//!   memory is *constant* no matter how many states the search reaches.
//!   Collision probability rises smoothly as the arena fills.
//!
//! Lossy backends can only ever *omit* states (a hash collision makes a new
//! state look visited). Omission can hide a violation, so a completed lossy
//! search weakens `Holds` to `HoldsApprox` with the estimated per-state
//! omission probability; and because the search's bookkeeping (parent
//! links) is hash-indexed too, any violation found under a lossy backend is
//! re-validated by exact replay before being reported.
//!
//! The fourth backend, [`DiskExactVisited`], is *exact but out-of-core*:
//! full state payloads live in hash-partitioned, write-buffered,
//! checksummed run files on a [`Vfs`](crate::vfs::Vfs), with an in-RAM
//! Bloom front so negative probes never touch the disk. Membership is
//! precise, so it never weakens a verdict — it trades I/O for RAM.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::extmem::{decode_run, encode_run, merge_runs, RunEntry};
use crate::rng::{mix64, SplitMix64};
use crate::snapshot::encode_state;
use crate::state::State;
use crate::vfs::{commit_replace, VfsHandle};

/// Seed for the deterministic hash family used by the lossy backends.
/// Derived hashes must be stable across runs so that a resumed search
/// agrees with the snapshot it came from.
const HASH_FAMILY_SEED: u64 = 0xb175_7a7e_5eed_0001;

/// Seed for picking a shard in [`ShardedExactVisited`]. Distinct from the
/// lossy-backend family so shard choice and membership hashing stay
/// independent.
const SHARD_SEED: u64 = 0xb175_7a7e_5eed_0002;

/// Number of shards in the concurrent visited-set variants. A power of two
/// so the shard index is a mask of the shard hash.
const SHARD_COUNT: usize = 64;

/// Seed for the disk-backed backend's partitioning/indexing hash.
/// Distinct from the other seeds so adding the disk tier cannot disturb
/// the lossy family or shard-choice derivations.
const DISK_SEED: u64 = 0xb175_7a7e_5eed_0003;

/// Number of on-disk partitions in [`DiskExactVisited`]. A power of two
/// so the partition index is a mask of the disk hash.
const DISK_PARTITIONS: usize = 16;

/// How many runs a partition accumulates before they are merge-compacted
/// into one.
const DISK_MAX_RUNS: usize = 8;

/// The [`DISK_SEED`] hash of a state — the key used to partition and
/// index the disk-backed visited set (also used by the explorer to spill
/// an in-RAM set in a deterministic order).
pub(crate) fn disk_hash(state: &State) -> u64 {
    state_hash(state, DISK_SEED)
}

/// Seed for picking a shard in [`ShardedNodeSet`]. Next member of the
/// `0xb175_7a7e_5eed_xxxx` family, so liveness-product sharding stays
/// independent of state sharding and the lossy hash family.
const NODE_SHARD_SEED: u64 = 0xb175_7a7e_5eed_0004;

/// A liveness product node as the parallel acceptance-cycle search keys
/// its shared color sets: (system state id, Büchi state, fairness
/// counter). Mirrors `liveness::Node` without creating a module cycle.
pub(crate) type ProductNode = (usize, usize, u32);

/// Concurrent set of liveness *product nodes*, sharded like
/// [`ShardedExactVisited`]: [`SHARD_COUNT`] per-shard mutex-protected
/// hash sets, indexed by a seeded [`mix64`] of the packed node.
///
/// This is the substrate for the CNDFS blue/red sets in
/// `crate::pliveness`: membership is exact (nodes are small fixed-size
/// tuples, so there is nothing to compact), and `insert` doubles as the
/// atomic *test-and-set* the coloring protocol needs — the shard lock
/// makes "was it already there?" and "it is now" one indivisible step.
pub(crate) struct ShardedNodeSet {
    shards: Vec<Mutex<HashSet<ProductNode>>>,
}

impl ShardedNodeSet {
    pub(crate) fn new() -> ShardedNodeSet {
        ShardedNodeSet {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
        }
    }

    fn shard(&self, node: ProductNode) -> &Mutex<HashSet<ProductNode>> {
        let packed = (node.0 as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(((node.1 as u64) << 32) | u64::from(node.2));
        let idx = mix64(packed ^ NODE_SHARD_SEED) as usize & (SHARD_COUNT - 1);
        &self.shards[idx]
    }

    pub(crate) fn contains(&self, node: ProductNode) -> bool {
        self.shard(node)
            .lock()
            .expect("node shard poisoned")
            .contains(&node)
    }

    /// Inserts `node`, returning `true` when it was not present before.
    pub(crate) fn insert(&self, node: ProductNode) -> bool {
        self.shard(node)
            .lock()
            .expect("node shard poisoned")
            .insert(node)
    }

    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("node shard poisoned").len())
            .sum()
    }
}

/// Which visited-set backend the safety search uses.
///
/// Selected via [`crate::SearchConfig::visited`]; the default is
/// [`VisitedKind::Exact`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VisitedKind {
    /// Store every state; precise membership (today's behavior).
    #[default]
    Exact,
    /// Store a 64-bit hash per state (SPIN-style hash compaction).
    Compact,
    /// Store `hashes` bits per state in a fixed arena of `arena_bytes`
    /// bytes (SPIN-style bitstate hashing / Bloom filter).
    Bitstate {
        /// Size of the bit arena in bytes. Rounded up to a whole number of
        /// 64-bit words; must be nonzero.
        arena_bytes: usize,
        /// Number of hash functions (bits set per state), at least 1.
        hashes: u32,
    },
    /// Store every state payload in checksummed on-disk partitions with a
    /// RAM Bloom front; precise membership with bounded RAM
    /// ([`DiskExactVisited`]). Sequential searches only.
    DiskExact,
}

impl VisitedKind {
    /// Default bitstate arena: 64 MiB (≈ 5.4 × 10⁸ bits).
    pub const DEFAULT_BITSTATE_ARENA: usize = 64 << 20;
    /// Default number of bitstate hash functions.
    pub const DEFAULT_BITSTATE_HASHES: u32 = 3;

    /// A bitstate backend with the given arena size and the default number
    /// of hash functions.
    pub fn bitstate(arena_bytes: usize) -> VisitedKind {
        VisitedKind::Bitstate {
            arena_bytes,
            hashes: VisitedKind::DEFAULT_BITSTATE_HASHES,
        }
    }

    /// Whether this backend can omit states (and therefore weakens a
    /// completed search's verdict to approximate).
    pub fn is_lossy(&self) -> bool {
        !matches!(self, VisitedKind::Exact | VisitedKind::DiskExact)
    }
}

impl fmt::Display for VisitedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisitedKind::Exact => write!(f, "exact"),
            VisitedKind::Compact => write!(f, "hash-compact (64-bit)"),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => write!(
                f,
                "bitstate ({} KiB arena, {hashes} hashes)",
                arena_bytes / 1024
            ),
            VisitedKind::DiskExact => write!(f, "disk-exact"),
        }
    }
}

/// A 64-bit content hash of a state under the given seed.
///
/// FNV-1a over every scalar in the state (with container lengths mixed in
/// so variable-length channel queues cannot alias), finished with the
/// SplitMix64 output mixer. Different seeds give effectively independent
/// hash functions, which is what the bitstate family needs.
pub(crate) fn state_hash(state: &State, seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET ^ mix64(seed);
    let mut absorb = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
    for proc in state.procs.iter() {
        absorb(u64::from(proc.loc));
        for &local in proc.locals.iter() {
            absorb(local as u32 as u64);
        }
    }
    for chan in state.chans.iter() {
        absorb(chan.len() as u64);
        for msg in chan.iter() {
            for &field in msg.fields() {
                absorb(field as u32 as u64);
            }
        }
    }
    for &global in state.globals.iter() {
        absorb(global as u32 as u64);
    }
    mix64(h)
}

/// A set of visited states, with backend-specific precision and cost.
///
/// Implemented by [`ExactVisited`], [`CompactVisited`], and
/// [`BitstateVisited`]; the safety search is generic over this trait.
pub trait VisitedSet {
    /// Whether `state` is (believed to be) already visited. Lossy backends
    /// may return `true` for a state never inserted (a collision), never
    /// `false` for one that was.
    fn contains(&self, state: &State) -> bool;

    /// Records `state` as visited.
    fn insert(&mut self, state: &Rc<State>);

    /// Number of states inserted.
    fn len(&self) -> usize;

    /// Whether no state has been inserted yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory held by the backend, in bytes.
    fn approx_bytes(&self) -> usize;

    /// The backend's kind (and parameters).
    fn kind(&self) -> VisitedKind;

    /// Estimated probability that a *new* distinct state would collide with
    /// the current contents and be wrongly treated as visited. Zero for the
    /// exact backend.
    fn omission_probability(&self) -> f64;
}

/// The precise backend: every state payload is stored.
pub struct ExactVisited {
    set: HashSet<Rc<State>>,
    per_state_bytes: usize,
}

impl ExactVisited {
    /// An empty exact set; `per_state_bytes` is the caller's estimate of
    /// the full cost of one stored state (payload plus container overhead).
    pub fn new(per_state_bytes: usize) -> ExactVisited {
        ExactVisited {
            set: HashSet::new(),
            per_state_bytes,
        }
    }

    /// The stored states, in hash-set order (the caller sorts if it needs
    /// determinism). Used by the explorer's mid-run spill transition.
    pub(crate) fn states(&self) -> impl Iterator<Item = &Rc<State>> {
        self.set.iter()
    }
}

impl VisitedSet for ExactVisited {
    fn contains(&self, state: &State) -> bool {
        self.set.contains(state)
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.set.insert(Rc::clone(state));
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn approx_bytes(&self) -> usize {
        self.set.len() * self.per_state_bytes
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Exact
    }

    fn omission_probability(&self) -> f64 {
        0.0
    }
}

/// Hash compaction: one 64-bit hash per state.
pub struct CompactVisited {
    hashes: HashSet<u64>,
    seed: u64,
}

impl CompactVisited {
    /// An empty compacted set.
    pub fn new() -> CompactVisited {
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        CompactVisited {
            hashes: HashSet::new(),
            seed: family.next_u64(),
        }
    }

    /// Rebuilds the set from a snapshot payload.
    pub(crate) fn from_hashes(hashes: impl IntoIterator<Item = u64>) -> CompactVisited {
        let mut set = CompactVisited::new();
        set.hashes.extend(hashes);
        set
    }

    /// The stored hashes, for snapshotting (sorted for determinism).
    pub(crate) fn snapshot_hashes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.hashes.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Default for CompactVisited {
    fn default() -> Self {
        CompactVisited::new()
    }
}

impl VisitedSet for CompactVisited {
    fn contains(&self, state: &State) -> bool {
        self.hashes.contains(&state_hash(state, self.seed))
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.hashes.insert(state_hash(state, self.seed));
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn approx_bytes(&self) -> usize {
        // 8 bytes of hash plus ~8 bytes of HashSet overhead per entry.
        self.hashes.len() * 16
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Compact
    }

    fn omission_probability(&self) -> f64 {
        // A new state collides if its 64-bit hash equals any of the n
        // stored ones: p ≈ n / 2^64.
        self.hashes.len() as f64 / 2f64.powi(64)
    }
}

/// Bitstate hashing: `k` bits per state in a fixed arena (Bloom filter).
pub struct BitstateVisited {
    arena: Vec<u64>,
    bits: u64,
    hashes: u32,
    inserted: usize,
    arena_bytes: usize,
    seed1: u64,
    seed2: u64,
}

impl BitstateVisited {
    /// An empty arena of (at least) `arena_bytes` bytes using `hashes` hash
    /// functions per state. The hash family is seeded from the workspace's
    /// [`SplitMix64`] so it is stable across checkpoint/resume.
    pub fn new(arena_bytes: usize, hashes: u32) -> BitstateVisited {
        let arena_bytes = arena_bytes.max(8);
        let hashes = hashes.max(1);
        let words = arena_bytes.div_ceil(8);
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        // Burn the compact backend's seed so the two backends use
        // independent hash functions.
        let _compact_seed = family.next_u64();
        BitstateVisited {
            arena: vec![0u64; words],
            bits: (words as u64) * 64,
            hashes,
            inserted: 0,
            arena_bytes,
            seed1: family.next_u64(),
            seed2: family.next_u64(),
        }
    }

    /// Rebuilds the arena from a snapshot payload.
    pub(crate) fn from_arena(
        arena_bytes: usize,
        hashes: u32,
        arena: Vec<u64>,
        inserted: usize,
    ) -> BitstateVisited {
        let mut set = BitstateVisited::new(arena_bytes, hashes);
        debug_assert_eq!(set.arena.len(), arena.len());
        set.arena = arena;
        set.inserted = inserted;
        set
    }

    /// The arena words and insert count, for snapshotting.
    pub(crate) fn snapshot_arena(&self) -> (&[u64], usize) {
        (&self.arena, self.inserted)
    }

    /// The `k` bit indices for a state (double hashing: `h1 + i·h2`).
    fn bit_indices(&self, state: &State) -> impl Iterator<Item = u64> + use<> {
        let h1 = state_hash(state, self.seed1);
        let h2 = state_hash(state, self.seed2) | 1; // odd: full period
        let bits = self.bits;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % bits)
    }
}

impl VisitedSet for BitstateVisited {
    fn contains(&self, state: &State) -> bool {
        self.bit_indices(state)
            .all(|bit| self.arena[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    fn insert(&mut self, state: &Rc<State>) {
        let mut fresh = false;
        for bit in self.bit_indices(state).collect::<Vec<_>>() {
            let word = &mut self.arena[(bit / 64) as usize];
            let mask = 1u64 << (bit % 64);
            fresh |= *word & mask == 0;
            *word |= mask;
        }
        if fresh {
            self.inserted += 1;
        }
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn approx_bytes(&self) -> usize {
        self.arena.len() * 8
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Bitstate {
            arena_bytes: self.arena_bytes,
            hashes: self.hashes,
        }
    }

    fn omission_probability(&self) -> f64 {
        bloom_omission_probability(self.bits, self.hashes, self.inserted)
    }
}

/// The standard Bloom-filter false-positive estimate for `m` bits, `k`
/// hash functions, and `n` inserted elements: `(1 − e^(−k·n/m))^k`.
///
/// This is the probability that a new distinct state maps onto `k` bits
/// that are all already set — i.e. the chance it is wrongly skipped.
pub fn bloom_omission_probability(m_bits: u64, k_hashes: u32, n_inserted: usize) -> f64 {
    if n_inserted == 0 {
        return 0.0;
    }
    let m = m_bits as f64;
    let k = f64::from(k_hashes);
    let n = n_inserted as f64;
    (1.0 - (-k * n / m).exp()).powf(k)
}

/// The exact backend, out-of-core: full state payloads in checksummed
/// `PNPRUN01` partitions on a [`Vfs`](crate::vfs::Vfs), fronted in RAM by
/// a Bloom filter (negative probes are free), per-partition write
/// buffers, and a sorted 8-byte-per-state hash index over each run.
///
/// Membership is *precise*: the disk stores full payloads, so a hash
/// collision costs an extra payload comparison, never an omission. RAM
/// stays bounded by the Bloom arena + write buffers + run indexes — the
/// payloads themselves (the dominant cost of [`ExactVisited`]) live on
/// disk. Every run commits through
/// [`commit_replace`](crate::vfs::commit_replace), so a crash can never
/// leave a torn run behind.
///
/// The [`VisitedSet`] trait has no fallible methods, so I/O failures are
/// parked in a pending slot: `contains` conservatively answers "new"
/// (re-expansion is sound for an exact backend) and the explorer drains
/// the slot via [`DiskExactVisited::take_error`] at its loop head and
/// degrades gracefully (ENOSPC trips the memory budget; anything else
/// aborts the attempt as transient).
pub struct DiskExactVisited {
    vfs: VfsHandle,
    dir: PathBuf,
    bloom: BitstateVisited,
    parts: Vec<DiskPartition>,
    buf_cap: usize,
    len: usize,
    spilled_states: usize,
    spill_bytes: usize,
    merge_passes: usize,
    pending: RefCell<Option<io::Error>>,
    cache: RefCell<Option<(PathBuf, Vec<RunEntry>)>>,
}

#[derive(Default)]
struct DiskPartition {
    /// Write buffer: disk hash → the payloads of buffered states with
    /// that hash (almost always one).
    buf: HashMap<u64, Vec<Vec<u8>>>,
    buf_bytes: usize,
    runs: Vec<DiskRun>,
    next_run: u64,
}

struct DiskRun {
    seq: u64,
    /// Sorted disk hashes of the run's entries: the in-RAM index that
    /// decides (by binary search) whether a probe must read the file.
    hashes: Vec<u64>,
}

impl DiskExactVisited {
    /// Default per-partition write-buffer capacity (bytes).
    pub const DEFAULT_BUF_CAP: usize = 256 << 10;
    /// Default Bloom-front arena size (bytes).
    pub const DEFAULT_BLOOM_BYTES: usize = 4 << 20;

    /// An empty disk-backed set storing runs under `dir` (created if
    /// missing; stale run files from a previous search are wiped).
    /// `buf_cap` bounds each partition's write buffer and `bloom_bytes`
    /// sizes the Bloom front.
    ///
    /// # Errors
    ///
    /// Returns the error when the directory cannot be prepared.
    pub fn new(
        vfs: VfsHandle,
        dir: impl Into<PathBuf>,
        buf_cap: usize,
        bloom_bytes: usize,
    ) -> io::Result<DiskExactVisited> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        for path in vfs.list(&dir)? {
            if path.extension().is_some_and(|e| e == "pnprun") {
                vfs.remove(&path)?;
            }
        }
        Ok(DiskExactVisited {
            vfs,
            dir,
            bloom: BitstateVisited::new(bloom_bytes, 3),
            parts: (0..DISK_PARTITIONS)
                .map(|_| DiskPartition::default())
                .collect(),
            buf_cap: buf_cap.max(1),
            len: 0,
            spilled_states: 0,
            spill_bytes: 0,
            merge_passes: 0,
            pending: RefCell::new(None),
            cache: RefCell::new(None),
        })
    }

    /// States written to run files so far (cumulative, counting rewrites
    /// by compaction once — see [`DiskExactVisited::merge_passes`]).
    pub fn spilled_states(&self) -> usize {
        self.spilled_states
    }

    /// Bytes written to run files so far (cumulative, including
    /// compaction rewrites).
    pub fn spill_bytes(&self) -> usize {
        self.spill_bytes
    }

    /// Merge-compaction passes performed so far.
    pub fn merge_passes(&self) -> usize {
        self.merge_passes
    }

    /// Zeroes the spill counters. Used after a resume rebuild, where the
    /// snapshot already carries the uninterrupted totals.
    pub(crate) fn reset_spill_counters(&mut self) {
        self.spilled_states = 0;
        self.spill_bytes = 0;
        self.merge_passes = 0;
    }

    /// Takes the first I/O error recorded by an infallible trait method
    /// since the last call. The set stays consistent after an error (a
    /// failed flush keeps its states buffered), so the caller chooses
    /// between degrading and aborting.
    pub(crate) fn take_error(&mut self) -> Option<io::Error> {
        self.pending.get_mut().take()
    }

    fn record_error(&self, error: io::Error) {
        let mut pending = self.pending.borrow_mut();
        if pending.is_none() {
            *pending = Some(error);
        }
    }

    fn run_path(&self, part: usize, seq: u64) -> PathBuf {
        self.dir.join(format!("part{part:02}-run{seq:08}.pnprun"))
    }

    /// Whether `payload` is in the run file, consulting (and refilling)
    /// the single-run read cache.
    fn probe_run(&self, part: usize, seq: u64, hash: u64, payload: &[u8]) -> io::Result<bool> {
        let path = self.run_path(part, seq);
        let mut cache = self.cache.borrow_mut();
        let cached = matches!(cache.as_ref(), Some((p, _)) if *p == path);
        if !cached {
            let entries = decode_run(&self.vfs.read(&path)?)?;
            *cache = Some((path, entries));
        }
        let entries = &cache.as_ref().expect("cache just filled").1;
        let start = entries.partition_point(|e| e.key < hash);
        Ok(entries[start..]
            .iter()
            .take_while(|e| e.key == hash)
            .any(|e| e.payload == payload))
    }

    /// Writes partition `part`'s buffer out as a new sorted run. On error
    /// the buffer is untouched, so no state is lost.
    fn flush_partition(&mut self, part: usize) -> io::Result<()> {
        if self.parts[part].buf.is_empty() {
            return Ok(());
        }
        let mut entries: Vec<RunEntry> = self.parts[part]
            .buf
            .iter()
            .flat_map(|(&key, payloads)| {
                payloads.iter().map(move |payload| RunEntry {
                    key,
                    payload: payload.clone(),
                })
            })
            .collect();
        // Hash-map iteration order is arbitrary; sorting makes the run
        // bytes (and thus the whole disk-op sequence) deterministic.
        entries.sort_unstable();
        let bytes = encode_run(&entries);
        let seq = self.parts[part].next_run;
        commit_replace(self.vfs.as_ref(), &self.run_path(part, seq), &bytes)?;
        let slot = &mut self.parts[part];
        slot.runs.push(DiskRun {
            seq,
            hashes: entries.iter().map(|e| e.key).collect(),
        });
        slot.next_run = seq + 1;
        slot.buf.clear();
        slot.buf_bytes = 0;
        self.spilled_states += entries.len();
        self.spill_bytes += bytes.len();
        if self.parts[part].runs.len() >= DISK_MAX_RUNS {
            self.compact(part)?;
        }
        Ok(())
    }

    /// Merge-compacts all of partition `part`'s runs into one. On error
    /// the old runs (files and metadata) remain authoritative.
    fn compact(&mut self, part: usize) -> io::Result<()> {
        let seqs: Vec<u64> = self.parts[part].runs.iter().map(|r| r.seq).collect();
        let mut runs = Vec::with_capacity(seqs.len());
        for &seq in &seqs {
            runs.push(decode_run(&self.vfs.read(&self.run_path(part, seq))?)?);
        }
        let merged = merge_runs(runs);
        let bytes = encode_run(&merged);
        let seq = self.parts[part].next_run;
        commit_replace(self.vfs.as_ref(), &self.run_path(part, seq), &bytes)?;
        *self.cache.get_mut() = None;
        for &old in &seqs {
            let _ = self.vfs.remove(&self.run_path(part, old));
        }
        let slot = &mut self.parts[part];
        slot.runs = vec![DiskRun {
            seq,
            hashes: merged.iter().map(|e| e.key).collect(),
        }];
        slot.next_run = seq + 1;
        self.merge_passes += 1;
        self.spill_bytes += bytes.len();
        Ok(())
    }
}

impl VisitedSet for DiskExactVisited {
    fn contains(&self, state: &State) -> bool {
        if !self.bloom.contains(state) {
            return false;
        }
        let hash = disk_hash(state);
        let part = hash as usize & (DISK_PARTITIONS - 1);
        let payload = encode_state(state);
        if let Some(candidates) = self.parts[part].buf.get(&hash) {
            if candidates.contains(&payload) {
                return true;
            }
        }
        for run in self.parts[part].runs.iter().rev() {
            if run.hashes.binary_search(&hash).is_err() {
                continue;
            }
            match self.probe_run(part, run.seq, hash, &payload) {
                Ok(true) => return true,
                Ok(false) => {}
                Err(e) => {
                    // Conservative: treat the state as new. Re-expansion
                    // is sound for an exact backend, and the explorer
                    // picks the error up before its next flush.
                    self.record_error(e);
                    return false;
                }
            }
        }
        false
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.bloom.insert(state);
        let hash = disk_hash(state);
        let part = hash as usize & (DISK_PARTITIONS - 1);
        let payload = encode_state(state);
        let slot = &mut self.parts[part];
        slot.buf_bytes += payload.len() + 24;
        slot.buf.entry(hash).or_default().push(payload);
        self.len += 1;
        if self.parts[part].buf_bytes >= self.buf_cap {
            if let Err(e) = self.flush_partition(part) {
                self.record_error(e);
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn approx_bytes(&self) -> usize {
        // Only what actually sits in RAM: the Bloom arena, the write
        // buffers, and the per-run hash indexes. Spilled payloads are
        // the disk's problem (tracked by `spill_bytes`).
        self.bloom.approx_bytes()
            + self
                .parts
                .iter()
                .map(|p| {
                    p.buf_bytes
                        + p.runs
                            .iter()
                            .map(|r| r.hashes.len() * 8 + 48)
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::DiskExact
    }

    fn omission_probability(&self) -> f64 {
        0.0
    }
}

/// The concrete backend held by the explorer (avoids `dyn` so snapshots can
/// extract backend payloads without downcasting).
pub(crate) enum AnyVisited {
    Exact(ExactVisited),
    Compact(CompactVisited),
    Bitstate(BitstateVisited),
    Disk(DiskExactVisited),
}

impl AnyVisited {
    pub(crate) fn new(kind: VisitedKind, per_state_bytes: usize) -> AnyVisited {
        match kind {
            VisitedKind::Exact => AnyVisited::Exact(ExactVisited::new(per_state_bytes)),
            VisitedKind::Compact => AnyVisited::Compact(CompactVisited::new()),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => AnyVisited::Bitstate(BitstateVisited::new(arena_bytes, hashes)),
            VisitedKind::DiskExact => {
                unreachable!("the disk backend is constructed by the explorer with its storage")
            }
        }
    }

    fn inner(&self) -> &dyn VisitedSet {
        match self {
            AnyVisited::Exact(s) => s,
            AnyVisited::Compact(s) => s,
            AnyVisited::Bitstate(s) => s,
            AnyVisited::Disk(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn VisitedSet {
        match self {
            AnyVisited::Exact(s) => s,
            AnyVisited::Compact(s) => s,
            AnyVisited::Bitstate(s) => s,
            AnyVisited::Disk(s) => s,
        }
    }
}

impl VisitedSet for AnyVisited {
    fn contains(&self, state: &State) -> bool {
        self.inner().contains(state)
    }

    fn insert(&mut self, state: &Rc<State>) {
        self.inner_mut().insert(state);
    }

    fn len(&self) -> usize {
        self.inner().len()
    }

    fn approx_bytes(&self) -> usize {
        self.inner().approx_bytes()
    }

    fn kind(&self) -> VisitedKind {
        self.inner().kind()
    }

    fn omission_probability(&self) -> f64 {
        self.inner().omission_probability()
    }
}

/// A shared counter of interned states with a hard cap, used by the
/// parallel search so `max_states` is charged exactly once per *new*
/// state across all workers — the same counting point as the sequential
/// kernel (duplicates never touch the budget).
#[derive(Debug)]
pub struct StateBudget {
    interned: AtomicUsize,
    max_states: usize,
}

impl StateBudget {
    /// A budget that already accounts for `already_interned` states (the
    /// initial state, or everything restored from a snapshot) and trips
    /// once `max_states` is reached.
    pub fn new(already_interned: usize, max_states: usize) -> StateBudget {
        StateBudget {
            interned: AtomicUsize::new(already_interned),
            max_states,
        }
    }

    /// A budget that never trips (used when rebuilding a visited set from
    /// a snapshot, where every state was already paid for).
    pub fn unlimited() -> StateBudget {
        StateBudget::new(0, usize::MAX)
    }

    /// Reserves one state slot; `false` when the cap is already reached.
    pub fn try_reserve(&self) -> bool {
        self.interned
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.max_states).then_some(n + 1)
            })
            .is_ok()
    }

    /// Returns a slot reserved by [`StateBudget::try_reserve`] that turned
    /// out not to be needed (the state lost an insert race).
    pub fn release(&self) {
        self.interned.fetch_sub(1, Ordering::SeqCst);
    }

    /// States currently charged against the budget.
    pub fn reserved(&self) -> usize {
        self.interned.load(Ordering::SeqCst)
    }
}

/// What [`SharedVisitedSet::insert_if_new`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedInsert {
    /// The state was new; one budget slot was consumed and the state is
    /// now a member.
    Inserted,
    /// The state was already a member (or, for a lossy backend, collided
    /// with one); the budget is untouched.
    Duplicate,
    /// The state was new but the budget cap is reached; nothing was
    /// inserted (except possibly bits in the bitstate arena — see
    /// [`ShardedBitstateVisited`]).
    BudgetExhausted,
}

/// A visited set shared by concurrent search workers.
///
/// The mirror of [`VisitedSet`] for the parallel kernel: membership and
/// insertion take `&self` and are safe to call from many threads. The
/// budget is threaded through [`SharedVisitedSet::insert_if_new`] so the
/// *"is it new?"* test and the budget charge happen atomically — a
/// duplicate racing with a distinct new state can never trip `max_states`
/// spuriously.
pub trait SharedVisitedSet: Sync {
    /// Whether `state` is (believed to be) already visited. Lossy backends
    /// may return `true` for a state never inserted (a collision), never
    /// `false` for one that was.
    fn contains(&self, state: &State) -> bool;

    /// Inserts `state` if absent, charging one slot of `budget` for a
    /// genuinely new state. See [`SharedInsert`].
    fn insert_if_new(&self, state: &Arc<State>, budget: &StateBudget) -> SharedInsert;

    /// Number of states inserted.
    fn len(&self) -> usize;

    /// Whether no state has been inserted yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory held by the backend, in bytes.
    fn approx_bytes(&self) -> usize;

    /// The backend's kind (and parameters).
    fn kind(&self) -> VisitedKind;

    /// Estimated probability that a new distinct state would be wrongly
    /// treated as visited. Zero for the exact backend.
    fn omission_probability(&self) -> f64;
}

/// Concurrent variant of [`ExactVisited`]: full state payloads sharded by
/// hash across [`SHARD_COUNT`] per-shard [`Mutex`]-protected hash sets.
///
/// Membership is precise, exactly like the sequential backend; the shard
/// lock makes the *contains → charge budget → insert* sequence atomic per
/// state, so parallel searches intern exactly the set of states a
/// sequential search would.
pub struct ShardedExactVisited {
    shards: Vec<Mutex<HashSet<Arc<State>>>>,
    per_state_bytes: usize,
}

impl ShardedExactVisited {
    /// An empty sharded exact set; `per_state_bytes` as in
    /// [`ExactVisited::new`].
    pub fn new(per_state_bytes: usize) -> ShardedExactVisited {
        ShardedExactVisited {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            per_state_bytes,
        }
    }

    fn shard(&self, state: &State) -> &Mutex<HashSet<Arc<State>>> {
        let idx = state_hash(state, SHARD_SEED) as usize & (SHARD_COUNT - 1);
        &self.shards[idx]
    }
}

impl SharedVisitedSet for ShardedExactVisited {
    fn contains(&self, state: &State) -> bool {
        self.shard(state)
            .lock()
            .expect("shard poisoned")
            .contains(state)
    }

    fn insert_if_new(&self, state: &Arc<State>, budget: &StateBudget) -> SharedInsert {
        let mut shard = self.shard(state).lock().expect("shard poisoned");
        if shard.contains(&**state) {
            return SharedInsert::Duplicate;
        }
        if !budget.try_reserve() {
            return SharedInsert::BudgetExhausted;
        }
        shard.insert(Arc::clone(state));
        SharedInsert::Inserted
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    fn approx_bytes(&self) -> usize {
        self.len() * self.per_state_bytes
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Exact
    }

    fn omission_probability(&self) -> f64 {
        0.0
    }
}

/// Concurrent variant of [`CompactVisited`]: 64-bit state hashes sharded
/// by their own low bits across per-shard locked sets.
///
/// Uses the *same* hash seed as the sequential compact backend, so a
/// snapshot written by a parallel search restores into a sequential one
/// (and vice versa) with identical membership.
pub struct ShardedCompactVisited {
    shards: Vec<Mutex<HashSet<u64>>>,
    seed: u64,
}

impl ShardedCompactVisited {
    /// An empty sharded compacted set.
    pub fn new() -> ShardedCompactVisited {
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        ShardedCompactVisited {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            seed: family.next_u64(),
        }
    }

    /// Rebuilds the set from a snapshot payload.
    pub(crate) fn from_hashes(hashes: impl IntoIterator<Item = u64>) -> ShardedCompactVisited {
        let set = ShardedCompactVisited::new();
        for h in hashes {
            set.shards[h as usize & (SHARD_COUNT - 1)]
                .lock()
                .expect("shard poisoned")
                .insert(h);
        }
        set
    }

    /// The stored hashes, for snapshotting (sorted for determinism).
    pub(crate) fn snapshot_hashes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .iter()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_unstable();
        v
    }
}

impl Default for ShardedCompactVisited {
    fn default() -> Self {
        ShardedCompactVisited::new()
    }
}

impl SharedVisitedSet for ShardedCompactVisited {
    fn contains(&self, state: &State) -> bool {
        let h = state_hash(state, self.seed);
        self.shards[h as usize & (SHARD_COUNT - 1)]
            .lock()
            .expect("shard poisoned")
            .contains(&h)
    }

    fn insert_if_new(&self, state: &Arc<State>, budget: &StateBudget) -> SharedInsert {
        let h = state_hash(state, self.seed);
        let mut shard = self.shards[h as usize & (SHARD_COUNT - 1)]
            .lock()
            .expect("shard poisoned");
        if shard.contains(&h) {
            return SharedInsert::Duplicate;
        }
        if !budget.try_reserve() {
            return SharedInsert::BudgetExhausted;
        }
        shard.insert(h);
        SharedInsert::Inserted
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    fn approx_bytes(&self) -> usize {
        self.len() * 16
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Compact
    }

    fn omission_probability(&self) -> f64 {
        self.len() as f64 / 2f64.powi(64)
    }
}

/// Concurrent variant of [`BitstateVisited`]: the same fixed bit arena,
/// but made of [`AtomicU64`] words written with a compare-free `fetch_or`.
///
/// Setting bits with atomic OR is commutative, so a parallel run produces
/// the *same final arena* as a sequential run over the same states (the
/// hash seeds are shared), and the Bloom-filter omission estimate applies
/// unchanged. Two caveats, both conservative:
///
/// * two workers racing to insert the *same* new state can each observe a
///   fresh bit and both report [`SharedInsert::Inserted`] — the state is
///   then expanded twice (sound, terminating: its successors deduplicate)
///   and `len()` slightly over-counts, which only *raises* the reported
///   omission probability;
/// * a [`SharedInsert::BudgetExhausted`] insert may leave some bits set,
///   which can only cause extra omissions, never a fabricated violation.
pub struct ShardedBitstateVisited {
    arena: Vec<AtomicU64>,
    bits: u64,
    hashes: u32,
    inserted: AtomicUsize,
    arena_bytes: usize,
    seed1: u64,
    seed2: u64,
}

impl ShardedBitstateVisited {
    /// An empty atomic arena; parameters as in [`BitstateVisited::new`],
    /// and the same hash seeds so snapshots interoperate.
    pub fn new(arena_bytes: usize, hashes: u32) -> ShardedBitstateVisited {
        let arena_bytes = arena_bytes.max(8);
        let hashes = hashes.max(1);
        let words = arena_bytes.div_ceil(8);
        let mut family = SplitMix64::seed_from_u64(HASH_FAMILY_SEED);
        let _compact_seed = family.next_u64();
        ShardedBitstateVisited {
            arena: (0..words).map(|_| AtomicU64::new(0)).collect(),
            bits: (words as u64) * 64,
            hashes,
            inserted: AtomicUsize::new(0),
            arena_bytes,
            seed1: family.next_u64(),
            seed2: family.next_u64(),
        }
    }

    /// Rebuilds the arena from a snapshot payload.
    pub(crate) fn from_arena(
        arena_bytes: usize,
        hashes: u32,
        arena: Vec<u64>,
        inserted: usize,
    ) -> ShardedBitstateVisited {
        let set = ShardedBitstateVisited::new(arena_bytes, hashes);
        debug_assert_eq!(set.arena.len(), arena.len());
        for (word, value) in set.arena.iter().zip(arena) {
            word.store(value, Ordering::Relaxed);
        }
        set.inserted.store(inserted, Ordering::Relaxed);
        set
    }

    /// The arena words and insert count, for snapshotting.
    pub(crate) fn snapshot_arena(&self) -> (Vec<u64>, usize) {
        (
            self.arena
                .iter()
                .map(|w| w.load(Ordering::SeqCst))
                .collect(),
            self.inserted.load(Ordering::SeqCst),
        )
    }

    fn bit_indices(&self, state: &State) -> impl Iterator<Item = u64> + use<> {
        let h1 = state_hash(state, self.seed1);
        let h2 = state_hash(state, self.seed2) | 1;
        let bits = self.bits;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % bits)
    }
}

impl SharedVisitedSet for ShardedBitstateVisited {
    fn contains(&self, state: &State) -> bool {
        self.bit_indices(state).all(|bit| {
            self.arena[(bit / 64) as usize].load(Ordering::SeqCst) & (1 << (bit % 64)) != 0
        })
    }

    fn insert_if_new(&self, state: &Arc<State>, budget: &StateBudget) -> SharedInsert {
        if self.contains(state) {
            return SharedInsert::Duplicate;
        }
        if !budget.try_reserve() {
            return SharedInsert::BudgetExhausted;
        }
        let mut fresh = false;
        for bit in self.bit_indices(state).collect::<Vec<_>>() {
            let mask = 1u64 << (bit % 64);
            let prev = self.arena[(bit / 64) as usize].fetch_or(mask, Ordering::SeqCst);
            fresh |= prev & mask == 0;
        }
        if fresh {
            self.inserted.fetch_add(1, Ordering::SeqCst);
            SharedInsert::Inserted
        } else {
            budget.release();
            SharedInsert::Duplicate
        }
    }

    fn len(&self) -> usize {
        self.inserted.load(Ordering::SeqCst)
    }

    fn approx_bytes(&self) -> usize {
        self.arena.len() * 8
    }

    fn kind(&self) -> VisitedKind {
        VisitedKind::Bitstate {
            arena_bytes: self.arena_bytes,
            hashes: self.hashes,
        }
    }

    fn omission_probability(&self) -> f64 {
        bloom_omission_probability(self.bits, self.hashes, self.len())
    }
}

/// The concrete shared backend held by the parallel explorer (the mirror
/// of [`AnyVisited`]).
pub(crate) enum AnySharedVisited {
    Exact(ShardedExactVisited),
    Compact(ShardedCompactVisited),
    Bitstate(ShardedBitstateVisited),
}

impl AnySharedVisited {
    pub(crate) fn new(kind: VisitedKind, per_state_bytes: usize) -> AnySharedVisited {
        match kind {
            VisitedKind::Exact => {
                AnySharedVisited::Exact(ShardedExactVisited::new(per_state_bytes))
            }
            VisitedKind::Compact => AnySharedVisited::Compact(ShardedCompactVisited::new()),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => AnySharedVisited::Bitstate(ShardedBitstateVisited::new(arena_bytes, hashes)),
            // Defensive: the explorer routes disk-backed searches to the
            // sequential kernel, so this arm only serves a caller that
            // bypasses that gate — exact membership keeps it sound.
            VisitedKind::DiskExact => {
                AnySharedVisited::Exact(ShardedExactVisited::new(per_state_bytes))
            }
        }
    }

    /// Inserts a state already paid for (the initial state, or states
    /// replayed from a snapshot).
    pub(crate) fn insert_unbudgeted(&self, state: &Arc<State>) {
        let unlimited = StateBudget::unlimited();
        self.insert_if_new(state, &unlimited);
    }

    fn inner(&self) -> &dyn SharedVisitedSet {
        match self {
            AnySharedVisited::Exact(s) => s,
            AnySharedVisited::Compact(s) => s,
            AnySharedVisited::Bitstate(s) => s,
        }
    }
}

impl SharedVisitedSet for AnySharedVisited {
    fn contains(&self, state: &State) -> bool {
        self.inner().contains(state)
    }

    fn insert_if_new(&self, state: &Arc<State>, budget: &StateBudget) -> SharedInsert {
        self.inner().insert_if_new(state, budget)
    }

    fn len(&self) -> usize {
        self.inner().len()
    }

    fn approx_bytes(&self) -> usize {
        self.inner().approx_bytes()
    }

    fn kind(&self) -> VisitedKind {
        self.inner().kind()
    }

    fn omission_probability(&self) -> f64 {
        self.inner().omission_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};
    use crate::state::State;
    use crate::vfs::Vfs;

    fn two_states() -> (State, State) {
        let chain = state_chain(2);
        let mut it = chain.into_iter();
        (it.next().unwrap(), it.next().unwrap())
    }

    /// The first `n` states of an unbounded counter program (all
    /// pairwise distinct).
    fn state_chain(n: usize) -> Vec<State> {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("g", 0);
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::always(),
            Action::assign(g, crate::expression::expr::global(g) + 1.into()),
            "bump",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let mut states = vec![State::initial(&program)];
        while states.len() < n {
            let last = states.last().unwrap();
            let step = crate::state::enabled_steps(&program, last).unwrap()[0];
            states.push(
                crate::state::apply_step(&program, last, step)
                    .unwrap()
                    .state,
            );
        }
        states
    }

    #[test]
    fn state_hash_distinguishes_states_and_seeds() {
        let (a, b) = two_states();
        assert_ne!(state_hash(&a, 1), state_hash(&b, 1));
        assert_ne!(state_hash(&a, 1), state_hash(&a, 2));
        assert_eq!(state_hash(&a, 7), state_hash(&a, 7));
    }

    #[test]
    fn every_backend_remembers_inserted_states() {
        let (a, b) = two_states();
        let (a, b) = (Rc::new(a), Rc::new(b));
        let backends: Vec<Box<dyn VisitedSet>> = vec![
            Box::new(ExactVisited::new(128)),
            Box::new(CompactVisited::new()),
            Box::new(BitstateVisited::new(1024, 3)),
            Box::new(
                DiskExactVisited::new(
                    Arc::new(crate::vfs::SimFs::new(21)),
                    std::path::Path::new("/visited"),
                    1 << 20,
                    1024,
                )
                .unwrap(),
            ),
        ];
        for mut set in backends {
            assert!(!set.contains(&a), "{} starts empty", set.kind());
            set.insert(&a);
            assert!(set.contains(&a), "{} remembers inserts", set.kind());
            assert!(!set.contains(&b), "{} distinguishes states", set.kind());
            set.insert(&b);
            assert_eq!(set.len(), 2, "{} counts inserts", set.kind());
            assert!(set.approx_bytes() > 0);
        }
    }

    #[test]
    fn exact_backend_reports_zero_omission() {
        let (a, _) = two_states();
        let mut set = ExactVisited::new(128);
        set.insert(&Rc::new(a));
        assert_eq!(set.omission_probability(), 0.0);
        assert!(!set.kind().is_lossy());
    }

    #[test]
    fn lossy_omission_probabilities_are_small_but_positive() {
        let (a, b) = two_states();
        let mut compact = CompactVisited::new();
        compact.insert(&Rc::new(a.clone()));
        let p = compact.omission_probability();
        assert!(p > 0.0 && p < 1e-15, "compact omission {p}");

        let mut bitstate = BitstateVisited::new(1024, 3);
        bitstate.insert(&Rc::new(a));
        bitstate.insert(&Rc::new(b));
        let p = bitstate.omission_probability();
        assert!(p > 0.0 && p < 1e-3, "bitstate omission {p}");
        assert_eq!(p, bloom_omission_probability(1024 * 8, 3, 2));
    }

    #[test]
    fn bitstate_arena_is_constant_size() {
        let (a, b) = two_states();
        let mut set = BitstateVisited::new(4096, 2);
        let before = set.approx_bytes();
        set.insert(&Rc::new(a));
        set.insert(&Rc::new(b));
        assert_eq!(set.approx_bytes(), before);
        assert!(before >= 4096);
    }

    #[test]
    fn sharded_backends_agree_with_sequential_membership() {
        let (a, b) = two_states();
        let budget = StateBudget::new(0, usize::MAX);
        let shared: Vec<Box<dyn SharedVisitedSet>> = vec![
            Box::new(ShardedExactVisited::new(128)),
            Box::new(ShardedCompactVisited::new()),
            Box::new(ShardedBitstateVisited::new(1024, 3)),
        ];
        for set in shared {
            let (a, b) = (Arc::new(a.clone()), Arc::new(b.clone()));
            assert!(!set.contains(&a), "{} starts empty", set.kind());
            assert_eq!(set.insert_if_new(&a, &budget), SharedInsert::Inserted);
            assert_eq!(set.insert_if_new(&a, &budget), SharedInsert::Duplicate);
            assert!(set.contains(&a));
            assert!(!set.contains(&b), "{} distinguishes states", set.kind());
            assert_eq!(set.insert_if_new(&b, &budget), SharedInsert::Inserted);
            assert_eq!(set.len(), 2, "{} counts inserts", set.kind());
        }
    }

    #[test]
    fn sharded_budget_charges_only_new_states() {
        let (a, b) = two_states();
        let (a, b) = (Arc::new(a), Arc::new(b));
        let set = ShardedExactVisited::new(128);
        let budget = StateBudget::new(0, 1);
        assert_eq!(set.insert_if_new(&a, &budget), SharedInsert::Inserted);
        // A duplicate never touches the budget, even at the cap.
        assert_eq!(set.insert_if_new(&a, &budget), SharedInsert::Duplicate);
        assert_eq!(budget.reserved(), 1);
        // A genuinely new state past the cap trips.
        assert_eq!(
            set.insert_if_new(&b, &budget),
            SharedInsert::BudgetExhausted
        );
        assert!(!set.contains(&b), "a budget-refused state is not inserted");
    }

    #[test]
    fn sharded_compact_hashes_match_sequential_backend() {
        let (a, b) = two_states();
        let (a, b) = (Arc::new(a), Arc::new(b));
        let mut seq = CompactVisited::new();
        seq.insert(&Rc::new((*a).clone()));
        seq.insert(&Rc::new((*b).clone()));
        let shared = ShardedCompactVisited::new();
        let budget = StateBudget::unlimited();
        shared.insert_if_new(&a, &budget);
        shared.insert_if_new(&b, &budget);
        assert_eq!(seq.snapshot_hashes(), shared.snapshot_hashes());
    }

    #[test]
    fn sharded_bitstate_arena_matches_sequential_backend() {
        let (a, b) = two_states();
        let (a, b) = (Arc::new(a), Arc::new(b));
        let mut seq = BitstateVisited::new(1024, 3);
        seq.insert(&Rc::new((*a).clone()));
        seq.insert(&Rc::new((*b).clone()));
        let shared = ShardedBitstateVisited::new(1024, 3);
        let budget = StateBudget::unlimited();
        shared.insert_if_new(&a, &budget);
        shared.insert_if_new(&b, &budget);
        let (seq_arena, seq_inserted) = seq.snapshot_arena();
        let (shared_arena, shared_inserted) = shared.snapshot_arena();
        assert_eq!(seq_arena, shared_arena.as_slice());
        assert_eq!(seq_inserted, shared_inserted);
    }

    #[test]
    fn disk_exact_spills_compacts_and_stays_precise() {
        let fs = Arc::new(crate::vfs::SimFs::new(22));
        // 1-byte buffer cap: every insert flushes a single-entry run, so
        // 200 states across 16 partitions force several compactions.
        let mut set =
            DiskExactVisited::new(fs.clone(), std::path::Path::new("/visited"), 1, 4096).unwrap();
        let chain = state_chain(201);
        for state in &chain[..200] {
            assert!(!set.contains(state), "state not yet inserted");
            set.insert(&Rc::new(state.clone()));
        }
        for state in &chain[..200] {
            assert!(set.contains(state), "spilled state must stay a member");
        }
        assert!(!set.contains(&chain[200]), "fresh state must look new");
        assert_eq!(set.len(), 200);
        assert!(set.spilled_states() >= 200, "{}", set.spilled_states());
        assert!(set.spill_bytes() > 0);
        assert!(set.merge_passes() >= 1, "compaction never ran");
        assert!(set.take_error().is_none());
        assert_eq!(set.omission_probability(), 0.0);
        assert!(!set.kind().is_lossy());
        // Compaction deletes superseded runs: at most DISK_MAX_RUNS
        // files per partition remain.
        let files = fs.list(std::path::Path::new("/visited")).unwrap();
        assert!(files.len() <= DISK_PARTITIONS * DISK_MAX_RUNS, "{files:?}");
    }

    #[test]
    fn disk_exact_parks_write_errors_and_keeps_states_buffered() {
        let fs = Arc::new(crate::vfs::SimFs::new(23));
        let mut set =
            DiskExactVisited::new(fs.clone(), std::path::Path::new("/visited"), 1, 4096).unwrap();
        fs.set_plan(crate::vfs::FaultPlan {
            enospc_per_mille: 1000,
            ..crate::vfs::FaultPlan::default()
        });
        let (a, b) = two_states();
        set.insert(&Rc::new(a.clone()));
        let err = set.take_error().expect("full disk must surface");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(set.take_error().is_none(), "error is taken once");
        // The failed flush kept the state buffered: membership intact.
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn bloom_formula_matches_known_values() {
        assert_eq!(bloom_omission_probability(1000, 3, 0), 0.0);
        // m = 1000 bits, k = 1, n = 100: 1 − e^(−0.1) ≈ 0.09516.
        let p = bloom_omission_probability(1000, 1, 100);
        assert!((p - 0.095_162_58).abs() < 1e-6, "{p}");
        // Saturated arena: probability approaches 1.
        let p = bloom_omission_probability(64, 3, 1000);
        assert!(p > 0.99, "{p}");
    }
}
