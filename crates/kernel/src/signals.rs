//! Process-termination signals, shared by every PnP binary.
//!
//! `pnp-check` and the `pnp-serve` daemon both need the same behaviour
//! when the operator asks them to stop (Ctrl-C sends SIGINT; service
//! managers send SIGTERM): finish the current unit of work *gracefully*,
//! which above all means flushing a final search snapshot so no coverage
//! is lost. That flush lives in one place — the kernel's search loop,
//! which reacts to a cancelled [`CancelToken`] by cutting a final
//! checkpoint before returning a partial result — so both binaries share
//! it by construction: all this module adds is the signal-to-token
//! plumbing, kept dependency-free (the handler stores into a static
//! atomic; a watcher thread forwards it).
//!
//! * [`cancel_on_termination`] is the one-shot CLI shape: first
//!   SIGINT/SIGTERM cancels the token, the search flushes and reports
//!   inconclusive.
//! * [`watch_termination`] is the daemon shape: the returned
//!   [`TerminationFlag`] is polled by the supervisor's own loop, which
//!   runs its drain (stop admitting, cancel in-flight jobs — each flush
//!   their snapshots through the same kernel path — and persist the
//!   queue).

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::time::Duration;

use crate::explore::CancelToken;

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static TERM_RAISED: AtomicBool = AtomicBool::new(false);
static TERM_SIGNAL: AtomicI32 = AtomicI32::new(0);
static HANDLERS_INSTALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_termination(signum: i32) {
    // Async-signal-safe: two relaxed atomic stores, nothing else.
    TERM_SIGNAL.store(signum, Ordering::Relaxed);
    TERM_RAISED.store(true, Ordering::Relaxed);
}

/// A handle onto the process-wide termination state. Copyable; every
/// copy observes the same underlying flag.
#[derive(Debug, Clone, Copy)]
pub struct TerminationFlag(());

impl TerminationFlag {
    /// Whether SIGINT or SIGTERM has arrived.
    pub fn is_raised(&self) -> bool {
        TERM_RAISED.load(Ordering::Relaxed)
    }

    /// The name of the signal that arrived, if one did.
    pub fn signal_name(&self) -> Option<&'static str> {
        if !self.is_raised() {
            return None;
        }
        match TERM_SIGNAL.load(Ordering::Relaxed) {
            SIGINT => Some("SIGINT"),
            SIGTERM => Some("SIGTERM"),
            _ => Some("signal"),
        }
    }

    #[cfg(test)]
    pub(crate) fn raise_for_test(&self) {
        on_termination(SIGTERM);
    }
}

/// Installs SIGINT and SIGTERM handlers (once; further calls reuse them)
/// and returns the flag they raise. On non-Unix platforms the flag is
/// never raised.
pub fn watch_termination() -> TerminationFlag {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        if !HANDLERS_INSTALLED.swap(true, Ordering::SeqCst) {
            unsafe {
                signal(SIGINT, on_termination);
                signal(SIGTERM, on_termination);
            }
        }
    }
    TerminationFlag(())
}

/// Cancels `token` when the process receives SIGINT or SIGTERM, so a
/// running search stops at its next budget checkpoint and flushes a
/// final snapshot instead of dying mid-write. Returns the flag so the
/// caller can also report *which* signal interrupted it.
pub fn cancel_on_termination(token: CancelToken) -> TerminationFlag {
    let flag = watch_termination();
    std::thread::spawn(move || loop {
        if flag.is_raised() {
            token.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raised_flag_cancels_token_and_names_signal() {
        let token = CancelToken::new();
        let flag = cancel_on_termination(token.clone());
        assert!(flag.signal_name().is_none() || flag.is_raised());
        flag.raise_for_test();
        assert!(flag.is_raised());
        assert_eq!(flag.signal_name(), Some("SIGTERM"));
        for _ in 0..200 {
            if token.is_cancelled() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("token was not cancelled after the flag was raised");
    }
}
