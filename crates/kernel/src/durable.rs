//! Double-buffered, generation-counted durable artifacts.
//!
//! A single tmp+rename file — even with full fsync discipline — has a
//! fatal window for *checkpoints*: once the rename lands, the previous
//! snapshot is gone, so corruption of the one file (or a crash that
//! loses the unsynced rename while a sweep already removed the old tmp)
//! loses all progress. Generations close that window by alternating
//! between two slots:
//!
//! * `<base>.a` / `<base>.b` — each holds one *generation envelope*:
//!   `PNPGEN01` magic, a monotonic generation counter, the payload, and
//!   a trailing FNV/mix64 checksum.
//! * A commit writes the next generation into the slot *not* holding
//!   the newest valid one, through the [`commit_replace`] discipline
//!   (tmp + `sync_file` + rename + `sync_dir`).
//! * Recovery reads both slots and rolls forward to the newest valid
//!   generation. A crash at any point of a commit therefore loses at
//!   most the generation being written — never the previous good one.
//!
//! [`GenStore`] is the store, [`GenSink`] adapts it to the kernel's
//! [`SnapshotSink`] so checkpoint flushes commit generations, and
//! [`load_latest_snapshot`] is the recovery entry point used by
//! `pnp-check --resume` and the `pnp-serve` supervisor.

use std::path::{Path, PathBuf};

use crate::rng::fnv64;
use crate::snapshot::{Snapshot, SnapshotError, SnapshotSink};
use crate::vfs::{commit_replace, tmp_sibling, VfsHandle};

const GEN_MAGIC: &[u8; 8] = b"PNPGEN01";

/// Wraps `payload` in a generation envelope.
pub fn encode_generation(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(GEN_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Unwraps a generation envelope, verifying magic, length, and checksum.
///
/// # Errors
///
/// Returns a description of the first structural problem — wrong magic,
/// truncation, checksum mismatch. Never panics on malformed input.
pub fn decode_generation(bytes: &[u8]) -> Result<(u64, Vec<u8>), String> {
    if bytes.len() < GEN_MAGIC.len() + 8 + 8 + 8 {
        return Err("generation envelope is truncated".into());
    }
    if &bytes[..8] != GEN_MAGIC {
        return Err("not a generation envelope (bad magic)".into());
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv64(body) != stored {
        return Err("generation envelope checksum mismatch".into());
    }
    let generation = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(body[16..24].try_into().unwrap());
    let payload = &body[24..];
    if payload.len() as u64 != len {
        return Err(format!(
            "generation payload length mismatch: header says {len}, found {}",
            payload.len()
        ));
    }
    Ok((generation, payload.to_vec()))
}

/// What a [`GenStore::scan`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct GenScan {
    /// Valid generations, newest first (at most two).
    pub slots: Vec<(u64, Vec<u8>)>,
    /// Slot files that exist but do not decode — candidates for
    /// quarantine.
    pub corrupt: Vec<PathBuf>,
}

impl GenScan {
    /// The newest valid generation, if any.
    pub fn latest(&self) -> Option<&(u64, Vec<u8>)> {
        self.slots.first()
    }
}

/// A double-buffered generation store over a [`Vfs`].
#[derive(Debug, Clone)]
pub struct GenStore {
    vfs: VfsHandle,
    base: PathBuf,
    /// `(last committed generation, slot index it lives in)`, discovered
    /// lazily on the first commit.
    state: Option<(u64, usize)>,
}

impl GenStore {
    /// A store whose slots are `<base>.a` and `<base>.b`.
    pub fn new(vfs: VfsHandle, base: impl Into<PathBuf>) -> GenStore {
        GenStore {
            vfs,
            base: base.into(),
            state: None,
        }
    }

    /// The base path (without the slot extension).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// The two slot paths, `.a` first.
    pub fn slot_paths(&self) -> [PathBuf; 2] {
        let slot = |ext: &str| {
            let mut p = self.base.as_os_str().to_os_string();
            p.push(ext);
            PathBuf::from(p)
        };
        [slot(".a"), slot(".b")]
    }

    /// Reads both slots and classifies them: valid generations newest
    /// first, plus any corrupt slot files.
    ///
    /// # Errors
    ///
    /// Returns the error when a slot cannot be *read* (I/O, crash);
    /// undecodable content is not an error, it lands in
    /// [`GenScan::corrupt`].
    pub fn scan(&self) -> std::io::Result<GenScan> {
        let mut scan = GenScan::default();
        for path in self.slot_paths() {
            let bytes = match self.vfs.read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            match decode_generation(&bytes) {
                Ok((generation, payload)) => scan.slots.push((generation, payload)),
                Err(_) => scan.corrupt.push(path),
            }
        }
        scan.slots.sort_by_key(|slot| std::cmp::Reverse(slot.0));
        Ok(scan)
    }

    /// Commits `payload` as the next generation, into the slot not
    /// holding the newest valid one. Returns the committed generation
    /// number.
    ///
    /// # Errors
    ///
    /// Returns the first failing filesystem operation's error. The
    /// previous good generation survives any such failure.
    pub fn commit(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let (generation, slot) = match self.state {
            Some((last, last_slot)) => (last + 1, 1 - last_slot),
            None => match self.scan()?.latest() {
                // The newest generation's slot is whichever decodes to
                // that generation; rediscover it by matching.
                Some(&(last, _)) => {
                    let paths = self.slot_paths();
                    let in_a = self
                        .vfs
                        .read(&paths[0])
                        .ok()
                        .and_then(|b| decode_generation(&b).ok())
                        .is_some_and(|(g, _)| g == last);
                    (last + 1, usize::from(in_a))
                }
                None => (1, 0),
            },
        };
        let path = &self.slot_paths()[slot];
        commit_replace(
            self.vfs.as_ref(),
            path,
            &encode_generation(generation, payload),
        )?;
        self.state = Some((generation, slot));
        Ok(generation)
    }

    /// Removes stale `.tmp` staging files left by interrupted commits.
    /// Returns how many were removed.
    pub fn sweep_tmp(&self) -> u32 {
        let mut removed = 0;
        for slot in self.slot_paths() {
            if self.vfs.remove(&tmp_sibling(&slot)).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Removes both slots and their staging files (the artifact is no
    /// longer needed). Best-effort.
    pub fn remove_all(&self) {
        for slot in self.slot_paths() {
            let _ = self.vfs.remove(&slot);
            let _ = self.vfs.remove(&tmp_sibling(&slot));
        }
    }
}

/// A [`SnapshotSink`] that commits each flush as a new generation.
#[derive(Debug, Clone)]
pub struct GenSink {
    store: GenStore,
}

impl GenSink {
    /// A sink committing snapshot generations under `base`.
    pub fn new(vfs: VfsHandle, base: impl Into<PathBuf>) -> GenSink {
        GenSink {
            store: GenStore::new(vfs, base),
        }
    }

    /// The generation committed by the most recent flush, if any.
    pub fn last_generation(&self) -> Option<u64> {
        self.store.state.map(|(generation, _)| generation)
    }
}

impl SnapshotSink for GenSink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.store
            .commit(bytes)
            .map(|_| ())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", self.store.base.display())))
    }
}

/// Loads the newest snapshot generation under `base` that decodes
/// cleanly, rolling back to the older slot when the newer one is
/// damaged. Returns the generation number alongside the snapshot.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when a slot cannot be read;
/// `Ok(None)` when no valid snapshot generation exists at all.
pub fn load_latest_snapshot(
    vfs: &VfsHandle,
    base: impl AsRef<Path>,
) -> Result<Option<(u64, Snapshot)>, SnapshotError> {
    let store = GenStore::new(vfs.clone(), base.as_ref());
    let scan = store
        .scan()
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", base.as_ref().display())))?;
    for (generation, payload) in &scan.slots {
        if let Ok(snapshot) = Snapshot::decode(payload) {
            return Ok(Some((*generation, snapshot)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{real_fs, FaultPlan, SimFs, Vfs};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn sim() -> (Arc<SimFs>, VfsHandle) {
        let fs = Arc::new(SimFs::new(5));
        fs.create_dir_all(&PathBuf::from("/state")).unwrap();
        let handle: VfsHandle = fs.clone();
        (fs, handle)
    }

    #[test]
    fn envelope_roundtrips_and_rejects_damage() {
        let bytes = encode_generation(42, b"payload");
        assert_eq!(
            decode_generation(&bytes).unwrap(),
            (42, b"payload".to_vec())
        );
        for len in 0..bytes.len() {
            assert!(decode_generation(&bytes[..len]).is_err(), "truncate {len}");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(decode_generation(&bad).is_err(), "bit flip at {i}");
        }
    }

    #[test]
    fn commits_alternate_slots_and_generations_climb() {
        let (_fs, vfs) = sim();
        let mut store = GenStore::new(vfs.clone(), "/state/snap");
        assert_eq!(store.commit(b"one").unwrap(), 1);
        assert_eq!(store.commit(b"two").unwrap(), 2);
        assert_eq!(store.commit(b"three").unwrap(), 3);
        let scan = store.scan().unwrap();
        assert_eq!(scan.latest().unwrap(), &(3, b"three".to_vec()));
        assert_eq!(scan.slots.len(), 2, "both slots populated");
        assert_eq!(scan.slots[1], (2, b"two".to_vec()));
    }

    #[test]
    fn a_fresh_store_continues_an_existing_sequence() {
        let (_fs, vfs) = sim();
        let mut store = GenStore::new(vfs.clone(), "/state/snap");
        store.commit(b"one").unwrap();
        store.commit(b"two").unwrap();
        // A new process opens the same base and keeps counting.
        let mut reopened = GenStore::new(vfs, "/state/snap");
        assert_eq!(reopened.commit(b"three").unwrap(), 3);
        let scan = reopened.scan().unwrap();
        assert_eq!(scan.latest().unwrap(), &(3, b"three".to_vec()));
        // The slot holding generation 2 must have been preserved: the
        // new commit overwrote generation 1's slot.
        assert_eq!(scan.slots[1], (2, b"two".to_vec()));
    }

    #[test]
    fn corrupt_newer_slot_rolls_back_to_older_generation() {
        let (fs, vfs) = sim();
        let mut store = GenStore::new(vfs.clone(), "/state/snap");
        store.commit(b"one").unwrap();
        store.commit(b"two").unwrap();
        // Damage whichever slot holds generation 2.
        for path in store.slot_paths() {
            let bytes = fs.read(&path).unwrap();
            if decode_generation(&bytes).unwrap().0 == 2 {
                let mut bad = bytes;
                let mid = bad.len() / 2;
                bad[mid] ^= 0xff;
                fs.write(&path, &bad).unwrap();
            }
        }
        let scan = store.scan().unwrap();
        assert_eq!(scan.latest().unwrap(), &(1, b"one".to_vec()));
        assert_eq!(scan.corrupt.len(), 1);
    }

    #[test]
    fn crash_during_commit_never_loses_the_previous_generation() {
        // Crash at every syscall boundary of a commit, across seeds:
        // recovery must always see generation >= the pre-crash latest,
        // with that generation's exact payload.
        for ops in 0..6 {
            for seed in 0..8 {
                let fs = Arc::new(SimFs::new(seed));
                fs.create_dir_all(&PathBuf::from("/state")).unwrap();
                let vfs: VfsHandle = fs.clone();
                let mut store = GenStore::new(vfs.clone(), "/state/snap");
                store.commit(b"gen-1").unwrap();
                store.commit(b"gen-2").unwrap();
                fs.set_plan(FaultPlan::crash_after(ops));
                let result = GenStore::new(vfs.clone(), "/state/snap").commit(b"gen-3");
                if fs.crashed() {
                    fs.reboot();
                } else {
                    result.unwrap();
                }
                let store = GenStore::new(vfs, "/state/snap");
                store.sweep_tmp();
                let scan = store.scan().unwrap();
                let (generation, payload) = scan.latest().expect("a generation must survive");
                match generation {
                    2 => assert_eq!(payload, b"gen-2"),
                    3 => assert_eq!(payload, b"gen-3"),
                    other => panic!("recovered to unexpected generation {other}"),
                }
            }
        }
    }

    #[test]
    fn sweep_removes_stale_tmp_files() {
        let (fs, vfs) = sim();
        let mut store = GenStore::new(vfs.clone(), "/state/snap");
        store.commit(b"one").unwrap();
        fs.write(&PathBuf::from("/state/snap.a.tmp"), b"interrupted")
            .unwrap();
        assert_eq!(store.sweep_tmp(), 1);
        assert!(!fs.exists(&PathBuf::from("/state/snap.a.tmp")));
        store.remove_all();
        assert!(store.scan().unwrap().slots.is_empty());
    }

    #[test]
    fn gen_sink_and_latest_snapshot_roundtrip_on_the_real_fs() {
        let dir = std::env::temp_dir().join(format!("pnp_gen_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = real_fs();
        let base = dir.join("search.pnpsnap");
        let mut sink = GenSink::new(vfs.clone(), &base);
        let snap = crate::snapshot::test_snapshot();
        sink.store(&snap.encode()).unwrap();
        sink.store(&snap.encode()).unwrap();
        assert_eq!(sink.last_generation(), Some(2));
        let (generation, loaded) = load_latest_snapshot(&vfs, &base).unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(loaded.tag(), snap.tag());
        std::fs::remove_dir_all(&dir).ok();
    }
}
