//! Partial-order reduction (ample sets over invisible local steps).
//!
//! Decomposing connectors into port and channel processes — the PnP
//! approach — adds internal concurrency, and most of it is *invisible*:
//! buffer bookkeeping, scratch clearing, local counters. Interleaving those
//! steps with everything else multiplies the state space without changing
//! any observable behavior. This module implements a sound ample-set
//! reduction that executes such steps eagerly:
//!
//! * A control location is **local** when every outgoing transition (i) has
//!   a guard over the process's locals only, (ii) performs no channel
//!   operation and no assertion, and (iii) assigns only to the process's
//!   own locals. Such transitions are independent of every other process's
//!   transitions and invisible to global-variable predicates.
//! * Local locations lying on a cycle of local transitions are excluded,
//!   so local regions are acyclic: every cycle of the reduced state graph
//!   then contains a fully expanded state, discharging the ample-set cycle
//!   proviso statically.
//! * At a state where some process sits at an eligible local location with
//!   at least one enabled step, the explorer expands *only* that process's
//!   steps (ample set).
//!
//! The reduction preserves deadlocks, assertion failures, and the truth of
//! invariants and stutter-invariant LTL over *global-variable* predicates.
//! It is switched off automatically when a property uses a native
//! predicate (which may inspect locals, locations, or channel contents)
//! and during weak-fairness liveness search (fairness and ample sets
//! interact unsoundly).

use crate::expression::Expr;
use crate::program::{Action, LValue, Program};

/// Per-(process, location) flags: `true` when every outgoing transition is
/// local and invisible.
#[derive(Debug, Clone)]
pub(crate) struct LocalLocations {
    flags: Vec<Vec<bool>>,
}

fn expr_is_local(e: &Expr) -> bool {
    e.max_global().is_none()
}

fn lvalue_is_local(lv: &LValue) -> bool {
    match lv {
        LValue::Local(_) => true,
        LValue::LocalIdx(_, offset) => expr_is_local(offset),
        LValue::Global(_) => false,
    }
}

fn transition_is_local(t: &crate::program::Transition) -> bool {
    if let Some(e) = &t.guard.expr {
        if !expr_is_local(e) {
            return false;
        }
    }
    // Native guards are locals-only by construction.
    match &t.action {
        Action::Skip | Action::Native(_) => true,
        Action::Assign(assignments) => assignments
            .iter()
            .all(|(lv, e)| lvalue_is_local(lv) && expr_is_local(e)),
        Action::Send { .. } | Action::Recv { .. } | Action::Assert { .. } => false,
    }
}

impl LocalLocations {
    /// Computes the static local-location table for a program.
    ///
    /// Locations that lie on a cycle of local transitions are excluded:
    /// with acyclic local regions, every cycle of the reduced state graph
    /// contains a fully expanded state, which discharges the ample-set
    /// cycle proviso *statically* (no dynamic stack or closed-set checks).
    pub(crate) fn analyze(program: &Program) -> LocalLocations {
        let mut flags: Vec<Vec<bool>> = program
            .processes
            .iter()
            .map(|p| {
                p.outgoing
                    .iter()
                    .map(|ts| !ts.is_empty() && ts.iter().all(transition_is_local))
                    .collect()
            })
            .collect();
        for (pi, p) in program.processes.iter().enumerate() {
            let local = flags[pi].clone();
            let n = local.len();
            // local -> local edges.
            let edges: Vec<Vec<usize>> = (0..n)
                .map(|l| {
                    if !local[l] {
                        return Vec::new();
                    }
                    p.outgoing[l]
                        .iter()
                        .map(|t| t.target as usize)
                        .filter(|&t| local[t])
                        .collect()
                })
                .collect();
            // A local location reachable from itself through local edges is
            // on a cycle: drop it from the reduction.
            for start in 0..n {
                if !local[start] {
                    continue;
                }
                let mut seen = vec![false; n];
                let mut stack: Vec<usize> = edges[start].clone();
                let mut on_cycle = false;
                while let Some(v) = stack.pop() {
                    if v == start {
                        on_cycle = true;
                        break;
                    }
                    if !seen[v] {
                        seen[v] = true;
                        stack.extend(edges[v].iter().copied());
                    }
                }
                if on_cycle {
                    flags[pi][start] = false;
                }
            }
        }
        LocalLocations { flags }
    }

    /// Whether every transition out of `(proc, loc)` is local/invisible.
    pub(crate) fn is_local(&self, proc: usize, loc: u32) -> bool {
        self.flags[proc][loc as usize]
    }

    /// The number of local locations, for diagnostics and tests.
    #[cfg(test)]
    pub(crate) fn local_count(&self) -> usize {
        self.flags
            .iter()
            .map(|p| p.iter().filter(|&&b| b).count())
            .sum()
    }
}

/// Restricts `steps` to an ample subset: the enabled steps of the lowest-
/// numbered process currently at an ample-eligible local location, if any;
/// otherwise all steps (full expansion).
pub(crate) fn ample_subset(
    analysis: &LocalLocations,
    state: &crate::state::State,
    steps: Vec<crate::state::Step>,
) -> Vec<crate::state::Step> {
    for (pi, ps) in state.procs.iter().enumerate() {
        if !analysis.is_local(pi, ps.loc) {
            continue;
        }
        let ample: Vec<crate::state::Step> = steps
            .iter()
            .copied()
            .filter(|s| s.proc.index() == pi)
            .collect();
        if !ample.is_empty() {
            return ample;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    #[test]
    fn classifies_local_and_visible_locations() {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("g", 0);
        let ch = prog.channel("ch", 1, 1);
        let mut p = ProcessBuilder::new("p");
        let x = p.local("x", 0);
        let local_loc = p.location("local");
        let global_loc = p.location("global");
        let chan_loc = p.location("chan");
        let assert_loc = p.location("assert");
        let guarded_loc = p.location("guarded_by_global");
        let empty_loc = p.location("no_transitions");
        // Local: assigns to own local under a local guard.
        p.transition(
            local_loc,
            global_loc,
            Guard::when(expr::lt(expr::local(x), 3.into())),
            Action::assign(x, expr::local(x) + 1.into()),
            "bump x",
        );
        // Visible: writes a global.
        p.transition(
            global_loc,
            chan_loc,
            Guard::always(),
            Action::assign(g, 1.into()),
            "write g",
        );
        // Visible: channel operation.
        p.transition(
            chan_loc,
            assert_loc,
            Guard::always(),
            Action::send(ch, vec![1.into()]),
            "send",
        );
        // Visible: assertion.
        p.transition(
            assert_loc,
            guarded_loc,
            Guard::always(),
            Action::assert(expr::local(x), "x nonzero"),
            "assert",
        );
        // Visible: guard reads a global.
        p.transition(
            guarded_loc,
            empty_loc,
            Guard::when(expr::gt(expr::global(g), 0.into())),
            Action::Skip,
            "guarded skip",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let analysis = LocalLocations::analyze(&program);
        assert!(analysis.is_local(0, local_loc.index() as u32));
        assert!(!analysis.is_local(0, global_loc.index() as u32));
        assert!(!analysis.is_local(0, chan_loc.index() as u32));
        assert!(!analysis.is_local(0, assert_loc.index() as u32));
        assert!(!analysis.is_local(0, guarded_loc.index() as u32));
        // A location with no transitions is not "local" (nothing to ample).
        assert!(!analysis.is_local(0, empty_loc.index() as u32));
        assert_eq!(analysis.local_count(), 1);
    }

    #[test]
    fn native_ops_and_skips_are_local_when_acyclic() {
        use crate::program::{NativeGuard, NativeOp};
        let mut prog = ProgramBuilder::new();
        let g = prog.global("g", 0);
        let mut p = ProcessBuilder::new("p");
        let _x = p.local("x", 0);
        let s0 = p.location("s0");
        let s1 = p.location("s1");
        let s2 = p.location("s2");
        p.transition(
            s0,
            s1,
            Guard::native(NativeGuard::new("x small", |l| l[0] < 5)),
            Action::Native(NativeOp::new("bump", |l| l[0] += 1)),
            "native bump",
        );
        p.transition(s1, s2, Guard::always(), Action::Skip, "skip on");
        // s2 is visible (writes a global), breaking any local cycle.
        p.transition(
            s2,
            s0,
            Guard::always(),
            Action::assign(g, 1.into()),
            "write g",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let analysis = LocalLocations::analyze(&program);
        assert_eq!(analysis.local_count(), 2);
    }

    #[test]
    fn local_cycles_are_excluded_from_the_reduction() {
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let x = p.local("x", 0);
        let s0 = p.location("s0");
        let s1 = p.location("s1");
        // A purely local spin: s0 <-> s1. Both must be excluded or the
        // reduction could ignore every other process forever.
        p.transition(s0, s1, Guard::always(), Action::assign(x, 1.into()), "a");
        p.transition(s1, s0, Guard::always(), Action::assign(x, 0.into()), "b");
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let analysis = LocalLocations::analyze(&program);
        assert_eq!(analysis.local_count(), 0);
    }

    #[test]
    fn local_self_loop_is_excluded() {
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let x = p.local("x", 0);
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::when(expr::lt(expr::local(x), 3.into())),
            Action::assign(x, expr::local(x) + 1.into()),
            "self bump",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let analysis = LocalLocations::analyze(&program);
        assert_eq!(analysis.local_count(), 0);
    }
}
