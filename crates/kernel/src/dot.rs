//! Graphviz rendering of process automata, for debugging models.

use std::fmt::Write as _;

use crate::program::{Action, ProcessDef, Program};

impl ProcessDef {
    /// Renders this process's control automaton in Graphviz dot format:
    /// locations as nodes (end locations doubly circled, the initial
    /// location marked), transitions as labeled edges.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
        for (i, name) in self.loc_names.iter().enumerate() {
            let shape = if self.end_locs.contains(&(i as u32)) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  l{i} [shape={shape}, label=\"{name}\"];");
        }
        let _ = writeln!(out, "  init [shape=point];");
        let _ = writeln!(out, "  init -> l{};", self.init_loc);
        for (from, transitions) in self.outgoing.iter().enumerate() {
            for t in transitions {
                let kind = match &t.action {
                    Action::Skip => "",
                    Action::Assign(_) => " [=]",
                    Action::Send { .. } => " [!]",
                    Action::Recv { .. } => " [?]",
                    Action::Native(_) => " [op]",
                    Action::Assert { .. } => " [assert]",
                };
                let label = format!("{}{kind}", t.label).replace('"', "'");
                let _ = writeln!(out, "  l{from} -> l{} [label=\"{label}\"];", t.target);
            }
        }
        out.push_str("}\n");
        out
    }
}

impl Program {
    /// Renders every process automaton, concatenated (one digraph per
    /// process); split on blank lines or render processes individually via
    /// [`ProcessDef::to_dot`].
    pub fn to_dot(&self) -> String {
        self.processes
            .iter()
            .map(ProcessDef::to_dot)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    #[test]
    fn process_dot_shows_locations_edges_and_markers() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("ch", 0, 1);
        let mut p = ProcessBuilder::new("worker");
        let n = p.local("n", 0);
        let s0 = p.location("idle");
        let s1 = p.location("busy");
        let s2 = p.location("done");
        p.set_initial(s0);
        p.mark_end(s2);
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::send(ch, vec![1.into()]),
            "emit",
        );
        p.transition(
            s1,
            s2,
            Guard::always(),
            Action::assign(n, expr::local(n) + 1.into()),
            "count",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();

        let dot = program.processes()[0].to_dot();
        assert!(dot.contains("digraph \"worker\""), "{dot}");
        assert!(dot.contains("label=\"idle\""), "{dot}");
        assert!(dot.contains("doublecircle, label=\"done\""), "{dot}");
        assert!(dot.contains("init -> l0"), "{dot}");
        assert!(dot.contains("emit [!]"), "{dot}");
        assert!(dot.contains("count [=]"), "{dot}");

        // Program-level rendering concatenates per-process graphs.
        assert_eq!(program.to_dot(), dot);
    }
}
