//! Integer expressions over process locals, globals, and the process id.
//!
//! Expressions are the guard and assignment language of the kernel, playing
//! the role of Promela's expression syntax. They evaluate to `i32`; any
//! nonzero value is truthy. Build them with the constructors in the [`expr`]
//! module and the arithmetic operator overloads:
//!
//! ```
//! use pnp_kernel::expr;
//! use pnp_kernel::{ProcessBuilder, ProgramBuilder};
//!
//! let mut prog = ProgramBuilder::new();
//! let x = prog.global("x", 3);
//! let mut p = ProcessBuilder::new("p");
//! let v = p.local("v", 2);
//! // v * 2 + x  >  5
//! let guard = expr::gt(expr::local(v) * 2.into() + expr::global(x), 5.into());
//! # let _ = guard;
//! ```

use std::fmt;
use std::sync::Arc;

use crate::program::{GlobalId, LocalId};

/// An error raised while evaluating an [`Expr`].
///
/// Evaluation errors indicate a bug in the *model* (not the checker); the
/// exploring APIs surface them as [`crate::KernelError`]s rather than
/// panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Division or remainder by zero.
    DivisionByZero,
    /// A `LocalIdx` access fell outside the process's locals.
    IndexOutOfBounds {
        /// The resolved index.
        index: i64,
        /// The number of locals in the process.
        len: usize,
    },
    /// Arithmetic overflowed `i32`.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "local index {index} out of bounds for {len} locals")
            }
            EvalError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An integer expression over a process's locals, the program's globals, and
/// the evaluating process's id.
///
/// See the [`expr`] module for constructors. `From<i32>` provides literals,
/// and `+`, `-`, `*` are overloaded.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer literal.
    Const(i32),
    /// A process-local variable.
    Local(usize),
    /// A process-local variable addressed as `base + offset` where the
    /// offset is computed at evaluation time (used for modeling buffers).
    LocalIdx(usize, Arc<Expr>),
    /// A global variable.
    Global(usize),
    /// The id (`_pid` in Promela) of the evaluating process.
    SelfPid,
    /// Logical negation (`!e`; zero becomes one and vice versa).
    Not(Arc<Expr>),
    /// Arithmetic negation (`-e`).
    Neg(Arc<Expr>),
    #[doc(hidden)]
    Bin(BinOpToken, Arc<Expr>, Arc<Expr>),
}

/// Opaque binary operator token (kept public-in-name-only so that `Expr` can
/// be matched exhaustively inside the crate while keeping the operator set
/// extensible).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinOpToken(BinOp);

/// Evaluation context: the evaluating process's locals and id, plus the
/// global variables.
pub(crate) struct EvalCtx<'a> {
    pub locals: &'a [i32],
    pub globals: &'a [i32],
    pub pid: i32,
}

impl Expr {
    pub(crate) fn eval(&self, ctx: &EvalCtx<'_>) -> Result<i32, EvalError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Local(i) => ctx
                .locals
                .get(*i)
                .copied()
                .ok_or(EvalError::IndexOutOfBounds {
                    index: *i as i64,
                    len: ctx.locals.len(),
                }),
            Expr::LocalIdx(base, offset) => {
                let off = offset.eval(ctx)? as i64;
                let index = *base as i64 + off;
                if index < 0 || index >= ctx.locals.len() as i64 {
                    return Err(EvalError::IndexOutOfBounds {
                        index,
                        len: ctx.locals.len(),
                    });
                }
                Ok(ctx.locals[index as usize])
            }
            Expr::Global(i) => ctx
                .globals
                .get(*i)
                .copied()
                .ok_or(EvalError::IndexOutOfBounds {
                    index: *i as i64,
                    len: ctx.globals.len(),
                }),
            Expr::SelfPid => Ok(ctx.pid),
            Expr::Not(e) => Ok((e.eval(ctx)? == 0) as i32),
            Expr::Neg(e) => e.eval(ctx)?.checked_neg().ok_or(EvalError::Overflow),
            Expr::Bin(BinOpToken(op), a, b) => {
                let x = a.eval(ctx)?;
                // Short-circuit the boolean connectives.
                match op {
                    BinOp::And if x == 0 => return Ok(0),
                    BinOp::Or if x != 0 => return Ok(1),
                    _ => {}
                }
                let y = b.eval(ctx)?;
                match op {
                    BinOp::Add => x.checked_add(y).ok_or(EvalError::Overflow),
                    BinOp::Sub => x.checked_sub(y).ok_or(EvalError::Overflow),
                    BinOp::Mul => x.checked_mul(y).ok_or(EvalError::Overflow),
                    BinOp::Div => {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            x.checked_div(y).ok_or(EvalError::Overflow)
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            x.checked_rem(y).ok_or(EvalError::Overflow)
                        }
                    }
                    BinOp::Eq => Ok((x == y) as i32),
                    BinOp::Ne => Ok((x != y) as i32),
                    BinOp::Lt => Ok((x < y) as i32),
                    BinOp::Le => Ok((x <= y) as i32),
                    BinOp::Gt => Ok((x > y) as i32),
                    BinOp::Ge => Ok((x >= y) as i32),
                    BinOp::And => Ok((y != 0) as i32),
                    BinOp::Or => Ok((y != 0) as i32),
                }
            }
        }
    }

    pub(crate) fn eval_bool(&self, ctx: &EvalCtx<'_>) -> Result<bool, EvalError> {
        Ok(self.eval(ctx)? != 0)
    }

    /// The largest local-variable index the expression mentions directly
    /// (used by [`crate::ProgramBuilder`] validation). `LocalIdx` reports its
    /// base slot only, since the offset is dynamic.
    pub(crate) fn max_local(&self) -> Option<usize> {
        match self {
            Expr::Const(_) | Expr::Global(_) | Expr::SelfPid => None,
            Expr::Local(i) => Some(*i),
            Expr::LocalIdx(base, offset) => Some((*base).max(offset.max_local().unwrap_or(0))),
            Expr::Not(e) | Expr::Neg(e) => e.max_local(),
            Expr::Bin(_, a, b) => match (a.max_local(), b.max_local()) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(x.max(y)),
            },
        }
    }

    /// The largest global-variable index the expression mentions.
    pub(crate) fn max_global(&self) -> Option<usize> {
        match self {
            Expr::Const(_) | Expr::Local(_) | Expr::SelfPid => None,
            Expr::Global(i) => Some(*i),
            Expr::LocalIdx(_, offset) => offset.max_global(),
            Expr::Not(e) | Expr::Neg(e) => e.max_global(),
            Expr::Bin(_, a, b) => match (a.max_global(), b.max_global()) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(x.max(y)),
            },
        }
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::Const(v)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        expr::add(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        expr::mul(self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Arc::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Local(i) => write!(f, "l{i}"),
            Expr::LocalIdx(base, offset) => write!(f, "l[{base}+{offset}]"),
            Expr::Global(i) => write!(f, "g{i}"),
            Expr::SelfPid => write!(f, "_pid"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(BinOpToken(op), a, b) => {
                let symbol = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                write!(f, "({a} {symbol} {b})")
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

/// Constructors for the expression language.
///
/// Free functions (rather than methods) are used for the comparison and
/// boolean connectives to avoid clashing with `PartialEq`/`PartialOrd`
/// method names.
pub mod expr {
    use super::*;

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOpToken(op), Arc::new(a), Arc::new(b))
    }

    /// An integer literal (equivalent to `Expr::from(v)`).
    pub fn konst(v: i32) -> Expr {
        Expr::Const(v)
    }

    /// Reads a process-local variable.
    pub fn local(id: LocalId) -> Expr {
        Expr::Local(id.index())
    }

    /// Reads the local variable at `base + offset`, where `offset` is
    /// evaluated at run time. Used together with contiguous blocks of locals
    /// to model buffers.
    pub fn local_idx(base: LocalId, offset: Expr) -> Expr {
        Expr::LocalIdx(base.index(), Arc::new(offset))
    }

    /// Reads a global variable.
    pub fn global(id: GlobalId) -> Expr {
        Expr::Global(id.index())
    }

    /// The id of the evaluating process (Promela's `_pid`).
    pub fn self_pid() -> Expr {
        Expr::SelfPid
    }

    /// Addition (also available as `a + b`).
    pub fn add(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Add, a, b)
    }

    /// Subtraction (also available as `a - b`).
    pub fn sub(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Sub, a, b)
    }

    /// Multiplication (also available as `a * b`).
    pub fn mul(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Mul, a, b)
    }

    /// Truncated integer division. Evaluation fails on a zero divisor.
    pub fn div(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Div, a, b)
    }

    /// Remainder. Evaluation fails on a zero divisor.
    pub fn rem(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Rem, a, b)
    }

    /// Equality test (`1` if equal, else `0`).
    pub fn eq(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Eq, a, b)
    }

    /// Inequality test.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Ne, a, b)
    }

    /// Strictly-less-than test.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Lt, a, b)
    }

    /// Less-than-or-equal test.
    pub fn le(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Le, a, b)
    }

    /// Strictly-greater-than test.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Gt, a, b)
    }

    /// Greater-than-or-equal test.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Ge, a, b)
    }

    /// Short-circuit conjunction (nonzero = true).
    pub fn and(a: Expr, b: Expr) -> Expr {
        bin(BinOp::And, a, b)
    }

    /// Short-circuit disjunction.
    pub fn or(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Or, a, b)
    }

    /// Logical negation.
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Arc::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(locals: &'a [i32], globals: &'a [i32]) -> EvalCtx<'a> {
        EvalCtx {
            locals,
            globals,
            pid: 7,
        }
    }

    fn eval(e: &Expr, locals: &[i32], globals: &[i32]) -> Result<i32, EvalError> {
        e.eval(&ctx(locals, globals))
    }

    #[test]
    fn literals_and_variables() {
        assert_eq!(eval(&Expr::from(42), &[], &[]), Ok(42));
        assert_eq!(eval(&Expr::Local(1), &[10, 20], &[]), Ok(20));
        assert_eq!(eval(&Expr::Global(0), &[], &[5]), Ok(5));
        assert_eq!(eval(&Expr::SelfPid, &[], &[]), Ok(7));
    }

    #[test]
    fn arithmetic_operators() {
        let e = Expr::from(2) + Expr::from(3) * Expr::from(4);
        assert_eq!(eval(&e, &[], &[]), Ok(14));
        let e = Expr::from(10) - Expr::from(3);
        assert_eq!(eval(&e, &[], &[]), Ok(7));
        assert_eq!(eval(&expr::div(14.into(), 4.into()), &[], &[]), Ok(3));
        assert_eq!(eval(&expr::rem(14.into(), 4.into()), &[], &[]), Ok(2));
        assert_eq!(eval(&(-Expr::from(5)), &[], &[]), Ok(-5));
    }

    #[test]
    fn comparisons_yield_zero_or_one() {
        assert_eq!(eval(&expr::lt(1.into(), 2.into()), &[], &[]), Ok(1));
        assert_eq!(eval(&expr::lt(2.into(), 2.into()), &[], &[]), Ok(0));
        assert_eq!(eval(&expr::le(2.into(), 2.into()), &[], &[]), Ok(1));
        assert_eq!(eval(&expr::gt(3.into(), 2.into()), &[], &[]), Ok(1));
        assert_eq!(eval(&expr::ge(1.into(), 2.into()), &[], &[]), Ok(0));
        assert_eq!(eval(&expr::eq(2.into(), 2.into()), &[], &[]), Ok(1));
        assert_eq!(eval(&expr::ne(2.into(), 2.into()), &[], &[]), Ok(0));
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        // 0 && (1/0) must not evaluate the right side.
        let e = expr::and(0.into(), expr::div(1.into(), 0.into()));
        assert_eq!(eval(&e, &[], &[]), Ok(0));
        let e = expr::or(1.into(), expr::div(1.into(), 0.into()));
        assert_eq!(eval(&e, &[], &[]), Ok(1));
        assert_eq!(eval(&expr::not(0.into()), &[], &[]), Ok(1));
        assert_eq!(eval(&expr::not(5.into()), &[], &[]), Ok(0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            eval(&expr::div(1.into(), 0.into()), &[], &[]),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            eval(&expr::rem(1.into(), 0.into()), &[], &[]),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_is_an_error() {
        let e = Expr::from(i32::MAX) + Expr::from(1);
        assert_eq!(eval(&e, &[], &[]), Err(EvalError::Overflow));
        let e = -Expr::from(i32::MIN);
        assert_eq!(eval(&e, &[], &[]), Err(EvalError::Overflow));
    }

    #[test]
    fn indexed_local_access() {
        let e = Expr::LocalIdx(1, Arc::new(Expr::Local(0)));
        // locals[1 + locals[0]] = locals[1 + 2] = 40
        assert_eq!(eval(&e, &[2, 10, 30, 40], &[]), Ok(40));
    }

    #[test]
    fn indexed_access_out_of_bounds() {
        let e = Expr::LocalIdx(0, Arc::new(Expr::from(10)));
        assert_eq!(
            eval(&e, &[1, 2], &[]),
            Err(EvalError::IndexOutOfBounds { index: 10, len: 2 })
        );
        let e = Expr::LocalIdx(0, Arc::new(Expr::from(-1)));
        assert_eq!(
            eval(&e, &[1, 2], &[]),
            Err(EvalError::IndexOutOfBounds { index: -1, len: 2 })
        );
    }

    #[test]
    fn max_variable_indices() {
        let e = expr::and(Expr::Local(3), Expr::Global(5) + Expr::Local(1));
        assert_eq!(e.max_local(), Some(3));
        assert_eq!(e.max_global(), Some(5));
        assert_eq!(Expr::from(1).max_local(), None);
    }

    #[test]
    fn display_is_readable() {
        let e = expr::lt(Expr::Local(0) + 1.into(), Expr::Global(2));
        assert_eq!(e.to_string(), "((l0 + 1) < g2)");
    }
}
