//! Global states and the step semantics (enabledness and application).

use std::collections::VecDeque;
use std::fmt;

use crate::expression::{EvalCtx, EvalError};
use crate::program::{Action, ChanId, FieldPat, Guard, LValue, Loc, ProcId, Program, RecvPolicy};
use crate::trace::{EventKind, TraceEvent};

/// A message: a fixed-arity tuple of integers.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Msg {
    fields: Box<[i32]>,
}

impl Msg {
    /// Creates a message from its field values.
    pub fn new(fields: impl Into<Vec<i32>>) -> Msg {
        Msg {
            fields: fields.into().into_boxed_slice(),
        }
    }

    /// The field values.
    pub fn fields(&self) -> &[i32] {
        &self.fields
    }

    /// The number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

impl fmt::Debug for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Msg{:?}", self.fields)
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The state of one process: its control location and local variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProcState {
    pub(crate) loc: u32,
    pub(crate) locals: Box<[i32]>,
}

/// A global system state.
///
/// States are value types: they hash and compare by content, which is what
/// the explorer's visited-set relies on.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct State {
    pub(crate) procs: Box<[ProcState]>,
    pub(crate) chans: Box<[VecDeque<Msg>]>,
    pub(crate) globals: Box<[i32]>,
}

impl State {
    /// The initial state of a program.
    pub fn initial(program: &Program) -> State {
        State {
            procs: program
                .processes
                .iter()
                .map(|p| ProcState {
                    loc: p.init_loc,
                    locals: p.locals.iter().map(|&(_, v)| v).collect(),
                })
                .collect(),
            chans: program.channels.iter().map(|_| VecDeque::new()).collect(),
            globals: program.globals.iter().map(|&(_, v)| v).collect(),
        }
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "State {{ procs: [")?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}@{:?}", p.loc, p.locals)?;
        }
        write!(
            f,
            "], chans: {:?}, globals: {:?} }}",
            self.chans, self.globals
        )
    }
}

/// A read-only view of a [`State`] resolved against its [`Program`], used by
/// native property predicates and simulation observers.
#[derive(Clone, Copy)]
pub struct StateView<'a> {
    pub(crate) program: &'a Program,
    pub(crate) state: &'a State,
}

impl<'a> StateView<'a> {
    /// Creates a view of `state` under `program`.
    pub fn new(program: &'a Program, state: &'a State) -> StateView<'a> {
        StateView { program, state }
    }

    /// The underlying program.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Reads a global variable.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn global(&self, id: crate::program::GlobalId) -> i32 {
        self.state.globals[id.index()]
    }

    /// Reads a global variable by name, if it exists.
    pub fn global_by_name(&self, name: &str) -> Option<i32> {
        self.program
            .global_by_name(name)
            .map(|id| self.state.globals[id.index()])
    }

    /// The current control location of a process.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn location(&self, proc: ProcId) -> Loc {
        Loc(self.state.procs[proc.index()].loc)
    }

    /// The name of the current location of a process.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn location_name(&self, proc: ProcId) -> &'a str {
        let p = &self.state.procs[proc.index()];
        &self.program.processes[proc.index()].loc_names[p.loc as usize]
    }

    /// Reads a local variable of a process by slot index.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn local(&self, proc: ProcId, slot: usize) -> i32 {
        self.state.procs[proc.index()].locals[slot]
    }

    /// The number of messages currently buffered in a channel.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn channel_len(&self, chan: ChanId) -> usize {
        self.state.chans[chan.index()].len()
    }

    /// The messages currently buffered in a channel, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn channel_contents(&self, chan: ChanId) -> impl Iterator<Item = &Msg> {
        self.state.chans[chan.index()].iter()
    }
}

impl fmt::Debug for StateView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateView({:?})", self.state)
    }
}

/// One scheduling choice: which process fires which transition, and, for a
/// rendezvous send, which process/transition receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// The acting process.
    pub proc: ProcId,
    /// Index of the transition within the process's current location.
    pub trans: usize,
    /// For a rendezvous send: the receiving process and its transition
    /// index.
    pub partner: Option<(ProcId, usize)>,
}

/// An error surfaced by the kernel while exploring or simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Evaluating an expression failed; the model is buggy.
    Eval {
        /// The process whose expression failed.
        process: String,
        /// The transition being attempted.
        transition: String,
        /// The underlying error.
        error: EvalError,
    },
    /// An LTL proposition name could not be resolved.
    UnknownProposition {
        /// The unresolved name.
        name: String,
    },
    /// An LTL formula failed to parse.
    LtlParse {
        /// The parser's message.
        message: String,
    },
    /// A checkpoint snapshot could not be written or replayed.
    Snapshot {
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Eval {
                process,
                transition,
                error,
            } => write!(
                f,
                "evaluation error in process '{process}', transition '{transition}': {error}"
            ),
            KernelError::UnknownProposition { name } => {
                write!(f, "unknown proposition '{name}' in LTL formula")
            }
            KernelError::LtlParse { message } => write!(f, "LTL parse error: {message}"),
            KernelError::Snapshot { message } => write!(f, "snapshot error: {message}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The result of applying a [`Step`].
pub(crate) struct Applied {
    pub state: State,
    pub events: Vec<TraceEvent>,
    /// Set when the step executed a failing `Assert`.
    pub assertion_failure: Option<String>,
}

fn eval_err(program: &Program, proc: ProcId, label: &str, error: EvalError) -> KernelError {
    KernelError::Eval {
        process: program.processes[proc.index()].name.clone(),
        transition: label.to_string(),
        error,
    }
}

fn guard_holds(
    program: &Program,
    state: &State,
    proc: usize,
    guard: &Guard,
    label: &str,
) -> Result<bool, KernelError> {
    let ps = &state.procs[proc];
    if let Some(expr) = &guard.expr {
        let ctx = EvalCtx {
            locals: &ps.locals,
            globals: &state.globals,
            pid: proc as i32,
        };
        if !expr
            .eval_bool(&ctx)
            .map_err(|e| eval_err(program, ProcId(proc), label, e))?
        {
            return Ok(false);
        }
    }
    if let Some(native) = &guard.native {
        if !(native.f)(&ps.locals) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn eval_msg(
    program: &Program,
    state: &State,
    proc: usize,
    msg: &[crate::expression::Expr],
    label: &str,
) -> Result<Msg, KernelError> {
    let ps = &state.procs[proc];
    let ctx = EvalCtx {
        locals: &ps.locals,
        globals: &state.globals,
        pid: proc as i32,
    };
    let fields: Result<Vec<i32>, EvalError> = msg.iter().map(|e| e.eval(&ctx)).collect();
    Ok(Msg::new(
        fields.map_err(|e| eval_err(program, ProcId(proc), label, e))?,
    ))
}

fn pattern_matches(
    program: &Program,
    state: &State,
    proc: usize,
    pattern: &[FieldPat],
    msg: &Msg,
    label: &str,
) -> Result<bool, KernelError> {
    let ps = &state.procs[proc];
    let ctx = EvalCtx {
        locals: &ps.locals,
        globals: &state.globals,
        pid: proc as i32,
    };
    for (pat, &value) in pattern.iter().zip(msg.fields()) {
        match pat {
            FieldPat::Any => {}
            FieldPat::Eq(e) => {
                let want = e
                    .eval(&ctx)
                    .map_err(|e| eval_err(program, ProcId(proc), label, e))?;
                if want != value {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// For a buffered receive: the index within the queue of the message that
/// would be taken, if any.
fn buffered_recv_index(
    program: &Program,
    state: &State,
    proc: usize,
    chan: ChanId,
    pattern: &[FieldPat],
    policy: RecvPolicy,
    label: &str,
) -> Result<Option<usize>, KernelError> {
    let queue = &state.chans[chan.index()];
    match policy {
        RecvPolicy::Head => match queue.front() {
            Some(msg) if pattern_matches(program, state, proc, pattern, msg, label)? => Ok(Some(0)),
            _ => Ok(None),
        },
        RecvPolicy::FirstMatch => {
            for (i, msg) in queue.iter().enumerate() {
                if pattern_matches(program, state, proc, pattern, msg, label)? {
                    return Ok(Some(i));
                }
            }
            Ok(None)
        }
    }
}

/// Computes every enabled [`Step`] of `state`, in a deterministic order
/// (process index, then transition index, then partner index).
pub(crate) fn enabled_steps(program: &Program, state: &State) -> Result<Vec<Step>, KernelError> {
    let mut steps = Vec::new();
    for (pi, ps) in state.procs.iter().enumerate() {
        let def = &program.processes[pi];
        for (ti, t) in def.outgoing[ps.loc as usize].iter().enumerate() {
            if !guard_holds(program, state, pi, &t.guard, &t.label)? {
                continue;
            }
            match &t.action {
                Action::Skip | Action::Assign(_) | Action::Native(_) | Action::Assert { .. } => {
                    steps.push(Step {
                        proc: ProcId(pi),
                        trans: ti,
                        partner: None,
                    });
                }
                Action::Send { chan, msg } => {
                    let decl = &program.channels[chan.index()];
                    if decl.capacity > 0 {
                        if state.chans[chan.index()].len() < decl.capacity {
                            steps.push(Step {
                                proc: ProcId(pi),
                                trans: ti,
                                partner: None,
                            });
                        }
                    } else {
                        // Rendezvous: find matching receivers in other
                        // processes.
                        let outgoing = eval_msg(program, state, pi, msg, &t.label)?;
                        for (qi, qs) in state.procs.iter().enumerate() {
                            if qi == pi {
                                continue;
                            }
                            let qdef = &program.processes[qi];
                            for (ui, u) in qdef.outgoing[qs.loc as usize].iter().enumerate() {
                                let Action::Recv {
                                    chan: rchan,
                                    pattern,
                                    ..
                                } = &u.action
                                else {
                                    continue;
                                };
                                if rchan != chan {
                                    continue;
                                }
                                if !guard_holds(program, state, qi, &u.guard, &u.label)? {
                                    continue;
                                }
                                if pattern_matches(
                                    program, state, qi, pattern, &outgoing, &u.label,
                                )? {
                                    steps.push(Step {
                                        proc: ProcId(pi),
                                        trans: ti,
                                        partner: Some((ProcId(qi), ui)),
                                    });
                                }
                            }
                        }
                    }
                }
                Action::Recv {
                    chan,
                    pattern,
                    policy,
                    ..
                } => {
                    let decl = &program.channels[chan.index()];
                    if decl.capacity > 0
                        && buffered_recv_index(
                            program, state, pi, *chan, pattern, *policy, &t.label,
                        )?
                        .is_some()
                    {
                        steps.push(Step {
                            proc: ProcId(pi),
                            trans: ti,
                            partner: None,
                        });
                    }
                    // Rendezvous receives fire only as a send's partner.
                }
            }
        }
    }
    Ok(steps)
}

fn apply_binds(
    program: &Program,
    state: &mut State,
    proc: usize,
    binds: &[(usize, LValue)],
    msg: &Msg,
    label: &str,
) -> Result<(), KernelError> {
    for (field, lv) in binds {
        let value = msg.fields()[*field];
        assign_lvalue(program, state, proc, lv, value, label)?;
    }
    Ok(())
}

fn assign_lvalue(
    program: &Program,
    state: &mut State,
    proc: usize,
    lv: &LValue,
    value: i32,
    label: &str,
) -> Result<(), KernelError> {
    match lv {
        LValue::Local(i) => {
            state.procs[proc].locals[*i] = value;
        }
        LValue::LocalIdx(base, offset) => {
            let ps = &state.procs[proc];
            let ctx = EvalCtx {
                locals: &ps.locals,
                globals: &state.globals,
                pid: proc as i32,
            };
            let off = offset
                .eval(&ctx)
                .map_err(|e| eval_err(program, ProcId(proc), label, e))?
                as i64;
            let index = *base as i64 + off;
            let len = ps.locals.len();
            if index < 0 || index >= len as i64 {
                return Err(eval_err(
                    program,
                    ProcId(proc),
                    label,
                    EvalError::IndexOutOfBounds { index, len },
                ));
            }
            state.procs[proc].locals[index as usize] = value;
        }
        LValue::Global(i) => {
            state.globals[*i] = value;
        }
    }
    Ok(())
}

/// Applies `step` to `state`, producing the successor state and the trace
/// events describing what happened.
///
/// The caller must only pass steps obtained from [`enabled_steps`] on the
/// same state.
pub(crate) fn apply_step(
    program: &Program,
    state: &State,
    step: Step,
) -> Result<Applied, KernelError> {
    let mut next = state.clone();
    let mut events = Vec::new();
    let mut assertion_failure = None;

    let pi = step.proc.index();
    let def = &program.processes[pi];
    let t = &def.outgoing[state.procs[pi].loc as usize][step.trans];

    match &t.action {
        Action::Skip => {
            events.push(TraceEvent::new(step.proc, &t.label, EventKind::Internal));
        }
        Action::Assign(assignments) => {
            for (lv, e) in assignments {
                let ctx = EvalCtx {
                    locals: &next.procs[pi].locals,
                    globals: &next.globals,
                    pid: pi as i32,
                };
                let value = e
                    .eval(&ctx)
                    .map_err(|err| eval_err(program, step.proc, &t.label, err))?;
                assign_lvalue(program, &mut next, pi, lv, value, &t.label)?;
            }
            events.push(TraceEvent::new(step.proc, &t.label, EventKind::Internal));
        }
        Action::Native(op) => {
            (op.f)(&mut next.procs[pi].locals);
            events.push(TraceEvent::new(step.proc, &t.label, EventKind::Internal));
        }
        Action::Assert { cond, message } => {
            let ctx = EvalCtx {
                locals: &next.procs[pi].locals,
                globals: &next.globals,
                pid: pi as i32,
            };
            let ok = cond
                .eval_bool(&ctx)
                .map_err(|err| eval_err(program, step.proc, &t.label, err))?;
            if !ok {
                assertion_failure = Some(message.clone());
            }
            events.push(TraceEvent::new(step.proc, &t.label, EventKind::Internal));
        }
        Action::Send { chan, msg } => {
            let outgoing = eval_msg(program, state, pi, msg, &t.label)?;
            match step.partner {
                None => {
                    // Buffered send.
                    next.chans[chan.index()].push_back(outgoing.clone());
                    events.push(TraceEvent::new(
                        step.proc,
                        &t.label,
                        EventKind::Send {
                            chan: *chan,
                            msg: outgoing,
                        },
                    ));
                }
                Some((receiver, ui)) => {
                    // Rendezvous: fire the receiver's transition too.
                    let qi = receiver.index();
                    let u = &program.processes[qi].outgoing[state.procs[qi].loc as usize][ui];
                    let Action::Recv { binds, .. } = &u.action else {
                        unreachable!("rendezvous partner is not a receive");
                    };
                    apply_binds(program, &mut next, qi, binds, &outgoing, &u.label)?;
                    next.procs[qi].loc = u.target;
                    events.push(TraceEvent::new(
                        step.proc,
                        &t.label,
                        EventKind::Rendezvous {
                            chan: *chan,
                            msg: outgoing,
                            receiver,
                        },
                    ));
                }
            }
        }
        Action::Recv {
            chan,
            pattern,
            binds,
            policy,
        } => {
            // Only buffered receives fire on their own.
            let index = buffered_recv_index(program, state, pi, *chan, pattern, *policy, &t.label)?
                .expect("apply_step called with a disabled receive");
            let msg = next.chans[chan.index()]
                .remove(index)
                .expect("queue index vanished");
            apply_binds(program, &mut next, pi, binds, &msg, &t.label)?;
            events.push(TraceEvent::new(
                step.proc,
                &t.label,
                EventKind::Recv { chan: *chan, msg },
            ));
        }
    }

    next.procs[pi].loc = t.target;
    Ok(Applied {
        state: next,
        events,
        assertion_failure,
    })
}

/// Returns true when `state` is a *valid* termination: every process is in a
/// marked end location and all channels are empty. A state with no enabled
/// steps that is not a valid termination is a deadlock.
pub(crate) fn is_valid_end_state(program: &Program, state: &State) -> bool {
    state
        .procs
        .iter()
        .enumerate()
        .all(|(pi, ps)| program.processes[pi].end_locs.contains(&ps.loc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    /// sender -> (rendezvous) -> receiver, binding the payload.
    fn rendezvous_program() -> Program {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("ch", 0, 2);
        let mut sender = ProcessBuilder::new("sender");
        let s0 = sender.location("send");
        let s1 = sender.location("done");
        sender.mark_end(s1);
        sender.transition(
            s0,
            s1,
            Guard::always(),
            Action::send(ch, vec![41.into(), expr::self_pid()]),
            "send m",
        );
        prog.add_process(sender).unwrap();

        let mut receiver = ProcessBuilder::new("receiver");
        let got = receiver.local("got", 0);
        let r0 = receiver.location("recv");
        let r1 = receiver.location("done");
        receiver.mark_end(r1);
        receiver.transition(
            r0,
            r1,
            Guard::always(),
            Action::recv(
                ch,
                vec![FieldPat::Any, FieldPat::Any],
                vec![(0, got.into())],
            ),
            "recv m",
        );
        prog.add_process(receiver).unwrap();
        prog.build().unwrap()
    }

    #[test]
    fn rendezvous_fires_both_processes_atomically() {
        let program = rendezvous_program();
        let s0 = State::initial(&program);
        let steps = enabled_steps(&program, &s0).unwrap();
        assert_eq!(steps.len(), 1);
        let step = steps[0];
        assert_eq!(step.proc, ProcId(0));
        assert_eq!(step.partner, Some((ProcId(1), 0)));

        let applied = apply_step(&program, &s0, step).unwrap();
        assert_eq!(applied.state.procs[0].loc, 1);
        assert_eq!(applied.state.procs[1].loc, 1);
        // Payload bound into the receiver's local.
        assert_eq!(applied.state.procs[1].locals[0], 41);
        // Channel remains empty.
        assert!(applied.state.chans[0].is_empty());
        assert!(is_valid_end_state(&program, &applied.state));
        // One rendezvous event.
        assert_eq!(applied.events.len(), 1);
        assert!(matches!(
            applied.events[0].kind(),
            EventKind::Rendezvous { .. }
        ));
    }

    #[test]
    fn rendezvous_receive_does_not_fire_alone() {
        let program = rendezvous_program();
        let mut state = State::initial(&program);
        // Move the sender to done manually; only the receiver remains.
        state.procs[0].loc = 1;
        let steps = enabled_steps(&program, &state).unwrap();
        assert!(steps.is_empty());
        assert!(!is_valid_end_state(&program, &state));
    }

    fn buffered_program(capacity: usize) -> (Program, ChanId) {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("buf", capacity, 1);
        let mut sender = ProcessBuilder::new("sender");
        let s0 = sender.location("loop");
        sender.mark_end(s0);
        sender.transition(
            s0,
            s0,
            Guard::always(),
            Action::send(ch, vec![7.into()]),
            "send",
        );
        prog.add_process(sender).unwrap();
        let mut receiver = ProcessBuilder::new("receiver");
        let r0 = receiver.location("loop");
        receiver.mark_end(r0);
        receiver.transition(r0, r0, Guard::always(), Action::recv_any(ch, 1), "recv");
        prog.add_process(receiver).unwrap();
        (prog.build().unwrap(), ch)
    }

    #[test]
    fn buffered_send_blocks_when_full() {
        let (program, ch) = buffered_program(2);
        let mut state = State::initial(&program);
        state.chans[ch.index()].push_back(Msg::new(vec![1]));
        state.chans[ch.index()].push_back(Msg::new(vec![2]));
        let steps = enabled_steps(&program, &state).unwrap();
        // Sender blocked; only the receiver can act.
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].proc, ProcId(1));
    }

    #[test]
    fn buffered_receive_takes_fifo_order() {
        let (program, ch) = buffered_program(2);
        let mut state = State::initial(&program);
        state.chans[ch.index()].push_back(Msg::new(vec![1]));
        state.chans[ch.index()].push_back(Msg::new(vec![2]));
        let step = Step {
            proc: ProcId(1),
            trans: 0,
            partner: None,
        };
        let applied = apply_step(&program, &state, step).unwrap();
        assert_eq!(applied.state.chans[ch.index()].len(), 1);
        assert_eq!(applied.state.chans[ch.index()][0], Msg::new(vec![2]));
    }

    #[test]
    fn head_policy_blocks_on_nonmatching_head() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("buf", 2, 1);
        let mut receiver = ProcessBuilder::new("receiver");
        let r0 = receiver.location("loop");
        receiver.transition(
            r0,
            r0,
            Guard::always(),
            Action::recv(ch, vec![FieldPat::lit(9)], vec![]),
            "recv 9",
        );
        prog.add_process(receiver).unwrap();
        let program = prog.build().unwrap();
        let mut state = State::initial(&program);
        state.chans[0].push_back(Msg::new(vec![1]));
        state.chans[0].push_back(Msg::new(vec![9]));
        assert!(enabled_steps(&program, &state).unwrap().is_empty());
    }

    #[test]
    fn first_match_policy_skips_nonmatching_head() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("buf", 2, 1);
        let mut receiver = ProcessBuilder::new("receiver");
        let r0 = receiver.location("loop");
        receiver.transition(
            r0,
            r0,
            Guard::always(),
            Action::Recv {
                chan: ch,
                pattern: vec![FieldPat::lit(9)],
                binds: vec![],
                policy: RecvPolicy::FirstMatch,
            },
            "recv 9 anywhere",
        );
        prog.add_process(receiver).unwrap();
        let program = prog.build().unwrap();
        let mut state = State::initial(&program);
        state.chans[0].push_back(Msg::new(vec![1]));
        state.chans[0].push_back(Msg::new(vec![9]));
        let steps = enabled_steps(&program, &state).unwrap();
        assert_eq!(steps.len(), 1);
        let applied = apply_step(&program, &state, steps[0]).unwrap();
        // The non-matching head stays; the matching message is gone.
        assert_eq!(applied.state.chans[0].len(), 1);
        assert_eq!(applied.state.chans[0][0], Msg::new(vec![1]));
    }

    #[test]
    fn self_pid_pattern_routes_to_the_right_receiver() {
        // One sender tags messages with a target pid; two receivers match on
        // their own pid. Only the addressed receiver may synchronize.
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("ch", 0, 1);
        let mut sender = ProcessBuilder::new("sender");
        let s0 = sender.location("send");
        let s1 = sender.location("done");
        sender.mark_end(s1);
        // Address process 2 (the second receiver).
        sender.transition(
            s0,
            s1,
            Guard::always(),
            Action::send(ch, vec![2.into()]),
            "send to pid 2",
        );
        prog.add_process(sender).unwrap();
        for name in ["rcv1", "rcv2"] {
            let mut r = ProcessBuilder::new(name);
            let r0 = r.location("recv");
            let r1 = r.location("done");
            r.mark_end(r1);
            r.transition(
                r0,
                r1,
                Guard::always(),
                Action::recv(ch, vec![FieldPat::self_pid()], vec![]),
                "recv mine",
            );
            prog.add_process(r).unwrap();
        }
        let program = prog.build().unwrap();
        let state = State::initial(&program);
        let steps = enabled_steps(&program, &state).unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].partner, Some((ProcId(2), 0)));
    }

    #[test]
    fn failing_assert_is_reported() {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("x", 3);
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("check");
        let s1 = p.location("done");
        p.mark_end(s1);
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::assert(expr::lt(expr::global(g), 3.into()), "x must stay below 3"),
            "assert x<3",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let state = State::initial(&program);
        let steps = enabled_steps(&program, &state).unwrap();
        let applied = apply_step(&program, &state, steps[0]).unwrap();
        assert_eq!(
            applied.assertion_failure.as_deref(),
            Some("x must stay below 3")
        );
    }

    #[test]
    fn native_guard_and_op_work_on_locals() {
        use crate::program::{NativeGuard, NativeOp};
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let _n = p.local("n", 2);
        let s0 = p.location("loop");
        p.transition(
            s0,
            s0,
            Guard::native(NativeGuard::new("n>0", |l| l[0] > 0)),
            Action::Native(NativeOp::new("decrement", |l| l[0] -= 1)),
            "dec",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let mut state = State::initial(&program);
        for _ in 0..2 {
            let steps = enabled_steps(&program, &state).unwrap();
            assert_eq!(steps.len(), 1);
            state = apply_step(&program, &state, steps[0]).unwrap().state;
        }
        // n reached 0: the native guard now disables the transition.
        assert!(enabled_steps(&program, &state).unwrap().is_empty());
    }

    #[test]
    fn eval_error_is_surfaced_not_panicked() {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("x", 0);
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::when(expr::eq(expr::div(1.into(), expr::global(g)), 1.into())),
            Action::Skip,
            "divide by x",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let state = State::initial(&program);
        let err = enabled_steps(&program, &state).unwrap_err();
        assert!(matches!(err, KernelError::Eval { .. }));
        assert!(err.to_string().contains("divide by x"));
    }

    #[test]
    fn states_hash_by_content() {
        use std::collections::HashSet;
        let program = rendezvous_program();
        let a = State::initial(&program);
        let b = State::initial(&program);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn state_view_accessors() {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("flag", 5);
        let ch = prog.channel("c", 3, 1);
        let mut p = ProcessBuilder::new("p");
        let l = p.local("v", 9);
        let s0 = p.location("home");
        p.mark_end(s0);
        p.transition(s0, s0, Guard::always(), Action::Skip, "noop");
        let pid = prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let mut state = State::initial(&program);
        state.chans[ch.index()].push_back(Msg::new(vec![4]));
        let view = StateView::new(&program, &state);
        assert_eq!(view.global(g), 5);
        assert_eq!(view.global_by_name("flag"), Some(5));
        assert_eq!(view.global_by_name("nope"), None);
        assert_eq!(view.location_name(pid), "home");
        assert_eq!(view.local(pid, l.index()), 9);
        assert_eq!(view.channel_len(ch), 1);
        assert_eq!(view.channel_contents(ch).next(), Some(&Msg::new(vec![4])));
    }
}
