//! Structured attempt outcomes for supervised verification.
//!
//! A long-running verification service (the `pnp-serve` daemon) runs each
//! job attempt under `catch_unwind` with budgets, a cancellation token,
//! and checkpointing, then has to decide what to do with whatever came
//! back: report a verdict, report partial coverage, retry from the last
//! snapshot, or fail the job permanently. That decision hinges on a
//! *classification* the kernel is best placed to make — which failures
//! are deterministic properties of the model (retrying reproduces them
//! bit for bit) and which are environmental (a retry from the last
//! checkpoint may well succeed).
//!
//! [`JobOutcome`] is that classification, and [`FailureClass`] the
//! transient/permanent split underneath it. The supervisor's own policy
//! (how many retries, what backoff, how watchdog cancellations differ
//! from user cancellations) stays in the service; the kernel only states
//! facts about the attempt.

use std::any::Any;

use crate::explore::BudgetKind;
use crate::state::KernelError;

/// How a failed verification attempt should be treated by a supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Environmental or isolated: a panic, an I/O hiccup while storing a
    /// checkpoint. Retrying — ideally resuming from the last snapshot —
    /// may succeed, and loses nothing when it does not.
    Transient,
    /// A deterministic property of the model or the request: a broken
    /// expression, an unresolvable proposition, a malformed formula.
    /// Retrying reproduces the same failure; fail the job instead.
    Permanent,
}

/// The structured outcome of one supervised verification attempt.
///
/// Build one with [`JobOutcome::from_budget`] (the attempt stopped on a
/// search budget), [`JobOutcome::classify_error`] (the attempt returned a
/// [`KernelError`]), or [`JobOutcome::classify_panic`] (the attempt
/// panicked and `catch_unwind` caught it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every property reached a definitive verdict (holds, holds modulo
    /// hashing, or violated). The job is done; report the verdicts.
    Conclusive,
    /// A client-requested budget tripped. Partial coverage is a
    /// *deterministic* function of the request: retrying under the same
    /// budget trips it again, so the job finishes as inconclusive with
    /// its partial statistics rather than being retried.
    OutOfBudget(
        /// The budget that stopped the search.
        BudgetKind,
    ),
    /// The attempt was cancelled through its [`crate::CancelToken`]. Only
    /// the caller knows why it cancelled — a watchdog deadline (retry
    /// from the flushed snapshot), a drain (requeue), or a user request
    /// (stop) — so cancellation classifies as neither success nor
    /// failure here.
    Interrupted,
    /// The attempt failed outright; `class` says whether a retry can
    /// help.
    Failed {
        /// Transient (retry from the last checkpoint) or permanent
        /// (fail the job).
        class: FailureClass,
        /// A human-readable reason, e.g. the panic message or the
        /// kernel error rendering.
        reason: String,
    },
}

impl JobOutcome {
    /// Classifies a budget stop: cancellation becomes
    /// [`JobOutcome::Interrupted`] (the supervisor knows why it
    /// cancelled), every real budget becomes
    /// [`JobOutcome::OutOfBudget`].
    pub fn from_budget(budget: BudgetKind) -> JobOutcome {
        match budget {
            BudgetKind::Cancelled => JobOutcome::Interrupted,
            other => JobOutcome::OutOfBudget(other),
        }
    }

    /// Classifies a [`KernelError`] from a failed attempt.
    ///
    /// Model errors ([`KernelError::Eval`], an unknown proposition, a
    /// malformed LTL formula) are deterministic — the model itself is
    /// broken — and classify as [`FailureClass::Permanent`]. Snapshot
    /// storage errors are I/O and classify as
    /// [`FailureClass::Transient`]: the disk may recover, and the search
    /// itself was healthy.
    pub fn classify_error(error: &KernelError) -> JobOutcome {
        let class = match error {
            KernelError::Eval { .. }
            | KernelError::UnknownProposition { .. }
            | KernelError::LtlParse { .. } => FailureClass::Permanent,
            KernelError::Snapshot { .. } => FailureClass::Transient,
        };
        JobOutcome::Failed {
            class,
            reason: error.to_string(),
        }
    }

    /// Classifies a caught panic payload (from
    /// [`std::panic::catch_unwind`]) as a transient failure carrying the
    /// panic message.
    ///
    /// Panics are treated as transient: the kernel itself never panics on
    /// malformed input (that is a tested contract), so a panic in an
    /// attempt is either an injected fault, a native predicate bug, or an
    /// environmental problem — and the last checkpoint is still valid, so
    /// a retry resumes instead of recomputing.
    pub fn classify_panic(payload: &(dyn Any + Send)) -> JobOutcome {
        JobOutcome::Failed {
            class: FailureClass::Transient,
            reason: format!("worker panicked: {}", panic_message(payload)),
        }
    }

    /// `true` when a supervisor should retry the attempt (from its last
    /// checkpoint): transient failures only. Interruption is not
    /// retryable *here* — the canceller knows better.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            JobOutcome::Failed {
                class: FailureClass::Transient,
                ..
            }
        )
    }
}

/// Renders a panic payload as a message: the `&str` / `String` payloads
/// panics normally carry, or a placeholder for anything else.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::EvalError;

    #[test]
    fn budget_stops_classify() {
        assert_eq!(
            JobOutcome::from_budget(BudgetKind::States),
            JobOutcome::OutOfBudget(BudgetKind::States)
        );
        assert_eq!(
            JobOutcome::from_budget(BudgetKind::Cancelled),
            JobOutcome::Interrupted
        );
        assert!(!JobOutcome::from_budget(BudgetKind::Time).is_retryable());
    }

    #[test]
    fn model_errors_are_permanent_io_is_transient() {
        let eval = KernelError::Eval {
            process: "p".into(),
            transition: "t".into(),
            error: EvalError::DivisionByZero,
        };
        let JobOutcome::Failed { class, reason } = JobOutcome::classify_error(&eval) else {
            panic!("expected Failed");
        };
        assert_eq!(class, FailureClass::Permanent);
        assert!(reason.contains("division"), "{reason}");

        let io = KernelError::Snapshot {
            message: "disk full".into(),
        };
        assert!(JobOutcome::classify_error(&io).is_retryable());
    }

    #[test]
    fn panics_are_transient_with_message() {
        let payload = std::panic::catch_unwind(|| panic!("injected fault {}", 7)).unwrap_err();
        let outcome = JobOutcome::classify_panic(payload.as_ref());
        assert!(outcome.is_retryable());
        let JobOutcome::Failed { reason, .. } = outcome else {
            panic!("expected Failed");
        };
        assert!(reason.contains("injected fault 7"), "{reason}");
    }
}
