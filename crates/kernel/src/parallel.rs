//! Level-synchronized parallel safety search: N scoped worker threads
//! with per-worker work-stealing deques over a sharded visited set.
//!
//! The search processes the BFS frontier one depth level at a time. A
//! level's jobs are dealt round-robin into per-worker deques; each worker
//! pops from the front of its own deque and, when empty, steals from the
//! back of a victim's. No new work is added to the level while it runs
//! (discoveries belong to the *next* level), so termination per level is
//! simply "all deques drained", and the join at the end of the
//! [`std::thread::scope`] is the level barrier.
//!
//! Level synchronization is what makes the parallel kernel *agree* with
//! the sequential one instead of merely approximating it:
//!
//! * the explored subgraph (with partial-order reduction, whose ample
//!   sets are a deterministic function of the state) is identical, so a
//!   completed exhaustive run reports the same `unique_states`, `steps`,
//!   and `max_depth` as the sequential kernel;
//! * counterexamples are still shortest: a violation found at level `d`
//!   ends the search before any deeper level starts;
//! * checkpoints are only cut at level barriers, when all workers are
//!   drained, so the snapshot frontier is canonical (sorted by depth and
//!   state id) and resumes under either the sequential or the parallel
//!   kernel.
//!
//! The first worker to find a counterexample under an exact backend trips
//! the shared stop flag and cancels its peers through a [`CancelToken`];
//! remaining jobs drain into the level's leftovers. Under a lossy backend
//! violations are *pending* until the coordinator exact-replay-validates
//! them at the barrier — a hash-collision artifact is dropped (counted in
//! `replay_rejected`) and the search continues, so the parallel kernel
//! inherits the sequential guarantee that lossy backends never fabricate
//! a violation.
//!
//! Budgets aggregate across workers: `max_states` is charged through a
//! single atomic [`StateBudget`] at the same counting point as the
//! sequential kernel (after deduplication, under the shard lock), time
//! and cancellation are polled per job, and the memory estimate is
//! checked at level boundaries.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::explore::{
    approx_state_bytes, eval_invariants, flush_checkpoint, hit_outcome, rebuild_trace, BudgetKind,
    CancelToken, Checker, InvariantHit, SafetyChecks, SafetyOutcome, SafetyReport, SearchStats,
};
use crate::program::Program;
use crate::reduction::{ample_subset, LocalLocations};
use crate::snapshot::{program_fingerprint, Snapshot, VisitedPayload};
use crate::state::{
    apply_step, enabled_steps, is_valid_end_state, KernelError, State, StateView, Step,
};
use crate::trace::Trace;
use crate::visited::{
    AnySharedVisited, ShardedBitstateVisited, ShardedCompactVisited, ShardedExactVisited,
    SharedInsert, SharedVisitedSet, StateBudget, VisitedKind,
};

/// Stop-flag codes shared by a level's workers; the first cause wins.
const RUNNING: u8 = 0;
const STOP_STATES: u8 = 1;
const STOP_TIME: u8 = 2;
const STOP_CANCELLED: u8 = 3;
const STOP_VIOLATION: u8 = 4;
const STOP_ERROR: u8 = 5;

/// Records `code` as the stop cause unless one is already set.
fn trip(stop: &AtomicU8, code: u8) {
    let _ = stop.compare_exchange(RUNNING, code, Ordering::SeqCst, Ordering::SeqCst);
}

/// One unit of work: an interned state id and its payload.
type Job = (usize, Arc<State>);

/// A violation observed by a worker, resolved (trace rebuilt and, under a
/// lossy backend, exact-replay-validated) by the coordinator at the level
/// barrier.
enum PendingViolation {
    /// `id` has no enabled steps and is not a valid end state.
    Deadlock { id: usize, state: Arc<State> },
    /// Applying `step` from `parent` failed an in-model assertion.
    Assertion {
        parent: usize,
        parent_state: Arc<State>,
        step: Step,
        message: String,
    },
    /// This worker's `disc`-th discovery violates an invariant.
    Invariant { disc: usize, hit: InvariantHit },
}

/// Everything one worker produced during a level.
#[derive(Default)]
struct WorkerOut {
    /// Edges explored (mirrors [`SearchStats::steps`]; rolled back on a
    /// states-budget trip exactly like the sequential kernel).
    steps: usize,
    /// Newly interned states: (state, parent id, discovering step). Ids
    /// are assigned by the coordinator when the level is merged.
    discoveries: Vec<(Arc<State>, usize, Step)>,
    /// Jobs drained without expansion (stop flag set, or the job that
    /// tripped the states budget and must be re-expanded on resume).
    leftover: Vec<Job>,
    /// Violations pending coordinator resolution.
    violations: Vec<PendingViolation>,
    /// Some job sat at the `max_depth` bound and was not expanded.
    depth_trimmed: bool,
    /// At least one job was expanded (for `max_depth` stats parity).
    expanded: bool,
    /// First model error this worker hit.
    error: Option<KernelError>,
}

/// Shared read-only context for one level's workers.
struct LevelCtx<'a> {
    program: &'a Program,
    checks: &'a SafetyChecks,
    reduction: Option<&'a LocalLocations>,
    visited: &'a AnySharedVisited,
    budget: &'a StateBudget,
    stop: &'a AtomicU8,
    /// Cancelled by the first worker that confirms a violation, so peers
    /// stop expanding immediately.
    peer_cancel: &'a CancelToken,
    /// The caller's cooperative cancellation token, if any.
    user_cancel: Option<&'a CancelToken>,
    deadline: Option<Instant>,
    depth: usize,
    max_depth: Option<usize>,
    lossy: bool,
}

/// Pops the next job: front of the worker's own deque, else steal from
/// the back of the first non-empty victim. `None` means the level is
/// drained (no new jobs are ever added to a running level).
fn pop_job(w: usize, deques: &[Mutex<VecDeque<Job>>]) -> Option<Job> {
    if let Some(job) = deques[w].lock().expect("deque poisoned").pop_front() {
        return Some(job);
    }
    for i in 1..deques.len() {
        let victim = (w + i) % deques.len();
        if let Some(job) = deques[victim].lock().expect("deque poisoned").pop_back() {
            return Some(job);
        }
    }
    None
}

/// One worker's loop over a level.
fn run_worker(ctx: &LevelCtx<'_>, w: usize, deques: &[Mutex<VecDeque<Job>>]) -> WorkerOut {
    let mut out = WorkerOut::default();
    while let Some((id, state)) = pop_job(w, deques) {
        // Once any stop cause is set, remaining jobs drain into the
        // leftovers so the checkpoint frontier stays complete.
        if ctx.stop.load(Ordering::SeqCst) != RUNNING || ctx.peer_cancel.is_cancelled() {
            out.leftover.push((id, state));
            continue;
        }
        if ctx.user_cancel.is_some_and(|c| c.is_cancelled()) {
            trip(ctx.stop, STOP_CANCELLED);
            out.leftover.push((id, state));
            continue;
        }
        if let Some(deadline) = ctx.deadline {
            if Instant::now() >= deadline {
                trip(ctx.stop, STOP_TIME);
                out.leftover.push((id, state));
                continue;
            }
        }
        if ctx.max_depth.is_some_and(|limit| ctx.depth >= limit) {
            // The state itself was checked when it was discovered; only
            // its expansion is skipped (sequential parity).
            out.depth_trimmed = true;
            continue;
        }
        if let Err(error) = expand(ctx, id, &state, &mut out) {
            trip(ctx.stop, STOP_ERROR);
            out.error = Some(error);
            out.leftover.push((id, state));
        }
    }
    out
}

/// Expands one state: enabled steps, deadlock check, ample-set reduction,
/// successor interning, and per-successor safety checks — the parallel
/// mirror of the sequential kernel's expansion loop.
fn expand(
    ctx: &LevelCtx<'_>,
    id: usize,
    state: &Arc<State>,
    out: &mut WorkerOut,
) -> Result<(), KernelError> {
    let mut steps = enabled_steps(ctx.program, state)?;
    out.expanded = true;

    if steps.is_empty() {
        if ctx.checks.deadlock && !is_valid_end_state(ctx.program, state) {
            out.violations.push(PendingViolation::Deadlock {
                id,
                state: Arc::clone(state),
            });
            if !ctx.lossy {
                trip(ctx.stop, STOP_VIOLATION);
                ctx.peer_cancel.cancel();
            }
        }
        return Ok(());
    }
    if let Some(analysis) = ctx.reduction {
        steps = ample_subset(analysis, state, steps);
    }

    let mut steps_this_expansion = 0;
    for step in steps {
        out.steps += 1;
        steps_this_expansion += 1;
        let applied = apply_step(ctx.program, state, step)?;

        // Assertions fire on the edge: report even when the target state
        // was already visited. The successor is skipped either way.
        if let Some(message) = applied.assertion_failure {
            out.violations.push(PendingViolation::Assertion {
                parent: id,
                parent_state: Arc::clone(state),
                step,
                message,
            });
            if !ctx.lossy {
                trip(ctx.stop, STOP_VIOLATION);
                ctx.peer_cancel.cancel();
                return Ok(());
            }
            continue;
        }

        let next = Arc::new(applied.state);
        if ctx.visited.contains(&next) {
            continue;
        }
        match ctx.visited.insert_if_new(&next, ctx.budget) {
            SharedInsert::Duplicate => continue,
            SharedInsert::BudgetExhausted => {
                // Mirror the sequential kernel's trip semantics: roll the
                // partial expansion's step count back and requeue this
                // state, so a resumed run re-expands it and ends up
                // counting exactly the steps an uninterrupted run would.
                out.steps -= steps_this_expansion;
                out.leftover.push((id, Arc::clone(state)));
                trip(ctx.stop, STOP_STATES);
                return Ok(());
            }
            SharedInsert::Inserted => {
                let disc = out.discoveries.len();
                out.discoveries.push((Arc::clone(&next), id, step));
                if let Some(hit) = eval_invariants(ctx.checks, &StateView::new(ctx.program, &next))?
                {
                    out.violations
                        .push(PendingViolation::Invariant { disc, hit });
                    if !ctx.lossy {
                        trip(ctx.stop, STOP_VIOLATION);
                        ctx.peer_cancel.cancel();
                        return Ok(());
                    }
                }
            }
        }
    }
    Ok(())
}

/// Captures the shared visited-set backend's content for a snapshot, in
/// the exact format the sequential kernel writes (shared and sequential
/// backends use the same hash family, so snapshots interoperate).
fn shared_visited_payload(visited: &AnySharedVisited) -> VisitedPayload {
    match visited {
        AnySharedVisited::Exact(_) => VisitedPayload::Exact,
        AnySharedVisited::Compact(set) => VisitedPayload::Compact(set.snapshot_hashes()),
        AnySharedVisited::Bitstate(set) => {
            let (arena, inserted) = set.snapshot_arena();
            VisitedPayload::Bitstate {
                arena,
                inserted: inserted as u64,
            }
        }
    }
}

/// Rebuilds a *sharded* visited set from a snapshot (which may have been
/// written by either kernel). Exact sets replay every state's discovery
/// chain; lossy backends restore their serialized hashes directly.
fn restore_shared_visited(
    program: &Program,
    snapshot: &Snapshot,
    per_state_bytes: usize,
) -> Result<AnySharedVisited, KernelError> {
    match &snapshot.visited {
        VisitedPayload::Exact => {
            let set = ShardedExactVisited::new(per_state_bytes);
            let unlimited = StateBudget::unlimited();
            let mut states: Vec<Arc<State>> = Vec::with_capacity(snapshot.parents.len());
            for (id, parent) in snapshot.parents.iter().enumerate() {
                let state = match parent {
                    None if id == 0 => Arc::new(State::initial(program)),
                    None => {
                        return Err(KernelError::Snapshot {
                            message: format!("state {id} has no parent but is not the root"),
                        })
                    }
                    Some((parent_id, step)) => {
                        let applied = apply_step(program, &states[*parent_id], *step)?;
                        Arc::new(applied.state)
                    }
                };
                set.insert_if_new(&state, &unlimited);
                states.push(state);
            }
            Ok(AnySharedVisited::Exact(set))
        }
        VisitedPayload::Compact(hashes) => Ok(AnySharedVisited::Compact(
            ShardedCompactVisited::from_hashes(hashes.iter().copied()),
        )),
        VisitedPayload::Bitstate { arena, inserted } => {
            let VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } = snapshot.kind
            else {
                return Err(KernelError::Snapshot {
                    message: "bitstate payload under a non-bitstate visited kind".to_string(),
                });
            };
            Ok(AnySharedVisited::Bitstate(
                ShardedBitstateVisited::from_arena(
                    arena_bytes,
                    hashes,
                    arena.clone(),
                    usize::try_from(*inserted).unwrap_or(usize::MAX),
                ),
            ))
        }
    }
}

/// The frontier in canonical (depth, id) order, as stored in snapshots:
/// a valid sequential BFS queue, so a parallel checkpoint resumes under
/// either kernel.
fn canonical_frontier(pending: &BTreeMap<usize, Vec<Job>>) -> Vec<(usize, State)> {
    let mut frontier = Vec::new();
    for jobs in pending.values() {
        let mut level: Vec<&Job> = jobs.iter().collect();
        level.sort_by_key(|job| job.0);
        frontier.extend(level.into_iter().map(|job| (job.0, (*job.1).clone())));
    }
    frontier
}

/// The parallel counterpart of [`Checker::check_safety`], dispatched to
/// when [`crate::SearchConfig::threads`] is greater than one.
pub(crate) fn check_safety_parallel(
    checker: &Checker<'_>,
    checks: &SafetyChecks,
) -> Result<SafetyReport, KernelError> {
    let start = Instant::now();
    let program = checker.program;
    let config = checker.config;
    let threads = config.threads;

    let reduction = (config.partial_order_reduction
        && checks.invariants.iter().all(|(_, p)| p.is_expr_only()))
    .then(|| LocalLocations::analyze(program));

    let per_state_bytes = approx_state_bytes(program);
    let lossy = config.visited.is_lossy();
    let fingerprint = if checker.sink.is_some() {
        program_fingerprint(program)
    } else {
        0
    };

    let mut stats = SearchStats::default();
    let mut base_elapsed = Duration::ZERO;
    let visited: AnySharedVisited;
    let mut parents: Vec<Option<(usize, Step)>>;
    let mut depths: Vec<usize>;
    // Discovered-but-unexpanded jobs grouped by depth; processed one
    // (minimal-depth) level at a time. A fresh search holds a single
    // group; a resumed snapshot may hold two adjacent depths.
    let mut pending: BTreeMap<usize, Vec<Job>> = BTreeMap::new();

    if let Some(snapshot) = &checker.resume {
        visited = restore_shared_visited(program, snapshot, per_state_bytes)?;
        parents = snapshot.parents.clone();
        depths = snapshot.depths.clone();
        for (id, state) in &snapshot.frontier {
            pending
                .entry(depths[*id])
                .or_default()
                .push((*id, Arc::new(state.clone())));
        }
        stats.steps = snapshot.stats.steps as usize;
        stats.max_depth = snapshot.stats.max_depth as usize;
        stats.peak_frontier = snapshot.stats.peak_frontier as usize;
        stats.approx_memory_bytes = snapshot.stats.approx_memory_bytes as usize;
        stats.replay_rejected = snapshot.stats.replay_rejected as usize;
        base_elapsed = Duration::from_nanos(snapshot.stats.elapsed_nanos);
    } else {
        let initial = Arc::new(State::initial(program));
        if let Some(hit) = eval_invariants(checks, &StateView::new(program, &initial))? {
            return Ok(SafetyReport {
                outcome: hit_outcome(hit, Trace::default()),
                stats: SearchStats {
                    unique_states: 1,
                    elapsed: start.elapsed(),
                    ..stats
                },
                truncated: false,
            });
        }
        visited = AnySharedVisited::new(config.visited, per_state_bytes);
        visited.insert_unbudgeted(&initial);
        parents = vec![None];
        depths = vec![0];
        pending.insert(0, vec![(0, initial)]);
        stats.peak_frontier = 1;
    }

    let budget = StateBudget::new(parents.len(), config.max_states);
    let deadline = config.max_time.map(|limit| {
        // A resumed run may already have consumed (part of) the budget.
        start + limit.checked_sub(base_elapsed).unwrap_or(Duration::ZERO)
    });

    let mut tripped: Option<BudgetKind> = None;
    let mut depth_trimmed = false;
    let mut states_at_last_flush = parents.len();

    'levels: while let Some((&depth, _)) = pending.first_key_value() {
        // Level-boundary budget checks: the parallel kernel's equivalent
        // of the sequential per-pop checkpoint (coarser, but every
        // boundary has a complete, canonical frontier to snapshot).
        let frontier_len: usize = pending.values().map(Vec::len).sum();
        let mem = match &visited {
            AnySharedVisited::Exact(_) => {
                visited.approx_bytes() + frontier_len * std::mem::size_of::<usize>()
            }
            _ => {
                let parent_entry =
                    std::mem::size_of::<Option<(usize, Step)>>() + std::mem::size_of::<usize>();
                visited.approx_bytes()
                    + parents.len() * parent_entry
                    + frontier_len * per_state_bytes
            }
        };
        stats.approx_memory_bytes = stats.approx_memory_bytes.max(mem);
        if config.max_memory_bytes.is_some_and(|limit| mem >= limit) {
            tripped = Some(BudgetKind::Memory);
            break 'levels;
        }
        if checker.checkpoint_every > 0
            && parents.len() - states_at_last_flush >= checker.checkpoint_every
        {
            if let Some(sink) = &checker.sink {
                stats.unique_states = parents.len();
                flush_checkpoint(
                    sink,
                    fingerprint,
                    &checker.tag,
                    visited.kind(),
                    shared_visited_payload(&visited),
                    &parents,
                    &depths,
                    canonical_frontier(&pending),
                    &stats,
                    base_elapsed + start.elapsed(),
                )?;
                states_at_last_flush = parents.len();
            }
        }

        let jobs = pending.remove(&depth).expect("minimal depth present");

        // Deal the level round-robin into per-worker deques and run it.
        let deques: Vec<Mutex<VecDeque<Job>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            deques[i % threads]
                .lock()
                .expect("deque poisoned")
                .push_back(job);
        }
        let stop = AtomicU8::new(RUNNING);
        let peer_cancel = CancelToken::new();
        let ctx = LevelCtx {
            program,
            checks,
            reduction: reduction.as_ref(),
            visited: &visited,
            budget: &budget,
            stop: &stop,
            peer_cancel: &peer_cancel,
            user_cancel: checker.cancel.as_ref(),
            deadline,
            depth,
            max_depth: config.max_depth,
            lossy,
        };
        let mut outs: Vec<WorkerOut> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let ctx = &ctx;
                    let deques = &deques;
                    scope.spawn(move || run_worker(ctx, w, deques))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });

        // --- the level barrier: merge worker outputs ---
        for out in &mut outs {
            if let Some(error) = out.error.take() {
                return Err(error);
            }
        }
        stats.steps += outs.iter().map(|o| o.steps).sum::<usize>();
        depth_trimmed |= outs.iter().any(|o| o.depth_trimmed);
        if outs.iter().any(|o| o.expanded) {
            stats.max_depth = stats.max_depth.max(depth);
        }

        // Assign ids to discoveries, worker by worker; parent ids are
        // always smaller than child ids, preserving the snapshot replay
        // invariant.
        let mut offsets = Vec::with_capacity(threads);
        let mut next_jobs: Vec<Job> = Vec::new();
        for out in &outs {
            offsets.push(parents.len());
            for (state, parent, step) in &out.discoveries {
                let id = parents.len();
                parents.push(Some((*parent, *step)));
                depths.push(depth + 1);
                next_jobs.push((id, Arc::clone(state)));
            }
        }

        // Resolve pending violations: deadlocks first (their traces are
        // one step shorter than edge/successor violations found in the
        // same pass), then in worker order. Under a lossy backend each
        // candidate is exact-replay-validated; a rejected one is dropped
        // (counted in `replay_rejected`) and the search continues.
        let mut candidates: Vec<(usize, &PendingViolation)> = Vec::new();
        for (w, out) in outs.iter().enumerate() {
            for violation in &out.violations {
                candidates.push((w, violation));
            }
        }
        candidates.sort_by_key(|(_, v)| match v {
            PendingViolation::Deadlock { .. } => 0,
            _ => 1,
        });
        for (w, violation) in candidates {
            let resolved = match violation {
                PendingViolation::Deadlock { id, state } => {
                    rebuild_trace(program, &parents, *id, state, lossy)?
                        .map(|trace| SafetyOutcome::Deadlock { trace })
                }
                PendingViolation::Assertion {
                    parent,
                    parent_state,
                    step,
                    message,
                } => match rebuild_trace(program, &parents, *parent, parent_state, lossy)? {
                    Some(prefix) => {
                        let applied = apply_step(program, parent_state, *step)?;
                        let mut events = prefix.events().to_vec();
                        events.extend(applied.events);
                        Some(SafetyOutcome::AssertionFailed {
                            message: message.clone(),
                            trace: Trace::new(events),
                        })
                    }
                    None => None,
                },
                PendingViolation::Invariant { disc, hit } => {
                    let (state, _, _) = &outs[w].discoveries[*disc];
                    rebuild_trace(program, &parents, offsets[w] + *disc, state, lossy)?
                        .map(|trace| hit_outcome(hit.clone(), trace))
                }
            };
            match resolved {
                Some(outcome) => {
                    stats.unique_states = parents.len();
                    stats.elapsed = base_elapsed + start.elapsed();
                    return Ok(SafetyReport {
                        outcome,
                        stats,
                        truncated: false,
                    });
                }
                None => stats.replay_rejected += 1,
            }
        }

        // Requeue drained jobs at their own depth and push the next level.
        let mut leftover: Vec<Job> = outs.iter_mut().flat_map(|o| o.leftover.drain(..)).collect();
        if !leftover.is_empty() {
            leftover.sort_by_key(|job| job.0);
            pending.entry(depth).or_default().extend(leftover);
        }
        if !next_jobs.is_empty() {
            pending.entry(depth + 1).or_default().extend(next_jobs);
        }
        let frontier_len: usize = pending.values().map(Vec::len).sum();
        stats.peak_frontier = stats.peak_frontier.max(frontier_len);

        match stop.load(Ordering::SeqCst) {
            RUNNING => {}
            STOP_STATES => {
                tripped = Some(BudgetKind::States);
                break 'levels;
            }
            STOP_TIME => {
                tripped = Some(BudgetKind::Time);
                break 'levels;
            }
            STOP_CANCELLED => {
                tripped = Some(BudgetKind::Cancelled);
                break 'levels;
            }
            // A confirmed violation returned above; an exact-backend
            // violation always confirms, so reaching here means nothing
            // survived replay under a lossy backend — keep searching.
            STOP_VIOLATION => debug_assert!(lossy, "exact violation must have been reported"),
            other => debug_assert!(other == STOP_ERROR, "unknown stop code {other}"),
        }
    }

    // A depth-trimmed search that found nothing is still incomplete.
    if tripped.is_none() && depth_trimmed {
        tripped = Some(BudgetKind::Depth);
    }
    stats.unique_states = parents.len();
    stats.elapsed = base_elapsed + start.elapsed();
    let frontier_len: usize = pending.values().map(Vec::len).sum();
    let outcome = match tripped {
        Some(budget) => {
            // An interrupted search always flushes a final snapshot.
            if let Some(sink) = &checker.sink {
                flush_checkpoint(
                    sink,
                    fingerprint,
                    &checker.tag,
                    visited.kind(),
                    shared_visited_payload(&visited),
                    &parents,
                    &depths,
                    canonical_frontier(&pending),
                    &stats,
                    stats.elapsed,
                )?;
            }
            SafetyOutcome::LimitReached {
                budget,
                states_covered: parents.len(),
                frontier: frontier_len,
            }
        }
        None if lossy => SafetyOutcome::HoldsApprox {
            hash_mode: visited.kind(),
            states_visited: parents.len(),
            omission_probability: visited.omission_probability(),
        },
        None => SafetyOutcome::Holds,
    };
    Ok(SafetyReport {
        outcome,
        stats,
        truncated: tripped.is_some(),
    })
}
