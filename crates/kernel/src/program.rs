//! Program representation: channels, processes, guards, actions, builders.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::expression::Expr;

/// Identifies a channel within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId(pub(crate) usize);

/// Identifies a process within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) usize);

/// Identifies a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub(crate) usize);

/// Identifies a local variable within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub(crate) usize);

/// Identifies a control location within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub(crate) u32);

impl ChanId {
    /// The channel's index in declaration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `ChanId` from an index. The caller is responsible for
    /// keeping it in range of the program it is used with.
    pub fn from_index(index: usize) -> ChanId {
        ChanId(index)
    }
}

impl ProcId {
    /// The process's index in declaration order (its `_pid`).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `ProcId` from an index. The caller is responsible for
    /// keeping it in range of the program it is used with; out-of-range ids
    /// panic when dereferenced.
    pub fn from_index(index: usize) -> ProcId {
        ProcId(index)
    }
}

impl GlobalId {
    /// The global's index in declaration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `GlobalId` from an index. The caller is responsible
    /// for keeping it in range of the program it is used with.
    pub fn from_index(index: usize) -> GlobalId {
        GlobalId(index)
    }
}

impl LocalId {
    /// The local's slot index within its process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl Loc {
    /// The location's index within its process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A channel declaration.
///
/// Capacity `0` declares a rendezvous channel (Promela `[0]`): a send on it
/// only fires together with a matching receive in another process. Capacity
/// `n > 0` declares a bounded FIFO buffer; sends block (are disabled) while
/// the buffer is full.
#[derive(Debug, Clone)]
pub struct ChannelDecl {
    pub(crate) name: String,
    pub(crate) capacity: usize,
    pub(crate) arity: usize,
}

impl ChannelDecl {
    /// The channel's name (for traces and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The buffer capacity; `0` means rendezvous.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of integer fields in each message.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Whether this is a rendezvous (capacity 0) channel.
    pub fn is_rendezvous(&self) -> bool {
        self.capacity == 0
    }
}

/// A guard: the enabling condition of a transition.
///
/// A transition may fire only when its guard holds. The guard is the
/// conjunction of an optional [`Expr`] (over the process's locals, the
/// globals, and `_pid`) and an optional [`NativeGuard`] (over the locals
/// only, used by connector building blocks for buffer bookkeeping).
#[derive(Clone, Default)]
pub struct Guard {
    pub(crate) expr: Option<Expr>,
    pub(crate) native: Option<NativeGuard>,
}

impl Guard {
    /// The trivially-true guard.
    pub fn always() -> Guard {
        Guard::default()
    }

    /// A guard from an expression (nonzero = enabled).
    pub fn when(expr: Expr) -> Guard {
        Guard {
            expr: Some(expr),
            native: None,
        }
    }

    /// A guard from a native predicate over the process's locals.
    pub fn native(guard: NativeGuard) -> Guard {
        Guard {
            expr: None,
            native: Some(guard),
        }
    }

    /// Conjoins an expression onto this guard.
    pub fn and_when(mut self, expr: Expr) -> Guard {
        self.expr = Some(match self.expr {
            Some(e) => crate::expression::expr::and(e, expr),
            None => expr,
        });
        self
    }

    /// Conjoins a native predicate onto this guard.
    ///
    /// # Panics
    ///
    /// Panics if the guard already has a native predicate.
    pub fn and_native(mut self, guard: NativeGuard) -> Guard {
        assert!(
            self.native.is_none(),
            "guard already has a native predicate"
        );
        self.native = Some(guard);
        self
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.expr, &self.native) {
            (None, None) => write!(f, "Guard(true)"),
            (Some(e), None) => write!(f, "Guard({e})"),
            (None, Some(n)) => write!(f, "Guard(native:{})", n.name),
            (Some(e), Some(n)) => write!(f, "Guard({e} && native:{})", n.name),
        }
    }
}

/// The function type backing a [`NativeGuard`].
pub type NativeGuardFn = dyn Fn(&[i32]) -> bool + Send + Sync;

/// A named native predicate over a process's local variables.
///
/// Native guards let connector building blocks test conditions that would be
/// awkward in the expression language (e.g. "does the buffer contain a
/// message matching this selective-receive tag?").
#[derive(Clone)]
pub struct NativeGuard {
    pub(crate) name: String,
    pub(crate) f: Arc<NativeGuardFn>,
}

impl NativeGuard {
    /// Creates a native guard. The name appears in `Debug` output and
    /// diagnostics.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&[i32]) -> bool + Send + Sync + 'static,
    ) -> Self {
        NativeGuard {
            name: name.into(),
            f: Arc::new(f),
        }
    }
}

impl fmt::Debug for NativeGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeGuard({})", self.name)
    }
}

/// The function type backing a [`NativeOp`].
pub type NativeOpFn = dyn Fn(&mut [i32]) + Send + Sync;

/// A named native operation that mutates a process's local variables.
///
/// Used by channel building blocks to implement buffer operations (push,
/// pop, priority insert) over a contiguous block of locals. Native ops must
/// be pure functions of the locals: the kernel re-executes them freely
/// during state-space exploration.
#[derive(Clone)]
pub struct NativeOp {
    pub(crate) name: String,
    pub(crate) f: Arc<NativeOpFn>,
}

impl NativeOp {
    /// Creates a native operation. The name appears in traces.
    pub fn new(name: impl Into<String>, f: impl Fn(&mut [i32]) + Send + Sync + 'static) -> Self {
        NativeOp {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// The operation's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for NativeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeOp({})", self.name)
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A process-local variable.
    Local(usize),
    /// A local addressed as `base + offset`, with the offset evaluated at
    /// run time.
    LocalIdx(usize, Expr),
    /// A global variable.
    Global(usize),
}

impl From<LocalId> for LValue {
    fn from(id: LocalId) -> LValue {
        LValue::Local(id.0)
    }
}

impl From<GlobalId> for LValue {
    fn from(id: GlobalId) -> LValue {
        LValue::Global(id.0)
    }
}

impl LValue {
    /// An indexed local slot `base + offset`.
    pub fn local_idx(base: LocalId, offset: Expr) -> LValue {
        LValue::LocalIdx(base.0, offset)
    }
}

/// A pattern for one field of a received message.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldPat {
    /// Matches any value (Promela's `_` or a plain variable).
    Any,
    /// Matches when the field equals the expression, evaluated in the
    /// *receiving* process's context (Promela's constant or `eval(...)`).
    Eq(Expr),
}

impl FieldPat {
    /// Matches the receiving process's own id (Promela `eval(_pid)`).
    pub fn self_pid() -> FieldPat {
        FieldPat::Eq(Expr::SelfPid)
    }

    /// Matches a constant.
    pub fn lit(v: i32) -> FieldPat {
        FieldPat::Eq(Expr::Const(v))
    }
}

/// How a buffered receive selects a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecvPolicy {
    /// Promela `?`: only the message at the head of the buffer is
    /// considered; the receive is disabled if the head does not match.
    #[default]
    Head,
    /// Promela `??`: the first message anywhere in the buffer that matches
    /// is received.
    FirstMatch,
}

/// The effect of a transition.
#[derive(Debug, Clone)]
pub enum Action {
    /// No effect (a pure guard step).
    Skip,
    /// One or more assignments, applied left to right.
    Assign(Vec<(LValue, Expr)>),
    /// Sends a message; field expressions are evaluated in the sender's
    /// context. On a rendezvous channel this fires together with a matching
    /// receive; on a buffered channel it is disabled while the buffer is
    /// full.
    Send {
        /// The channel to send on.
        chan: ChanId,
        /// One expression per message field.
        msg: Vec<Expr>,
    },
    /// Receives a message matching `pattern`; `binds` copies message fields
    /// into variables.
    Recv {
        /// The channel to receive from.
        chan: ChanId,
        /// One pattern per message field.
        pattern: Vec<FieldPat>,
        /// `(field index, destination)` pairs applied on receipt.
        binds: Vec<(usize, LValue)>,
        /// Buffered-receive selection policy (ignored for rendezvous).
        policy: RecvPolicy,
    },
    /// Runs a native operation on the process's locals.
    Native(NativeOp),
    /// Evaluates the condition and reports a safety violation if it is
    /// false. The step itself always fires.
    Assert {
        /// Must evaluate nonzero.
        cond: Expr,
        /// Violation message for the report.
        message: String,
    },
}

impl Action {
    /// A single assignment.
    pub fn assign(lvalue: impl Into<LValue>, expr: Expr) -> Action {
        Action::Assign(vec![(lvalue.into(), expr)])
    }

    /// Several assignments applied atomically, left to right.
    pub fn assign_all(assignments: Vec<(LValue, Expr)>) -> Action {
        Action::Assign(assignments)
    }

    /// A send of `msg` on `chan`.
    pub fn send(chan: ChanId, msg: Vec<Expr>) -> Action {
        Action::Send { chan, msg }
    }

    /// A receive on `chan` that accepts any message and discards it.
    pub fn recv_any(chan: ChanId, arity: usize) -> Action {
        Action::Recv {
            chan,
            pattern: vec![FieldPat::Any; arity],
            binds: Vec::new(),
            policy: RecvPolicy::Head,
        }
    }

    /// A receive with explicit patterns and bindings (head policy).
    pub fn recv(chan: ChanId, pattern: Vec<FieldPat>, binds: Vec<(usize, LValue)>) -> Action {
        Action::Recv {
            chan,
            pattern,
            binds,
            policy: RecvPolicy::Head,
        }
    }

    /// An assertion.
    pub fn assert(cond: Expr, message: impl Into<String>) -> Action {
        Action::Assert {
            cond,
            message: message.into(),
        }
    }
}

/// One transition of a process automaton.
#[derive(Debug, Clone)]
pub struct Transition {
    pub(crate) guard: Guard,
    pub(crate) action: Action,
    pub(crate) target: u32,
    pub(crate) label: String,
}

impl Transition {
    /// The transition's human-readable label (shown in traces).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The transition's action.
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// The transition's target location.
    pub fn target(&self) -> Loc {
        Loc(self.target)
    }
}

/// A process definition: a finite automaton over locations with local
/// variables. Build one with [`ProcessBuilder`].
#[derive(Debug, Clone)]
pub struct ProcessDef {
    pub(crate) name: String,
    pub(crate) locals: Vec<(String, i32)>,
    pub(crate) loc_names: Vec<String>,
    pub(crate) init_loc: u32,
    pub(crate) end_locs: BTreeSet<u32>,
    /// Outgoing transitions, indexed by source location.
    pub(crate) outgoing: Vec<Vec<Transition>>,
}

impl ProcessDef {
    /// The process's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of local variables.
    pub fn local_count(&self) -> usize {
        self.locals.len()
    }

    /// The number of control locations.
    pub fn location_count(&self) -> usize {
        self.loc_names.len()
    }

    /// The number of transitions.
    pub fn transition_count(&self) -> usize {
        self.outgoing.iter().map(Vec::len).sum()
    }

    /// The name of a location.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn location_name(&self, loc: Loc) -> &str {
        &self.loc_names[loc.index()]
    }

    /// Whether `loc` is a valid end state (for deadlock detection: a process
    /// resting in an end location is not considered stuck).
    pub fn is_end_location(&self, loc: Loc) -> bool {
        self.end_locs.contains(&loc.0)
    }
}

/// Builder for a [`ProcessDef`].
///
/// # Example
///
/// ```
/// use pnp_kernel::{expr, Action, Guard, ProcessBuilder};
///
/// let mut p = ProcessBuilder::new("counter");
/// let n = p.local("n", 0);
/// let s0 = p.location("loop");
/// p.transition(
///     s0,
///     s0,
///     Guard::when(expr::lt(expr::local(n), 3.into())),
///     Action::assign(n, expr::local(n) + 1.into()),
///     "increment",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ProcessBuilder {
    def: ProcessDef,
}

impl ProcessBuilder {
    /// Starts building a process. The first location added becomes the
    /// initial location unless [`ProcessBuilder::set_initial`] is called.
    pub fn new(name: impl Into<String>) -> ProcessBuilder {
        ProcessBuilder {
            def: ProcessDef {
                name: name.into(),
                locals: Vec::new(),
                loc_names: Vec::new(),
                init_loc: 0,
                end_locs: BTreeSet::new(),
                outgoing: Vec::new(),
            },
        }
    }

    /// Declares a local variable with an initial value.
    pub fn local(&mut self, name: impl Into<String>, init: i32) -> LocalId {
        self.def.locals.push((name.into(), init));
        LocalId(self.def.locals.len() - 1)
    }

    /// Declares a contiguous block of `count` locals (a buffer), all
    /// initialized to `init`. Returns the id of the first slot.
    pub fn local_block(&mut self, name: impl Into<String>, count: usize, init: i32) -> LocalId {
        let name = name.into();
        let first = self.def.locals.len();
        for i in 0..count {
            self.def.locals.push((format!("{name}[{i}]"), init));
        }
        LocalId(first)
    }

    /// Adds a control location.
    pub fn location(&mut self, name: impl Into<String>) -> Loc {
        self.def.loc_names.push(name.into());
        self.def.outgoing.push(Vec::new());
        Loc((self.def.loc_names.len() - 1) as u32)
    }

    /// Sets the initial location (defaults to the first one added).
    pub fn set_initial(&mut self, loc: Loc) {
        self.def.init_loc = loc.0;
    }

    /// Marks a location as a valid end state for deadlock detection.
    pub fn mark_end(&mut self, loc: Loc) {
        self.def.end_locs.insert(loc.0);
    }

    /// Adds a transition from `from` to `to`.
    pub fn transition(
        &mut self,
        from: Loc,
        to: Loc,
        guard: Guard,
        action: Action,
        label: impl Into<String>,
    ) {
        self.def.outgoing[from.index()].push(Transition {
            guard,
            action,
            target: to.0,
            label: label.into(),
        });
    }

    /// The number of locations added so far.
    pub fn location_count(&self) -> usize {
        self.def.loc_names.len()
    }

    pub(crate) fn into_def(self) -> ProcessDef {
        self.def
    }
}

/// A complete, validated program. Build one with [`ProgramBuilder`].
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) channels: Vec<ChannelDecl>,
    pub(crate) processes: Vec<ProcessDef>,
    pub(crate) globals: Vec<(String, i32)>,
}

impl Program {
    /// The channel declarations, in declaration order.
    pub fn channels(&self) -> &[ChannelDecl] {
        &self.channels
    }

    /// The process definitions, in declaration order.
    pub fn processes(&self) -> &[ProcessDef] {
        &self.processes
    }

    /// The names and initial values of the global variables.
    pub fn globals(&self) -> &[(String, i32)] {
        &self.globals
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|(n, _)| n == name)
            .map(GlobalId)
    }

    /// Looks up a process by name.
    pub fn process_by_name(&self, name: &str) -> Option<ProcId> {
        self.processes
            .iter()
            .position(|p| p.name == name)
            .map(ProcId)
    }

    /// Total transition count over all processes (a size measure).
    pub fn transition_count(&self) -> usize {
        self.processes
            .iter()
            .map(ProcessDef::transition_count)
            .sum()
    }
}

/// An error detected while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A send or receive references a channel with the wrong field count.
    ArityMismatch {
        /// Offending process name.
        process: String,
        /// Offending transition label.
        transition: String,
        /// The channel's declared arity.
        expected: usize,
        /// The arity used by the action.
        found: usize,
    },
    /// A receive bind references a message field beyond the channel arity.
    BindOutOfRange {
        /// Offending process name.
        process: String,
        /// Offending transition label.
        transition: String,
        /// The out-of-range field index.
        field: usize,
        /// The channel's arity.
        arity: usize,
    },
    /// An expression references a local slot the process does not have.
    LocalOutOfRange {
        /// Offending process name.
        process: String,
        /// The out-of-range slot.
        index: usize,
        /// The process's local count.
        len: usize,
    },
    /// An expression references a global the program does not have.
    GlobalOutOfRange {
        /// Offending process name.
        process: String,
        /// The out-of-range index.
        index: usize,
        /// The program's global count.
        len: usize,
    },
    /// A process has no locations.
    EmptyProcess {
        /// Offending process name.
        process: String,
    },
    /// The program has no processes.
    NoProcesses,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ArityMismatch {
                process,
                transition,
                expected,
                found,
            } => write!(
                f,
                "process '{process}', transition '{transition}': channel arity is {expected} but action uses {found} fields"
            ),
            BuildError::BindOutOfRange {
                process,
                transition,
                field,
                arity,
            } => write!(
                f,
                "process '{process}', transition '{transition}': bind references field {field} of a {arity}-field message"
            ),
            BuildError::LocalOutOfRange {
                process,
                index,
                len,
            } => write!(
                f,
                "process '{process}': local slot {index} referenced but only {len} locals declared"
            ),
            BuildError::GlobalOutOfRange {
                process,
                index,
                len,
            } => write!(
                f,
                "process '{process}': global {index} referenced but only {len} globals declared"
            ),
            BuildError::EmptyProcess { process } => {
                write!(f, "process '{process}' has no locations")
            }
            BuildError::NoProcesses => write!(f, "program has no processes"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for a [`Program`].
///
/// Declare globals and channels, add processes built with
/// [`ProcessBuilder`], then call [`ProgramBuilder::build`], which validates
/// cross-references (channel arities, variable indices).
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    channels: Vec<ChannelDecl>,
    processes: Vec<ProcessDef>,
    globals: Vec<(String, i32)>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a global variable with an initial value.
    pub fn global(&mut self, name: impl Into<String>, init: i32) -> GlobalId {
        self.globals.push((name.into(), init));
        GlobalId(self.globals.len() - 1)
    }

    /// Declares a channel. `capacity == 0` means rendezvous; `arity` is the
    /// number of integer fields per message.
    pub fn channel(&mut self, name: impl Into<String>, capacity: usize, arity: usize) -> ChanId {
        self.channels.push(ChannelDecl {
            name: name.into(),
            capacity,
            arity,
        });
        ChanId(self.channels.len() - 1)
    }

    /// Adds a process, validating its references against the channels and
    /// globals declared so far.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the process references channels with
    /// the wrong arity or variables that do not exist.
    pub fn add_process(&mut self, builder: ProcessBuilder) -> Result<ProcId, BuildError> {
        let def = builder.into_def();
        self.validate_process(&def)?;
        self.processes.push(def);
        Ok(ProcId(self.processes.len() - 1))
    }

    fn check_expr(&self, process: &str, e: &Expr, locals: usize) -> Result<(), BuildError> {
        if let Some(i) = e.max_local() {
            if i >= locals {
                return Err(BuildError::LocalOutOfRange {
                    process: process.to_string(),
                    index: i,
                    len: locals,
                });
            }
        }
        if let Some(i) = e.max_global() {
            if i >= self.globals.len() {
                return Err(BuildError::GlobalOutOfRange {
                    process: process.to_string(),
                    index: i,
                    len: self.globals.len(),
                });
            }
        }
        Ok(())
    }

    fn check_lvalue(&self, process: &str, lv: &LValue, locals: usize) -> Result<(), BuildError> {
        match lv {
            LValue::Local(i) => {
                if *i >= locals {
                    return Err(BuildError::LocalOutOfRange {
                        process: process.to_string(),
                        index: *i,
                        len: locals,
                    });
                }
            }
            LValue::LocalIdx(base, offset) => {
                if *base >= locals {
                    return Err(BuildError::LocalOutOfRange {
                        process: process.to_string(),
                        index: *base,
                        len: locals,
                    });
                }
                self.check_expr(process, offset, locals)?;
            }
            LValue::Global(i) => {
                if *i >= self.globals.len() {
                    return Err(BuildError::GlobalOutOfRange {
                        process: process.to_string(),
                        index: *i,
                        len: self.globals.len(),
                    });
                }
            }
        }
        Ok(())
    }

    fn validate_process(&self, def: &ProcessDef) -> Result<(), BuildError> {
        if def.loc_names.is_empty() {
            return Err(BuildError::EmptyProcess {
                process: def.name.clone(),
            });
        }
        let locals = def.locals.len();
        for transitions in &def.outgoing {
            for t in transitions {
                if let Some(e) = &t.guard.expr {
                    self.check_expr(&def.name, e, locals)?;
                }
                match &t.action {
                    Action::Skip => {}
                    Action::Assign(assignments) => {
                        for (lv, e) in assignments {
                            self.check_lvalue(&def.name, lv, locals)?;
                            self.check_expr(&def.name, e, locals)?;
                        }
                    }
                    Action::Send { chan, msg } => {
                        let decl = &self.channels[chan.0];
                        if msg.len() != decl.arity {
                            return Err(BuildError::ArityMismatch {
                                process: def.name.clone(),
                                transition: t.label.clone(),
                                expected: decl.arity,
                                found: msg.len(),
                            });
                        }
                        for e in msg {
                            self.check_expr(&def.name, e, locals)?;
                        }
                    }
                    Action::Recv {
                        chan,
                        pattern,
                        binds,
                        ..
                    } => {
                        let decl = &self.channels[chan.0];
                        if pattern.len() != decl.arity {
                            return Err(BuildError::ArityMismatch {
                                process: def.name.clone(),
                                transition: t.label.clone(),
                                expected: decl.arity,
                                found: pattern.len(),
                            });
                        }
                        for p in pattern {
                            if let FieldPat::Eq(e) = p {
                                self.check_expr(&def.name, e, locals)?;
                            }
                        }
                        for (field, lv) in binds {
                            if *field >= decl.arity {
                                return Err(BuildError::BindOutOfRange {
                                    process: def.name.clone(),
                                    transition: t.label.clone(),
                                    field: *field,
                                    arity: decl.arity,
                                });
                            }
                            self.check_lvalue(&def.name, lv, locals)?;
                        }
                    }
                    Action::Native(_) => {}
                    Action::Assert { cond, .. } => {
                        self.check_expr(&def.name, cond, locals)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Finishes the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoProcesses`] for an empty program.
    pub fn build(self) -> Result<Program, BuildError> {
        if self.processes.is_empty() {
            return Err(BuildError::NoProcesses);
        }
        Ok(Program {
            channels: self.channels,
            processes: self.processes,
            globals: self.globals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut prog = ProgramBuilder::new();
        let g0 = prog.global("a", 1);
        let g1 = prog.global("b", 2);
        assert_eq!(g0.index(), 0);
        assert_eq!(g1.index(), 1);
        let c0 = prog.channel("ch", 0, 2);
        assert_eq!(c0.index(), 0);
        let mut p = ProcessBuilder::new("p");
        let l0 = p.local("x", 0);
        let l1 = p.local("y", 0);
        assert_eq!((l0.index(), l1.index()), (0, 1));
        let s0 = p.location("start");
        assert_eq!(s0.index(), 0);
        p.transition(s0, s0, Guard::always(), Action::Skip, "loop");
        let pid = prog.add_process(p).unwrap();
        assert_eq!(pid.index(), 0);
        let program = prog.build().unwrap();
        assert_eq!(program.processes()[0].local_count(), 2);
        assert_eq!(program.transition_count(), 1);
    }

    #[test]
    fn local_block_reserves_contiguous_slots() {
        let mut p = ProcessBuilder::new("p");
        let _x = p.local("x", 0);
        let buf = p.local_block("buf", 3, -1);
        assert_eq!(buf.index(), 1);
        let def = p.into_def();
        assert_eq!(def.local_count(), 4);
        assert_eq!(def.locals[2], ("buf[1]".to_string(), -1));
    }

    #[test]
    fn send_arity_is_validated() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("ch", 1, 2);
        let mut p = ProcessBuilder::new("sender");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::always(),
            Action::send(ch, vec![1.into()]),
            "bad send",
        );
        let err = prog.add_process(p).unwrap_err();
        assert!(matches!(
            err,
            BuildError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn recv_bind_range_is_validated() {
        let mut prog = ProgramBuilder::new();
        let ch = prog.channel("ch", 1, 1);
        let mut p = ProcessBuilder::new("receiver");
        let x = p.local("x", 0);
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::always(),
            Action::recv(ch, vec![FieldPat::Any], vec![(3, x.into())]),
            "bad recv",
        );
        let err = prog.add_process(p).unwrap_err();
        assert!(matches!(err, BuildError::BindOutOfRange { field: 3, .. }));
    }

    #[test]
    fn undeclared_local_is_rejected() {
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::when(expr::eq(Expr::Local(5), 1.into())),
            Action::Skip,
            "bad guard",
        );
        let err = prog.add_process(p).unwrap_err();
        assert!(matches!(err, BuildError::LocalOutOfRange { index: 5, .. }));
    }

    #[test]
    fn undeclared_global_is_rejected() {
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("s0");
        p.transition(
            s0,
            s0,
            Guard::always(),
            Action::assign(LValue::Global(0), 1.into()),
            "bad assign",
        );
        let err = prog.add_process(p).unwrap_err();
        assert!(matches!(err, BuildError::GlobalOutOfRange { index: 0, .. }));
    }

    #[test]
    fn empty_process_is_rejected() {
        let mut prog = ProgramBuilder::new();
        let err = prog.add_process(ProcessBuilder::new("empty")).unwrap_err();
        assert!(matches!(err, BuildError::EmptyProcess { .. }));
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            BuildError::NoProcesses
        );
    }

    #[test]
    fn lookups_by_name() {
        let mut prog = ProgramBuilder::new();
        let g = prog.global("hits", 0);
        let mut p = ProcessBuilder::new("worker");
        p.location("s0");
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        assert_eq!(program.global_by_name("hits"), Some(g));
        assert_eq!(program.global_by_name("missing"), None);
        assert_eq!(program.process_by_name("worker"), Some(ProcId(0)));
        assert_eq!(program.process_by_name("missing"), None);
    }

    #[test]
    fn guard_conjunction_builders() {
        let g = Guard::when(expr::gt(Expr::Global(0), 1.into()))
            .and_when(expr::lt(Expr::Global(0), 5.into()));
        assert!(g.expr.is_some());
        let g = Guard::always().and_native(NativeGuard::new("nonempty", |l| l[0] > 0));
        assert!(g.native.is_some());
    }

    #[test]
    fn build_error_messages_are_informative() {
        let err = BuildError::ArityMismatch {
            process: "p".into(),
            transition: "t".into(),
            expected: 2,
            found: 3,
        };
        let text = err.to_string();
        assert!(text.contains("'p'") && text.contains("'t'"));
        assert!(text.contains('2') && text.contains('3'));
    }
}
