//! Parallel LTL acceptance-cycle search: CNDFS-style swarmed nested DFS.
//!
//! [`Checker::check_ltl`] dispatches here when
//! [`crate::SearchConfig::threads`] is greater than one. The algorithm is
//! the multi-core nested DFS of Evangelista, Laarman, Petrucci and van de
//! Pol (CNDFS): every worker runs its own full nested DFS over the Büchi
//! product with a *per-worker randomized successor order* (seeded from the
//! workspace SplitMix64 family), sharing two global color sets:
//!
//! * **blue** — nodes whose outer DFS (including the red phase of every
//!   accepting node in their subtree) has completed. A worker skips blue
//!   nodes, which is what splits the work across the swarm.
//! * **red** — nodes proven to lie on no accepting cycle. Before a worker
//!   commits its red closure it *awaits* any accepting member still being
//!   red-searched by a peer, preserving the sequential postorder argument.
//!
//! The worker-local **cyan** color (the worker's own outer stack) is what
//! makes a detected cycle real for *that* worker's interleaving: a red DFS
//! reaching a cyan node closes `seed -> ... -> hit -> ... -> seed`.
//!
//! Termination mirrors `parallel.rs`: a shared first-cause-wins stop code
//! plus a peer [`CancelToken`], so the first worker to find a cycle (or
//! hit an error) stops the swarm. Every reported lasso is re-validated
//! through [`Checker::replay_trace`] before it reaches the user; a lasso
//! that fails validation — or a red-await that stalls — falls back to the
//! sequential oracle and says so in [`LtlReport::fallback`]. Both
//! supported fairness modes ([`Fairness::None`] and [`Fairness::Weak`])
//! are preserved: weak fairness lives entirely inside the product nodes
//! (the Choueka counter), so the parallel search explores exactly the
//! same graph the sequential one does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pnp_ltl::{translate, Ltl};

use crate::explore::{CancelToken, Checker, SearchStats};
use crate::liveness::{
    check_ltl_sequential, compile_buchi, moved_procs, CompiledTransition, Edge, Fairness,
    LtlOutcome, LtlReport, Node, Proposition, SuccPool,
};
use crate::program::Program;
use crate::reduction::{ample_subset, LocalLocations};
use crate::rng::SplitMix64;
use crate::state::{apply_step, enabled_steps, KernelError, State, StateView, Step};
use crate::trace::{EventKind, Trace, TraceEvent};
use crate::visited::ShardedNodeSet;

/// Stop-flag codes shared by the swarm; the first cause wins. Numbering
/// follows `parallel.rs` where the causes coincide.
const RUNNING: u8 = 0;
const STOP_CANCELLED: u8 = 3;
const STOP_CYCLE: u8 = 4;
const STOP_ERROR: u8 = 5;
/// A red-await watched a peer's red search for too long without progress:
/// give up on the swarm and fall back to the sequential oracle rather
/// than hang the checker.
const STOP_STALLED: u8 = 6;

/// Base seed for the per-worker successor shuffles; next member of the
/// `0xb175_7a7e_5eed_xxxx` family used by the visited-set machinery.
const SWARM_SEED: u64 = 0xb175_7a7e_5eed_0005;

/// How long one red-await may spin before declaring the swarm stalled.
const AWAIT_STALL_LIMIT: Duration = Duration::from_secs(10);

/// Records `code` as the stop cause unless one is already set; returns
/// whether this call performed the transition (first cause wins).
fn trip(stop: &AtomicU8, code: u8) -> bool {
    stop.compare_exchange(RUNNING, code, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

/// A lasso candidate as recorded by the finding worker: edges carry their
/// source *system* state id, enough to rebuild trace events without
/// holding any worker-local maps alive.
struct LassoCandidate {
    /// Root to cycle-start, as `(source system id, edge)` pairs.
    prefix: Vec<(usize, Edge)>,
    /// Around the accepting cycle, back to the cycle-start node.
    cycle: Vec<(usize, Edge)>,
}

/// The shared system-state interner: the parallel analogue of the
/// sequential `ProductGraph`'s `sys_index`/`sys_states`, behind one lock.
/// The `max_states` budget is charged here, at the same counting point as
/// the sequential checker (on first interning).
struct SysInterner {
    index: HashMap<Arc<State>, usize>,
    states: Vec<Arc<State>>,
}

/// Read-only search context plus the shared mutable color state.
struct SharedSearch<'p> {
    program: &'p Program,
    props: &'p [Proposition],
    buchi: Vec<Vec<CompiledTransition>>,
    accepting: Vec<bool>,
    fairness: Fairness,
    n_procs: usize,
    reduction: Option<LocalLocations>,
    max_states: usize,
    roots: Vec<Node>,

    interner: Mutex<SysInterner>,
    blue: ShardedNodeSet,
    red: ShardedNodeSet,
    truncated: AtomicBool,
    stop: AtomicU8,
    peer_cancel: CancelToken,
    user_cancel: Option<CancelToken>,
    edges: AtomicUsize,
    found: Mutex<Option<LassoCandidate>>,
}

impl SharedSearch<'_> {
    /// Whether workers should wind down, polling the caller's cancel
    /// token on the way (cancellation shares the truncation path, exactly
    /// like the sequential checker's `intern_sys`).
    fn should_abandon(&self) -> bool {
        if let Some(cancel) = &self.user_cancel {
            if cancel.is_cancelled() {
                self.truncated.store(true, Ordering::SeqCst);
                if trip(&self.stop, STOP_CANCELLED) {
                    self.peer_cancel.cancel();
                }
            }
        }
        self.stop.load(Ordering::SeqCst) != RUNNING || self.peer_cancel.is_cancelled()
    }

    /// First cycle wins: the worker that trips the stop code owns the
    /// candidate slot; later finds are discarded.
    fn report_cycle(&self, lasso: LassoCandidate) {
        if trip(&self.stop, STOP_CYCLE) {
            *self.found.lock().expect("candidate slot poisoned") = Some(lasso);
            self.peer_cancel.cancel();
        }
    }

    fn report_stall(&self) {
        if trip(&self.stop, STOP_STALLED) {
            self.peer_cancel.cancel();
        }
    }
}

/// Worker-local view of the product: per-worker memo caches over the
/// shared interner (recomputation across workers is the usual swarm
/// overhead; sharing the *interning* is what keeps `max_states` honest),
/// plus the worker's PRNG and successor-buffer pool.
struct WorkerCtx<'a, 'p> {
    shared: &'a SharedSearch<'p>,
    rng: SplitMix64,
    states: Vec<Option<Arc<State>>>,
    succ: HashMap<usize, Arc<Vec<(Step, usize)>>>,
    labels: HashMap<usize, Arc<Vec<bool>>>,
    enabled: HashMap<usize, Arc<Vec<bool>>>,
    pool: SuccPool,
    edges: usize,
}

/// One outer-DFS stack frame: the node, the edge that reached it, and its
/// (shuffled, pooled) successor buffer.
struct Frame {
    node: Node,
    edge_in: Edge,
    succs: Vec<(Edge, Node)>,
    next: usize,
}

/// The `(source system id, edge)` pairs along `stack[from..to]`, read off
/// the frames' incoming edges.
fn stack_edges(stack: &[Frame], from: usize, to: usize) -> Vec<(usize, Edge)> {
    (from.max(1)..to)
        .map(|i| (stack[i - 1].node.0, stack[i].edge_in))
        .collect()
}

fn shuffle<T>(rng: &mut SplitMix64, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_index(i + 1);
        items.swap(i, j);
    }
}

impl<'a, 'p> WorkerCtx<'a, 'p> {
    fn new(shared: &'a SharedSearch<'p>, worker: usize) -> WorkerCtx<'a, 'p> {
        WorkerCtx {
            shared,
            rng: SplitMix64::seed_from_u64(SWARM_SEED ^ (worker as u64 + 1).wrapping_mul(0x9e37)),
            states: Vec::new(),
            succ: HashMap::new(),
            labels: HashMap::new(),
            enabled: HashMap::new(),
            pool: SuccPool::default(),
            edges: 0,
        }
    }

    fn state_of(&mut self, sys: usize) -> Arc<State> {
        if let Some(Some(state)) = self.states.get(sys) {
            return Arc::clone(state);
        }
        let state = {
            let interner = self.shared.interner.lock().expect("interner poisoned");
            Arc::clone(&interner.states[sys])
        };
        if self.states.len() <= sys {
            self.states.resize(sys + 1, None);
        }
        self.states[sys] = Some(Arc::clone(&state));
        state
    }

    /// Interns a system state, charging the shared `max_states` budget;
    /// `None` marks the search truncated, like the sequential checker.
    fn intern(&mut self, state: State) -> Option<usize> {
        let mut interner = self.shared.interner.lock().expect("interner poisoned");
        if let Some(&id) = interner.index.get(&state) {
            return Some(id);
        }
        if interner.states.len() >= self.shared.max_states {
            self.shared.truncated.store(true, Ordering::SeqCst);
            return None;
        }
        let id = interner.states.len();
        let rc = Arc::new(state);
        interner.index.insert(Arc::clone(&rc), id);
        interner.states.push(rc);
        Some(id)
    }

    fn sys_successors(&mut self, sys: usize) -> Result<Arc<Vec<(Step, usize)>>, KernelError> {
        if let Some(cached) = self.succ.get(&sys) {
            return Ok(Arc::clone(cached));
        }
        let state = self.state_of(sys);
        let mut steps = enabled_steps(self.shared.program, &state)?;
        if let Some(analysis) = &self.shared.reduction {
            steps = ample_subset(analysis, &state, steps);
        }
        let mut successors = Vec::with_capacity(steps.len());
        for step in steps {
            let applied = apply_step(self.shared.program, &state, step)?;
            if let Some(next) = self.intern(applied.state) {
                successors.push((step, next));
            }
        }
        let rc = Arc::new(successors);
        self.succ.insert(sys, Arc::clone(&rc));
        Ok(rc)
    }

    fn labels_of(&mut self, sys: usize) -> Result<Arc<Vec<bool>>, KernelError> {
        if let Some(cached) = self.labels.get(&sys) {
            return Ok(Arc::clone(cached));
        }
        let state = self.state_of(sys);
        let view = StateView::new(self.shared.program, &state);
        let values = self
            .shared
            .props
            .iter()
            .map(|p| p.predicate.eval(&view))
            .collect::<Result<Vec<bool>, _>>()?;
        let rc = Arc::new(values);
        self.labels.insert(sys, Arc::clone(&rc));
        Ok(rc)
    }

    fn enabled_procs_of(&mut self, sys: usize) -> Result<Arc<Vec<bool>>, KernelError> {
        if let Some(cached) = self.enabled.get(&sys) {
            return Ok(Arc::clone(cached));
        }
        let state = self.state_of(sys);
        let mut enabled = vec![false; self.shared.n_procs];
        for step in enabled_steps(self.shared.program, &state)? {
            enabled[step.proc.index()] = true;
            if let Some((partner, _)) = step.partner {
                enabled[partner.index()] = true;
            }
        }
        let rc = Arc::new(enabled);
        self.enabled.insert(sys, Arc::clone(&rc));
        Ok(rc)
    }

    /// The weak-fairness counter transition; mirrors the sequential
    /// `ProductGraph::next_counter` exactly (it must: the two searches
    /// explore the same product graph).
    fn next_counter(
        &mut self,
        sys: usize,
        k: u32,
        source_accepting: bool,
        moved: &[usize],
    ) -> Result<u32, KernelError> {
        if self.shared.fairness == Fairness::None {
            return Ok(0);
        }
        let n = self.shared.n_procs as u32;
        let enabled = self.enabled_procs_of(sys)?;
        let mut k2 = if k == n + 1 { 0 } else { k };
        if k2 == 0 && source_accepting {
            k2 = 1;
        }
        while k2 >= 1 && k2 <= n {
            let p = (k2 - 1) as usize;
            if moved.contains(&p) || !enabled[p] {
                k2 += 1;
            } else {
                break;
            }
        }
        Ok(k2)
    }

    /// Product successors of a node into a pooled buffer, in this
    /// worker's randomized order.
    fn successors_into(
        &mut self,
        (sys, b, k): Node,
        out: &mut Vec<(Edge, Node)>,
    ) -> Result<(), KernelError> {
        debug_assert!(out.is_empty());
        let source_accepting = self.shared.accepting[b];
        let sys_succ = self.sys_successors(sys)?;
        if sys_succ.is_empty() {
            // Stutter extension, exactly as in the sequential product.
            let k2 = self.next_counter(sys, k, source_accepting, &[])?;
            let labels = self.labels_of(sys)?;
            for t in &self.shared.buchi[b] {
                if t.literals.iter().all(|&(i, pos)| labels[i] == pos) {
                    out.push((None, (sys, t.target, k2)));
                }
            }
        } else {
            let mut moved = [0usize; 2];
            for i in 0..sys_succ.len() {
                let (step, next_sys) = sys_succ[i];
                let n_moved = moved_procs(&step, &mut moved);
                let k2 = self.next_counter(sys, k, source_accepting, &moved[..n_moved])?;
                let labels = self.labels_of(next_sys)?;
                for t in &self.shared.buchi[b] {
                    if t.literals.iter().all(|&(i, pos)| labels[i] == pos) {
                        out.push((Some(step), (next_sys, t.target, k2)));
                    }
                }
            }
        }
        self.edges += out.len();
        shuffle(&mut self.rng, out);
        Ok(())
    }

    fn node_accepting(&self, (_, b, k): Node) -> bool {
        match self.shared.fairness {
            Fairness::None => self.shared.accepting[b],
            Fairness::Weak => k == self.shared.n_procs as u32 + 1,
        }
    }
}

/// The inner (red) DFS from an accepting seed. Returns `true` when it
/// reported a cycle (a cyan hit). On normal completion it awaits any
/// accepting member of its closure still being red-searched by a peer,
/// then commits the whole closure to the global red set.
fn red_dfs(
    ctx: &mut WorkerCtx<'_, '_>,
    seed: Node,
    cyan: &HashMap<Node, usize>,
    blue_stack: &[Frame],
) -> Result<bool, KernelError> {
    struct RedFrame {
        node: Node,
        succs: Vec<(Edge, Node)>,
        next: usize,
    }

    let mut members: HashMap<Node, ()> = HashMap::new();
    let mut parent: HashMap<Node, (Node, Edge)> = HashMap::new();
    members.insert(seed, ());
    let mut seed_succs = ctx.pool.take();
    ctx.successors_into(seed, &mut seed_succs)?;
    let mut stack = vec![RedFrame {
        node: seed,
        succs: seed_succs,
        next: 0,
    }];

    while let Some(top) = stack.last_mut() {
        if ctx.shared.should_abandon() {
            return Ok(false);
        }
        if top.next < top.succs.len() {
            let (edge, target) = top.succs[top.next];
            top.next += 1;
            let source = top.node;
            if let Some(&hit_idx) = cyan.get(&target) {
                // Cyan hit: accepting cycle seed -> ... -> target -> ...
                // -> seed. Part A walks the red parent chain (at least one
                // edge, so a cycle closing directly at the seed is not
                // empty); part B is the worker's own outer-stack segment.
                parent.insert(target, (source, edge));
                let mut part_a: Vec<(usize, Edge)> = Vec::new();
                let mut node = target;
                loop {
                    let &(p, e) = parent.get(&node).expect("red parent chain broken");
                    part_a.push((p.0, e));
                    node = p;
                    if node == seed {
                        break;
                    }
                }
                part_a.reverse();
                let mut cycle = part_a;
                if target != seed {
                    cycle.extend(stack_edges(blue_stack, hit_idx + 1, blue_stack.len()));
                }
                let prefix = stack_edges(blue_stack, 1, blue_stack.len());
                ctx.shared.report_cycle(LassoCandidate { prefix, cycle });
                return Ok(true);
            }
            if !members.contains_key(&target) && !ctx.shared.red.contains(target) {
                members.insert(target, ());
                parent.insert(target, (source, edge));
                let mut succs = ctx.pool.take();
                ctx.successors_into(target, &mut succs)?;
                stack.push(RedFrame {
                    node: target,
                    succs,
                    next: 0,
                });
            }
            continue;
        }
        let frame = stack.pop().expect("red frame present");
        ctx.pool.give(frame.succs);
    }

    // CNDFS await: an accepting member (other than the seed) that is not
    // yet globally red is being red-searched by a peer; committing our
    // closure before that search resolves could mask its cycle. The spin
    // is bounded so a wedged peer degrades to the sequential oracle
    // instead of a hang.
    let await_start = Instant::now();
    for (&node, ()) in &members {
        if node == seed || !ctx.node_accepting(node) {
            continue;
        }
        let mut spins: u32 = 0;
        while !ctx.shared.red.contains(node) {
            if ctx.shared.should_abandon() {
                return Ok(false);
            }
            if await_start.elapsed() > AWAIT_STALL_LIMIT {
                ctx.shared.report_stall();
                return Ok(false);
            }
            spins = spins.wrapping_add(1);
            if spins & 0x3ff == 0 {
                thread::sleep(Duration::from_micros(50));
            } else {
                thread::yield_now();
            }
        }
    }
    for (&node, ()) in &members {
        ctx.shared.red.insert(node);
    }
    Ok(false)
}

/// One worker's outer (blue) DFS from `root`, with early cycle detection
/// on cyan successors and the red phase run in postorder on accepting
/// nodes — the CNDFS `dfsBlue`.
fn blue_dfs(ctx: &mut WorkerCtx<'_, '_>, root: Node) -> Result<(), KernelError> {
    let mut cyan: HashMap<Node, usize> = HashMap::new();
    let mut root_succs = ctx.pool.take();
    ctx.successors_into(root, &mut root_succs)?;
    cyan.insert(root, 0);
    let mut stack: Vec<Frame> = vec![Frame {
        node: root,
        edge_in: None,
        succs: root_succs,
        next: 0,
    }];

    while !stack.is_empty() {
        if ctx.shared.should_abandon() {
            return Ok(());
        }
        let top = stack.len() - 1;
        let next_succ = {
            let frame = &mut stack[top];
            if frame.next < frame.succs.len() {
                let pair = frame.succs[frame.next];
                frame.next += 1;
                Some(pair)
            } else {
                None
            }
        };
        let source = stack[top].node;

        if let Some((edge, target)) = next_succ {
            if let Some(&t_idx) = cyan.get(&target) {
                // Early cycle detection: a cyan successor closes a cycle
                // through the worker's own stack; if either endpoint is
                // accepting the whole stack segment is an accepting cycle.
                if ctx.node_accepting(source) || ctx.node_accepting(target) {
                    let prefix = stack_edges(&stack, 1, t_idx + 1);
                    let mut cycle = stack_edges(&stack, t_idx + 1, stack.len());
                    cycle.push((source.0, edge));
                    ctx.shared.report_cycle(LassoCandidate { prefix, cycle });
                    return Ok(());
                }
                continue;
            }
            if ctx.shared.blue.contains(target) {
                continue;
            }
            cyan.insert(target, stack.len());
            let mut succs = ctx.pool.take();
            ctx.successors_into(target, &mut succs)?;
            stack.push(Frame {
                node: target,
                edge_in: edge,
                succs,
                next: 0,
            });
            continue;
        }

        // Postorder: red phase for accepting nodes, then blue the node.
        if ctx.node_accepting(source) {
            if red_dfs(ctx, source, &cyan, &stack)? {
                return Ok(());
            }
            if ctx.shared.should_abandon() {
                return Ok(());
            }
        }
        ctx.shared.blue.insert(source);
        cyan.remove(&source);
        let frame = stack.pop().expect("outer frame present");
        ctx.pool.give(frame.succs);
    }
    Ok(())
}

/// One worker of the swarm: a full nested DFS from every root, in this
/// worker's shuffled root order, pruned by the shared blue set.
fn run_worker(shared: &SharedSearch<'_>, worker: usize) -> Result<(), KernelError> {
    let mut ctx = WorkerCtx::new(shared, worker);
    let mut roots = shared.roots.clone();
    shuffle(&mut ctx.rng, &mut roots);
    for root in roots {
        if shared.should_abandon() {
            break;
        }
        if shared.blue.contains(root) {
            continue;
        }
        blue_dfs(&mut ctx, root)?;
    }
    shared.edges.fetch_add(ctx.edges, Ordering::Relaxed);
    Ok(())
}

/// Rebuilds trace events for a recorded edge list against the shared
/// interner's states.
fn lasso_events(
    program: &Program,
    states: &[Arc<State>],
    edges: &[(usize, Edge)],
) -> Result<Vec<TraceEvent>, KernelError> {
    let mut events = Vec::new();
    for &(sys, edge) in edges {
        match edge {
            None => events.push(TraceEvent::stutter()),
            Some(step) => events.extend(apply_step(program, &states[sys], step)?.events),
        }
    }
    Ok(events)
}

impl Checker<'_> {
    /// Exact replay validation of a lasso-shaped counterexample: the
    /// prefix plus cycle must replay as a chain of enabled steps from the
    /// initial state ([`Checker::replay_trace`]), stutter events may only
    /// appear as a terminal suffix on a state with no enabled steps, and
    /// a cycle with real steps must close back on the system state the
    /// prefix ends in.
    ///
    /// The parallel CNDFS search runs every candidate through this before
    /// reporting it — no cross-thread bookkeeping ever reaches the user
    /// unchecked — and differential tests use it to hold reported lassos
    /// to the same standard from the outside.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] only when the model itself is broken
    /// (a step fails to apply); an invalid lasso is `Ok(false)`.
    pub fn validate_lasso(&self, prefix: &Trace, cycle: &Trace) -> Result<bool, KernelError> {
        let prefix_events = prefix.events();
        if cycle.is_empty() {
            return Ok(false);
        }
        let is_stutter = |e: &TraceEvent| matches!(e.kind(), EventKind::Stutter);
        let all: Vec<TraceEvent> = prefix_events
            .iter()
            .chain(cycle.events())
            .cloned()
            .collect();
        let real_end = all.iter().position(is_stutter).unwrap_or(all.len());
        if !all[real_end..].iter().all(is_stutter) {
            return Ok(false);
        }
        let Some(end_state) = self.replay_trace(&Trace::new(all[..real_end].to_vec()))? else {
            return Ok(false);
        };
        if real_end < all.len() && !enabled_steps(self.program, &end_state)?.is_empty() {
            return Ok(false);
        }
        if real_end > prefix_events.len() {
            // The cycle has real steps: replaying prefix and prefix+cycle
            // must land on the same system state. (All-stutter cycles
            // close trivially: the system state never changes past the
            // prefix.)
            let Some(mid_state) = self.replay_trace(&Trace::new(prefix_events.to_vec()))? else {
                return Ok(false);
            };
            if mid_state != end_state {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// A fairness mode the swarm cannot preserve routes to the sequential
/// oracle with a reported reason. Both current modes are preserved —
/// weak fairness is encoded in the product nodes themselves — so this
/// returns `None` today; a future mode that changes the acceptance
/// condition *outside* the node (e.g. strong fairness via a Streett
/// condition) would name itself here instead of silently degrading.
fn sequential_only_reason(_fairness: Fairness) -> Option<&'static str> {
    None
}

fn sequential_fallback(
    checker: &Checker<'_>,
    formula: &Ltl,
    props: &[Proposition],
    fairness: Fairness,
    reason: &'static str,
) -> Result<LtlReport, KernelError> {
    let mut report = check_ltl_sequential(checker, formula, props, fairness)?;
    report.fallback = Some(reason);
    Ok(report)
}

/// The parallel counterpart of [`Checker::check_ltl_with`], dispatched to
/// when [`crate::SearchConfig::threads`] is greater than one.
pub(crate) fn check_ltl_parallel(
    checker: &Checker<'_>,
    formula: &Ltl,
    props: &[Proposition],
    fairness: Fairness,
) -> Result<LtlReport, KernelError> {
    if let Some(reason) = sequential_only_reason(fairness) {
        return sequential_fallback(checker, formula, props, fairness, reason);
    }
    let start = Instant::now();
    let program = checker.program;
    let threads = checker.config.threads;

    let buchi = translate(&formula.negated());
    let compiled = compile_buchi(&buchi, props)?;
    let accepting = (0..buchi.state_count())
        .map(|s| buchi.is_accepting(s))
        .collect::<Vec<_>>();

    let initial = Arc::new(State::initial(program));
    let view = StateView::new(program, &initial);
    let labels0 = props
        .iter()
        .map(|p| p.predicate.eval(&view))
        .collect::<Result<Vec<bool>, _>>()?;
    let mut roots: Vec<Node> = Vec::new();
    for t in &compiled[buchi.initial()] {
        if t.literals.iter().all(|&(i, pos)| labels0[i] == pos) {
            roots.push((0, t.target, 0));
        }
    }

    let shared = SharedSearch {
        program,
        props,
        buchi: compiled,
        accepting,
        fairness,
        n_procs: program.processes().len(),
        reduction: (checker.config.partial_order_reduction
            && fairness == Fairness::None
            && props.iter().all(|p| p.predicate.is_expr_only()))
        .then(|| LocalLocations::analyze(program)),
        max_states: checker.config.max_states,
        roots,
        interner: Mutex::new(SysInterner {
            index: HashMap::from([(Arc::clone(&initial), 0)]),
            states: vec![initial],
        }),
        blue: ShardedNodeSet::new(),
        red: ShardedNodeSet::new(),
        truncated: AtomicBool::new(false),
        stop: AtomicU8::new(RUNNING),
        peer_cancel: CancelToken::new(),
        user_cancel: checker.cancel.clone(),
        edges: AtomicUsize::new(0),
        found: Mutex::new(None),
    };

    let mut errors: Vec<KernelError> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let shared = &shared;
                scope.spawn(move || {
                    let result = run_worker(shared, w);
                    if result.is_err() && trip(&shared.stop, STOP_ERROR) {
                        shared.peer_cancel.cancel();
                    }
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("liveness worker panicked").err())
            .collect()
    });
    if let Some(error) = errors.drain(..).next() {
        return Err(error);
    }

    let truncated = shared.truncated.load(Ordering::SeqCst);
    let stats = SearchStats {
        unique_states: shared.blue.len(),
        steps: shared.edges.load(Ordering::Relaxed),
        max_depth: 0,
        elapsed: start.elapsed(),
        ..SearchStats::default()
    };

    match shared.stop.load(Ordering::SeqCst) {
        RUNNING | STOP_CANCELLED => Ok(LtlReport {
            outcome: LtlOutcome::Holds,
            stats,
            truncated: truncated || shared.stop.load(Ordering::SeqCst) == STOP_CANCELLED,
            fallback: None,
        }),
        STOP_CYCLE => {
            let candidate = shared
                .found
                .lock()
                .expect("candidate slot poisoned")
                .take()
                .expect("stop code CYCLE without a candidate");
            let states = {
                let interner = shared.interner.lock().expect("interner poisoned");
                interner.states.clone()
            };
            let prefix = Trace::new(lasso_events(program, &states, &candidate.prefix)?);
            let cycle = Trace::new(lasso_events(program, &states, &candidate.cycle)?);
            if checker.validate_lasso(&prefix, &cycle)? {
                Ok(LtlReport {
                    outcome: LtlOutcome::Violated { prefix, cycle },
                    stats,
                    truncated,
                    fallback: None,
                })
            } else {
                sequential_fallback(
                    checker,
                    formula,
                    props,
                    fairness,
                    "a parallel-found lasso failed exact replay validation",
                )
            }
        }
        STOP_STALLED => sequential_fallback(
            checker,
            formula,
            props,
            fairness,
            "the parallel red-await stalled",
        ),
        other => {
            debug_assert!(other == STOP_ERROR, "unknown stop code {other}");
            // An error stop whose error vanished (the worker recovered at
            // the barrier): degrade honestly rather than guess.
            sequential_fallback(
                checker,
                formula,
                props,
                fairness,
                "the parallel search stopped without a verdict",
            )
        }
    }
}
