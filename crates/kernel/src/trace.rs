//! Counterexample traces and their events.

use std::fmt;

use crate::program::{ChanId, ProcId, Program};
use crate::state::Msg;

/// What a trace step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A local step (guard, assignment, native op, or assertion).
    Internal,
    /// A buffered send.
    Send {
        /// The channel sent on.
        chan: ChanId,
        /// The message.
        msg: Msg,
    },
    /// A buffered receive.
    Recv {
        /// The channel received from.
        chan: ChanId,
        /// The message.
        msg: Msg,
    },
    /// A rendezvous handshake (send and receive in one atomic step).
    Rendezvous {
        /// The channel synchronized on.
        chan: ChanId,
        /// The message.
        msg: Msg,
        /// The receiving process.
        receiver: ProcId,
    },
    /// A stutter step inserted by the liveness checker when the system has
    /// terminated (no real step exists).
    Stutter,
}

/// One step of a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    proc: ProcId,
    label: String,
    kind: EventKind,
}

impl TraceEvent {
    pub(crate) fn new(proc: ProcId, label: &str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            proc,
            label: label.to_string(),
            kind,
        }
    }

    pub(crate) fn stutter() -> TraceEvent {
        TraceEvent {
            proc: ProcId(usize::MAX),
            label: "(stutter)".to_string(),
            kind: EventKind::Stutter,
        }
    }

    /// The acting process (meaningless for stutter events).
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// The fired transition's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// What the step did.
    pub fn kind(&self) -> &EventKind {
        &self.kind
    }

    /// Renders the event with names resolved against `program`.
    pub fn display<'a>(&'a self, program: &'a Program) -> impl fmt::Display + 'a {
        DisplayEvent {
            event: self,
            program,
        }
    }
}

struct DisplayEvent<'a> {
    event: &'a TraceEvent,
    program: &'a Program,
}

impl fmt::Display for DisplayEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.event;
        if matches!(e.kind, EventKind::Stutter) {
            return write!(f, "(stutter)");
        }
        let proc_name = &self.program.processes[e.proc.index()].name;
        match &e.kind {
            EventKind::Internal => write!(f, "{proc_name}: {}", e.label),
            EventKind::Send { chan, msg } => {
                let chan_name = &self.program.channels[chan.index()].name;
                write!(f, "{proc_name}: {} — {chan_name}!{msg}", e.label)
            }
            EventKind::Recv { chan, msg } => {
                let chan_name = &self.program.channels[chan.index()].name;
                write!(f, "{proc_name}: {} — {chan_name}?{msg}", e.label)
            }
            EventKind::Rendezvous {
                chan,
                msg,
                receiver,
            } => {
                let chan_name = &self.program.channels[chan.index()].name;
                let recv_name = &self.program.processes[receiver.index()].name;
                write!(
                    f,
                    "{proc_name} -> {recv_name}: {} — {chan_name}!{msg} (rendezvous)",
                    e.label
                )
            }
            EventKind::Stutter => unreachable!(),
        }
    }
}

/// A counterexample: the sequence of events from the initial state to the
/// violation (for safety) or around a lasso (for liveness).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from an event sequence, oldest first — useful for
    /// re-validating slices of a reported counterexample through
    /// [`crate::Checker::replay_trace`].
    pub fn new(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// The events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no steps (a violation in the initial state).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole trace, one numbered line per event, with names
    /// resolved against `program`.
    pub fn display<'a>(&'a self, program: &'a Program) -> impl fmt::Display + 'a {
        DisplayTrace {
            trace: self,
            program,
        }
    }
}

struct DisplayTrace<'a> {
    trace: &'a Trace,
    program: &'a Program,
}

impl fmt::Display for DisplayTrace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, event) in self.trace.events.iter().enumerate() {
            writeln!(f, "{:3}. {}", i + 1, event.display(self.program))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};

    fn tiny_program() -> Program {
        let mut prog = ProgramBuilder::new();
        prog.channel("wire", 0, 1);
        let mut p = ProcessBuilder::new("alpha");
        let s0 = p.location("s0");
        p.transition(s0, s0, Guard::always(), Action::Skip, "noop");
        prog.add_process(p).unwrap();
        let mut q = ProcessBuilder::new("beta");
        q.location("s0");
        prog.add_process(q).unwrap();
        prog.build().unwrap()
    }

    #[test]
    fn event_display_resolves_names() {
        let program = tiny_program();
        let e = TraceEvent::new(
            ProcId(0),
            "send m",
            EventKind::Rendezvous {
                chan: ChanId(0),
                msg: Msg::new(vec![5]),
                receiver: ProcId(1),
            },
        );
        let text = e.display(&program).to_string();
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("beta"), "{text}");
        assert!(text.contains("wire"), "{text}");
        assert!(text.contains("(5)"), "{text}");
    }

    #[test]
    fn trace_display_numbers_lines() {
        let program = tiny_program();
        let trace = Trace::new(vec![
            TraceEvent::new(ProcId(0), "a", EventKind::Internal),
            TraceEvent::new(ProcId(1), "b", EventKind::Internal),
        ]);
        let text = trace.display(&program).to_string();
        assert!(text.contains("  1. alpha: a"));
        assert!(text.contains("  2. beta: b"));
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn stutter_event_displays() {
        let program = tiny_program();
        let e = TraceEvent::stutter();
        assert_eq!(e.display(&program).to_string(), "(stutter)");
        assert_eq!(*e.kind(), EventKind::Stutter);
    }
}
