//! # pnp-kernel — explicit-state model-checking kernel
//!
//! This crate is the verification substrate of the PnP (Plug-and-Play
//! architectural design and verification) reproduction. It plays the role
//! that the SPIN model checker and its Promela input language play in the
//! paper: systems are described as collections of communicating processes,
//! and the kernel exhaustively explores their interleavings to check safety
//! and liveness properties.
//!
//! ## Model of computation
//!
//! A [`Program`] consists of
//!
//! * **channels** ([`ChannelDecl`]) — rendezvous (capacity 0, like Promela's
//!   `chan c = [0] of {...}`) or bounded FIFO buffers (capacity > 0);
//! * **processes** ([`ProcessDef`]) — finite automata whose transitions carry
//!   a [`Guard`] and an [`Action`] (send, receive, assignment, assertion, or
//!   a native buffer operation);
//! * **globals** — shared integer variables, typically used to expose
//!   observable state to properties.
//!
//! A global step fires one enabled transition of one process; a rendezvous
//! send and its matching receive fire together as a single atomic step,
//! exactly as in Promela.
//!
//! ## Checking
//!
//! * [`Checker::check_safety`] — breadth-first search for deadlocks,
//!   invariant violations, and failed assertions, returning shortest
//!   counterexample [`Trace`]s;
//! * [`Checker::check_ltl`] — nested depth-first search over the product
//!   with a Büchi automaton produced by [`pnp_ltl`], returning lasso-shaped
//!   counterexamples for liveness violations;
//! * [`Simulator`] — a seeded random walk over the same semantics, used for
//!   quantitative workload statistics (the paper's informal efficiency
//!   comparisons).
//!
//! ## Example
//!
//! ```
//! use pnp_kernel::{expr, Action, Guard, ProcessBuilder, ProgramBuilder};
//! use pnp_kernel::{Checker, Predicate, SafetyChecks, SafetyOutcome};
//!
//! // Two processes increment a shared counter twice each.
//! let mut prog = ProgramBuilder::new();
//! let counter = prog.global("counter", 0);
//! for name in ["inc_a", "inc_b"] {
//!     let mut p = ProcessBuilder::new(name);
//!     let s0 = p.location("first");
//!     let s1 = p.location("second");
//!     let done = p.location("done");
//!     p.mark_end(done);
//!     let bump = Action::assign(counter, expr::global(counter) + 1.into());
//!     p.transition(s0, s1, Guard::always(), bump.clone(), "bump");
//!     p.transition(s1, done, Guard::always(), bump, "bump");
//!     prog.add_process(p)?;
//! }
//! let program = prog.build()?;
//!
//! let checker = Checker::new(&program);
//! let report = checker.check_safety(&SafetyChecks {
//!     deadlock: false,
//!     invariants: vec![(
//!         "counter bounded".into(),
//!         Predicate::from_expr(expr::le(expr::global(counter), 4.into())),
//!     )],
//! })?;
//! assert_eq!(report.outcome, SafetyOutcome::Holds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
mod dot;
mod durable;
mod explore;
mod expression;
mod extmem;
mod liveness;
mod outcome;
mod parallel;
mod pliveness;
mod program;
mod reduction;
mod rng;
mod signals;
mod sim;
mod snapshot;
mod state;
mod trace;
mod vfs;
mod visited;

pub use durable::{
    decode_generation, encode_generation, load_latest_snapshot, GenScan, GenSink, GenStore,
};
pub use explore::{
    BudgetKind, CancelToken, Checker, Predicate, SafetyChecks, SafetyOutcome, SafetyReport,
    SearchConfig, SearchStats,
};
pub use expression::{expr, EvalError, Expr};
pub use liveness::{Fairness, LtlOutcome, LtlReport, Proposition};
pub use outcome::{panic_message, FailureClass, JobOutcome};
pub use program::{
    Action, BuildError, ChanId, ChannelDecl, FieldPat, GlobalId, Guard, LValue, Loc, LocalId,
    NativeGuard, NativeOp, ProcId, ProcessBuilder, ProcessDef, Program, ProgramBuilder, RecvPolicy,
    Transition,
};
pub use rng::{fnv64, mix64, SplitMix64};
pub use signals::{cancel_on_termination, watch_termination, TerminationFlag};
pub use sim::{SimObservation, SimReport, Simulator};
pub use snapshot::{
    load_snapshot, program_fingerprint, FileSink, Snapshot, SnapshotError, SnapshotSink,
};
pub use state::{KernelError, Msg, State, StateView, Step};
pub use trace::{EventKind, Trace, TraceEvent};
pub use vfs::{
    commit_replace, real_fs, tmp_sibling, DiskImage, FaultPlan, FsFaultKind, FsFaultRecord,
    FsInjection, RealFs, SimFs, Vfs, VfsHandle,
};
pub use visited::{
    bloom_omission_probability, BitstateVisited, CompactVisited, DiskExactVisited, ExactVisited,
    ShardedBitstateVisited, ShardedCompactVisited, ShardedExactVisited, SharedInsert,
    SharedVisitedSet, StateBudget, VisitedKind, VisitedSet,
};
