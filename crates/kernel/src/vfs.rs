//! A virtual filesystem seam for every durable path in the workspace.
//!
//! Crash consistency cannot be tested against a real disk: the dangerous
//! states — a torn write, a rename that survived power loss while the
//! data did not, an `ENOSPC` halfway through a checkpoint — appear only
//! in the narrow window between a syscall and the platters, and no unit
//! test can schedule a power cut there. So every component that persists
//! state (snapshot sinks, the service queue, quarantine moves) goes
//! through the [`Vfs`] trait, with two implementations:
//!
//! * [`RealFs`] — the real filesystem, *with the full durability
//!   discipline*: `sync_file` maps to `fsync` and `sync_dir` fsyncs the
//!   directory so renames are themselves durable. (The pre-VFS code
//!   renamed without any fsync; a power loss could surface an empty or
//!   stale file at the target path.)
//! * [`SimFs`] — a fully deterministic in-memory filesystem seeded by
//!   [`SplitMix64`] that models exactly what a real disk may expose
//!   after a crash: file content persists only up to the last
//!   `sync_file` (unsynced suffixes tear at a seeded offset), and
//!   metadata operations (create, remove, rename) persist only once
//!   their directory is synced — until then each pending operation
//!   independently survives or vanishes, which reproduces metadata
//!   reordering. It can also inject `ENOSPC` (with a torn partial
//!   write, as a full disk really leaves one) and `EIO` at seeded
//!   probabilities, and crash at *any* syscall boundary: after a crash
//!   every operation fails like a dead process's would, until
//!   [`SimFs::reboot`] replaces the visible state with the computed
//!   crash image.
//!
//! The one deliberate simplification: directories themselves are always
//! durable once created. Every interesting crash bug in this workspace
//! lives in file content and directory *entries*, not in `mkdir`.
//!
//! [`commit_replace`] is the shared commit point: write a `.tmp`
//! sibling, `sync_file` it, rename over the target, `sync_file` the
//! parent directory. Every durable artifact in the workspace (snapshot
//! generations, the persisted queue) commits through it.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::rng::SplitMix64;

/// Filesystem operations every durable path goes through.
///
/// Path-based whole-file operations: every persistent artifact in this
/// workspace is written whole and replaced atomically, so the trait
/// deliberately has no seek/append surface — a smaller surface is a
/// smaller fault model.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes `bytes` (no durability
    /// until [`Vfs::sync_file`]).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Forces the file's content to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Forces the directory's entries (creates, removes, renames) to
    /// stable storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    /// Durable only after the parent directory is synced.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file, or an *empty* directory. Directory entries are not
    /// part of the crash model (mirroring [`Vfs::create_dir_all`], which
    /// is applied immediately): removal is for sweeping recreatable
    /// scratch trees, not for anything durability depends on.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// The files directly inside `dir`, sorted (directories excluded).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// The subdirectories directly inside `dir`, sorted.
    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// A shared, thread-safe handle to a [`Vfs`] implementation.
pub type VfsHandle = Arc<dyn Vfs>;

/// The real filesystem behind a [`VfsHandle`].
pub fn real_fs() -> VfsHandle {
    Arc::new(RealFs)
}

/// The real filesystem, with real `fsync` discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // unix idiom for making renames durable. On platforms where a
        // directory cannot be opened as a file this degrades to a no-op
        // rather than an error: the rename itself still happened.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(_) if path.is_dir() => std::fs::remove_dir(path),
            other => other,
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// The `.tmp` sibling `commit_replace` stages through for `path`.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// The crash-consistent commit point shared by every durable artifact:
/// stage `bytes` in a `.tmp` sibling, `sync_file` it, rename it over
/// `path`, then sync the parent directory so the rename itself is
/// durable.
///
/// After a crash anywhere inside this sequence, `path` holds either its
/// previous content in full or `bytes` in full — never a prefix, never
/// an empty file. At worst a stale `.tmp` sibling is left behind for a
/// startup sweep to remove.
///
/// # Errors
///
/// Returns the first failing operation's error; `path` is untouched
/// unless the rename already happened.
pub fn commit_replace(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    vfs.write(&tmp, bytes)?;
    vfs.sync_file(&tmp)?;
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// Seeded fault injection for [`SimFs`].
///
/// All probabilities draw from the filesystem's [`SplitMix64`] stream,
/// so the same seed and the same operation sequence reproduce the same
/// faults — and the same post-crash disk image — bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Allow this many more operations, then crash the "process" on the
    /// next one: the failing operation (and every one after it) returns
    /// [`SimFs::crash_error`] until [`SimFs::reboot`].
    pub crash_after_ops: Option<u64>,
    /// Per-mille probability that a `write` fails with `ENOSPC`,
    /// leaving a seeded torn prefix behind (as a full disk really
    /// does).
    pub enospc_per_mille: u16,
    /// Per-mille probability that a `read`/`write` fails with an I/O
    /// error.
    pub eio_per_mille: u16,
}

impl FaultPlan {
    /// A plan that crashes after `n` more operations, with no other
    /// faults.
    pub fn crash_after(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_ops: Some(n),
            ..FaultPlan::default()
        }
    }
}

/// A storage-fault kind, shared by the probabilistic [`FaultPlan`] and
/// the exact, op-indexed [`FsInjection`] hooks the chaos-schedule
/// search drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FsFaultKind {
    /// The process dies at the syscall boundary; every later operation
    /// fails until [`SimFs::reboot`].
    Crash,
    /// A `write` fails with `ENOSPC`, leaving a seeded torn prefix.
    Enospc,
    /// The operation fails with an I/O error.
    Eio,
}

impl FsFaultKind {
    /// The stable serialized name (schedule files, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            FsFaultKind::Crash => "crash",
            FsFaultKind::Enospc => "enospc",
            FsFaultKind::Eio => "eio",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<FsFaultKind, String> {
        match name {
            "crash" => Ok(FsFaultKind::Crash),
            "enospc" => Ok(FsFaultKind::Enospc),
            "eio" => Ok(FsFaultKind::Eio),
            other => Err(format!(
                "unknown storage fault '{other}' (want crash, enospc, or eio)"
            )),
        }
    }
}

impl fmt::Display for FsFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One exact injection: fire `kind` on the `at_op`-th operation
/// (1-based, counting every [`Vfs`] call on this [`SimFs`]).
///
/// Unlike the probabilistic [`FaultPlan`], injections survive
/// [`SimFs::set_plan`] and [`SimFs::reboot`]: the op counter keeps
/// running across reboots, so a schedule of injections describes one
/// whole multi-crash run — which is what makes a failing schedule
/// file replayable and shrinkable injection by injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsInjection {
    /// The 1-based operation index the fault fires on.
    pub at_op: u64,
    /// What fires.
    pub kind: FsFaultKind,
}

/// One fault that actually fired, for the run's injected-fault trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsFaultRecord {
    /// The 1-based operation index it fired on.
    pub op: u64,
    /// What fired.
    pub kind: FsFaultKind,
    /// The path the failing operation targeted.
    pub path: PathBuf,
}

impl fmt::Display for FsFaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fs {} @{} ({})", self.kind, self.op, self.path.display())
    }
}

/// One simulated inode: the visible content plus the content guaranteed
/// to survive a crash (set by `sync_file`).
#[derive(Debug, Clone, Default)]
struct Inode {
    pending: Vec<u8>,
    durable: Option<Vec<u8>>,
}

/// A pending (not yet directory-synced) metadata operation.
#[derive(Debug, Clone)]
enum MetaOp {
    Create { path: PathBuf, inode: usize },
    Remove { path: PathBuf },
    Rename { from: PathBuf, to: PathBuf },
}

impl MetaOp {
    /// Whether syncing `dir` commits this operation.
    fn in_dir(&self, dir: &Path) -> bool {
        let parent = |p: &PathBuf| p.parent().map(Path::to_path_buf);
        match self {
            MetaOp::Create { path, .. } | MetaOp::Remove { path } => {
                parent(path).as_deref() == Some(dir)
            }
            MetaOp::Rename { from, to } => {
                parent(from).as_deref() == Some(dir) || parent(to).as_deref() == Some(dir)
            }
        }
    }

    /// Applies this operation to a namespace.
    fn apply(&self, ns: &mut BTreeMap<PathBuf, usize>) {
        match self {
            MetaOp::Create { path, inode } => {
                ns.insert(path.clone(), *inode);
            }
            MetaOp::Remove { path } => {
                ns.remove(path);
            }
            MetaOp::Rename { from, to } => {
                // A rename whose source entry never became durable has
                // nothing to move: the dependency chain broke at the
                // crash.
                if let Some(inode) = ns.remove(from) {
                    ns.insert(to.clone(), inode);
                }
            }
        }
    }
}

#[derive(Debug)]
struct SimState {
    inodes: Vec<Inode>,
    /// What a process sees now: path → inode.
    visible: BTreeMap<PathBuf, usize>,
    /// What is guaranteed to survive a crash: path → inode.
    durable_ns: BTreeMap<PathBuf, usize>,
    /// Directories that exist (always durable — see the module docs).
    dirs: Vec<PathBuf>,
    /// Metadata operations not yet committed by a directory sync, in
    /// issue order.
    pending_meta: Vec<MetaOp>,
    rng: SplitMix64,
    plan: FaultPlan,
    /// Operations remaining before a scheduled crash.
    ops_until_crash: Option<u64>,
    /// Exact op-indexed injections still waiting to fire (unordered;
    /// consumed as their op index is reached).
    injections: Vec<FsInjection>,
    /// An `Enospc` injection armed by `begin_op` for the operation in
    /// flight; consumed by `write`, discarded by anything else.
    force_enospc: bool,
    /// Every fault that actually fired, in firing order.
    trace: Vec<FsFaultRecord>,
    crashed: bool,
    ops: u64,
    crashes: u64,
}

/// A deterministic simulated filesystem with seeded storage faults.
///
/// Shared freely across threads (`Arc<SimFs>` coerces to
/// [`VfsHandle`]); all state sits behind one mutex, which also gives
/// concurrent harnesses a single serialization point so a seeded run
/// with a deterministic operation order replays exactly.
#[derive(Debug)]
pub struct SimFs {
    state: Mutex<SimState>,
}

/// A full image of the simulated disk: every visible path and its
/// content, sorted by path.
pub type DiskImage = BTreeMap<PathBuf, Vec<u8>>;

impl SimFs {
    /// A fault-free simulated filesystem with the given seed. The root
    /// directory `/` exists.
    pub fn new(seed: u64) -> SimFs {
        SimFs {
            state: Mutex::new(SimState {
                inodes: Vec::new(),
                visible: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                dirs: vec![PathBuf::from("/")],
                pending_meta: Vec::new(),
                rng: SplitMix64::seed_from_u64(seed),
                plan: FaultPlan::default(),
                ops_until_crash: None,
                injections: Vec::new(),
                force_enospc: false,
                trace: Vec::new(),
                crashed: false,
                ops: 0,
                crashes: 0,
            }),
        }
    }

    /// Installs the exact op-indexed injections for this run (replacing
    /// any not yet fired). Unlike [`SimFs::set_plan`], these survive
    /// reboots: the op counter is monotonic across the whole run.
    pub fn set_injections(&self, injections: Vec<FsInjection>) {
        self.lock().injections = injections;
    }

    /// Injections that have not fired yet.
    pub fn pending_injections(&self) -> usize {
        self.lock().injections.len()
    }

    /// Every fault that actually fired so far (plan-drawn and
    /// injected), in firing order.
    pub fn fault_trace(&self) -> Vec<FsFaultRecord> {
        self.lock().trace.clone()
    }

    /// Replaces the fault plan (resets any scheduled crash countdown).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut s = self.lock();
        s.ops_until_crash = plan.crash_after_ops;
        s.plan = plan;
    }

    /// Operations performed so far (including failed ones).
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Crashes suffered so far.
    pub fn crash_count(&self) -> u64 {
        self.lock().crashes
    }

    /// Whether the simulated process is currently dead (crashed and not
    /// yet rebooted).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The error every operation returns after a crash.
    pub fn crash_error() -> io::Error {
        io::Error::other("simfs: process crashed (reboot to continue)")
    }

    /// Whether `error` is the simulated-crash error.
    pub fn is_crash(error: &io::Error) -> bool {
        error.to_string().contains("simfs: process crashed")
    }

    /// Forces a crash now, as if the process died between syscalls.
    pub fn crash_now(&self) {
        let mut s = self.lock();
        if !s.crashed {
            s.crash(false);
        }
    }

    /// Boots the "machine" back up: the visible state becomes the crash
    /// image a real disk could have exposed, everything on it is now
    /// durable, and the fault plan is cleared (install a new one with
    /// [`SimFs::set_plan`]).
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding crash — that is a harness
    /// bug, not a recoverable condition.
    pub fn reboot(&self) {
        let mut s = self.lock();
        assert!(s.crashed, "SimFs::reboot without a crash");
        s.crashed = false;
        s.plan = FaultPlan::default();
        s.ops_until_crash = None;
        // After a boot, what is on disk *is* the durable state.
        s.durable_ns = s.visible.clone();
        for &inode in s.visible.clone().values() {
            let content = s.inodes[inode].pending.clone();
            s.inodes[inode].durable = Some(content);
        }
    }

    /// The visible disk image (path → content), for determinism
    /// assertions.
    pub fn image(&self) -> DiskImage {
        let s = self.lock();
        s.visible
            .iter()
            .map(|(p, &i)| (p.clone(), s.inodes[i].pending.clone()))
            .collect()
    }

    /// The durable image: what a crash right now would be guaranteed to
    /// preserve (torn suffixes excluded).
    pub fn durable_image(&self) -> DiskImage {
        let s = self.lock();
        s.durable_ns
            .iter()
            .filter_map(|(p, &i)| Some((p.clone(), s.inodes[i].durable.clone()?)))
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The common entry for every operation: counts it, trips a
    /// scheduled crash, fires any exact injection due at this op index,
    /// and draws the EIO fault when `faultable`. `path` is what the
    /// operation targets, recorded in the fault trace.
    fn begin_op(&self, s: &mut SimState, faultable: bool, path: &Path) -> io::Result<()> {
        // An Enospc injection armed for a previous non-write op is stale.
        s.force_enospc = false;
        if s.crashed {
            return Err(Self::crash_error());
        }
        s.ops += 1;
        let op = s.ops;
        if let Some(left) = s.ops_until_crash {
            if left == 0 {
                s.trace.push(FsFaultRecord {
                    op,
                    kind: FsFaultKind::Crash,
                    path: path.to_path_buf(),
                });
                s.crash(true);
                return Err(Self::crash_error());
            }
            s.ops_until_crash = Some(left - 1);
        }
        if let Some(index) = s.injections.iter().position(|i| i.at_op == op) {
            let injection = s.injections.swap_remove(index);
            match injection.kind {
                FsFaultKind::Crash => {
                    s.trace.push(FsFaultRecord {
                        op,
                        kind: FsFaultKind::Crash,
                        path: path.to_path_buf(),
                    });
                    s.crash(true);
                    return Err(Self::crash_error());
                }
                FsFaultKind::Eio if faultable => {
                    s.trace.push(FsFaultRecord {
                        op,
                        kind: FsFaultKind::Eio,
                        path: path.to_path_buf(),
                    });
                    return Err(io::Error::other("simfs: injected EIO"));
                }
                // An EIO aimed at an unfaultable op has nothing to fail.
                FsFaultKind::Eio => {}
                // Armed here, fired (with its torn prefix) by `write`;
                // a non-write op simply cannot run out of disk.
                FsFaultKind::Enospc => s.force_enospc = true,
            }
        }
        if faultable && s.plan.eio_per_mille > 0 {
            let draw = s.rng.next_u64() % 1000;
            if draw < u64::from(s.plan.eio_per_mille) {
                s.trace.push(FsFaultRecord {
                    op,
                    kind: FsFaultKind::Eio,
                    path: path.to_path_buf(),
                });
                return Err(io::Error::other("simfs: injected EIO"));
            }
        }
        Ok(())
    }
}

impl SimState {
    /// Computes the crash image and makes it the (dead) machine's state.
    fn crash(&mut self, _scheduled: bool) {
        self.crashed = true;
        self.crashes += 1;
        // Namespace: start from the durable entries, then let each
        // pending metadata operation survive independently — a 50/50
        // seeded draw per op models journal reordering: a later rename
        // can persist while an earlier create did not.
        let mut ns = self.durable_ns.clone();
        for op in std::mem::take(&mut self.pending_meta) {
            if self.rng.next_u64().is_multiple_of(2) {
                op.apply(&mut ns);
            }
        }
        // Content: synced data survives verbatim; unsynced rewrites
        // either fall back to the last synced content or tear at a
        // seeded offset (prefix-only persistence).
        for inode in &mut self.inodes {
            let crashed_content = match &inode.durable {
                Some(durable) if *durable == inode.pending => durable.clone(),
                Some(durable) if self.rng.next_u64().is_multiple_of(2) => durable.clone(),
                _ => {
                    let keep = if inode.pending.is_empty() {
                        0
                    } else {
                        (self.rng.next_u64() % (inode.pending.len() as u64 + 1)) as usize
                    };
                    inode.pending[..keep].to_vec()
                }
            };
            inode.pending = crashed_content;
            inode.durable = None;
        }
        self.visible = ns.clone();
        self.durable_ns = ns;
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        self.dirs.iter().any(|d| d == dir)
    }

    fn require_parent(&self, path: &Path) -> io::Result<()> {
        match path.parent() {
            Some(parent) if parent.as_os_str().is_empty() || self.dir_exists(parent) => Ok(()),
            Some(parent) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such directory: {}", parent.display()),
            )),
            None => Ok(()),
        }
    }
}

impl Vfs for SimFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, path)?;
        match s.visible.get(path) {
            Some(&inode) => Ok(s.inodes[inode].pending.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such file: {}", path.display()),
            )),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, path)?;
        s.require_parent(path)?;
        let enospc = std::mem::take(&mut s.force_enospc)
            || (s.plan.enospc_per_mille > 0
                && s.rng.next_u64() % 1000 < u64::from(s.plan.enospc_per_mille));
        if enospc {
            let op = s.ops;
            s.trace.push(FsFaultRecord {
                op,
                kind: FsFaultKind::Enospc,
                path: path.to_path_buf(),
            });
        }
        // A full disk leaves a torn prefix behind — the write is not
        // transactional.
        let written = if enospc {
            let keep = if bytes.is_empty() {
                0
            } else {
                (s.rng.next_u64() % (bytes.len() as u64 + 1)) as usize
            };
            &bytes[..keep]
        } else {
            bytes
        };
        match s.visible.get(path).copied() {
            Some(inode) => s.inodes[inode].pending = written.to_vec(),
            None => {
                let inode = s.inodes.len();
                s.inodes.push(Inode {
                    pending: written.to_vec(),
                    durable: None,
                });
                s.visible.insert(path.to_path_buf(), inode);
                s.pending_meta.push(MetaOp::Create {
                    path: path.to_path_buf(),
                    inode,
                });
            }
        }
        if enospc {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "simfs: injected ENOSPC",
            ));
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, path)?;
        match s.visible.get(path).copied() {
            Some(inode) => {
                let content = s.inodes[inode].pending.clone();
                s.inodes[inode].durable = Some(content);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such file: {}", path.display()),
            )),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, dir)?;
        if !s.dir_exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such directory: {}", dir.display()),
            ));
        }
        let (committed, still_pending): (Vec<MetaOp>, Vec<MetaOp>) =
            std::mem::take(&mut s.pending_meta)
                .into_iter()
                .partition(|op| op.in_dir(dir));
        // Committing entries makes the *names* durable; the content each
        // entry points at stays governed by sync_file.
        let mut ns = std::mem::take(&mut s.durable_ns);
        for op in committed {
            op.apply(&mut ns);
        }
        s.durable_ns = ns;
        s.pending_meta = still_pending;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, from)?;
        s.require_parent(to)?;
        match s.visible.remove(from) {
            Some(inode) => {
                s.visible.insert(to.to_path_buf(), inode);
                s.pending_meta.push(MetaOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                });
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such file: {}", from.display()),
            )),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, path)?;
        match s.visible.remove(path) {
            Some(_) => {
                s.pending_meta.push(MetaOp::Remove {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
            None if s.dir_exists(path) => {
                // Directory entries mirror create_dir_all: applied
                // immediately, outside the crash model. Only empty
                // directories may go.
                let occupied = s.visible.keys().any(|p| p.starts_with(path) && p != path)
                    || s.dirs.iter().any(|d| d.starts_with(path) && d != path);
                if occupied {
                    return Err(io::Error::new(
                        io::ErrorKind::DirectoryNotEmpty,
                        format!("simfs: directory not empty: {}", path.display()),
                    ));
                }
                s.dirs.retain(|d| d != path);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such file: {}", path.display()),
            )),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, dir)?;
        if !s.dir_exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such directory: {}", dir.display()),
            ));
        }
        Ok(s.visible
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut s = self.lock();
        self.begin_op(&mut s, true, dir)?;
        if !s.dir_exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such directory: {}", dir.display()),
            ));
        }
        let mut out: Vec<PathBuf> = s
            .dirs
            .iter()
            .filter(|d| d.parent() == Some(dir))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let mut s = self.lock();
        if self.begin_op(&mut s, false, path).is_err() {
            return false;
        }
        s.visible.contains_key(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.lock();
        self.begin_op(&mut s, false, dir)?;
        let mut ancestors: Vec<PathBuf> = dir.ancestors().map(Path::to_path_buf).collect();
        ancestors.reverse();
        for ancestor in ancestors {
            if !ancestor.as_os_str().is_empty() && !s.dir_exists(&ancestor) {
                s.dirs.push(ancestor);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn setup() -> Arc<SimFs> {
        let fs = Arc::new(SimFs::new(7));
        fs.create_dir_all(&p("/state")).unwrap();
        fs
    }

    #[test]
    fn read_write_rename_remove_roundtrip() {
        let fs = setup();
        fs.write(&p("/state/a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("/state/a")).unwrap(), b"hello");
        fs.rename(&p("/state/a"), &p("/state/b")).unwrap();
        assert!(!fs.exists(&p("/state/a")));
        assert_eq!(fs.read(&p("/state/b")).unwrap(), b"hello");
        assert_eq!(fs.list(&p("/state")).unwrap(), vec![p("/state/b")]);
        fs.remove(&p("/state/b")).unwrap();
        assert!(fs.list(&p("/state")).unwrap().is_empty());
        assert!(fs.read(&p("/state/b")).is_err());
    }

    #[test]
    fn writes_to_missing_directories_fail() {
        let fs = setup();
        let err = fs.write(&p("/nowhere/file"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn unsynced_content_tears_on_crash_synced_content_survives() {
        // The synced file survives every crash; the unsynced one may
        // tear to any prefix (and the entry itself may vanish).
        for seed in 0..64 {
            let fs = Arc::new(SimFs::new(seed));
            fs.create_dir_all(&p("/state")).unwrap();
            fs.write(&p("/state/synced"), b"precious").unwrap();
            fs.sync_file(&p("/state/synced")).unwrap();
            fs.sync_dir(&p("/state")).unwrap();
            fs.write(&p("/state/loose"), b"expendable-content").unwrap();
            fs.crash_now();
            assert!(fs.read(&p("/state/loose")).is_err(), "dead until reboot");
            fs.reboot();
            assert_eq!(fs.read(&p("/state/synced")).unwrap(), b"precious");
            if let Ok(content) = fs.read(&p("/state/loose")) {
                assert!(
                    b"expendable-content".starts_with(content.as_slice()),
                    "torn content must be a prefix, got {content:?}"
                );
            }
        }
    }

    #[test]
    fn unsynced_rename_may_or_may_not_survive_synced_rename_always_does() {
        let mut survived = 0;
        let mut vanished = 0;
        for seed in 0..64 {
            let fs = Arc::new(SimFs::new(seed));
            fs.create_dir_all(&p("/state")).unwrap();
            fs.write(&p("/state/t"), b"data").unwrap();
            fs.sync_file(&p("/state/t")).unwrap();
            fs.sync_dir(&p("/state")).unwrap();
            fs.rename(&p("/state/t"), &p("/state/final")).unwrap();
            fs.crash_now();
            fs.reboot();
            if fs.exists(&p("/state/final")) {
                survived += 1;
                assert_eq!(fs.read(&p("/state/final")).unwrap(), b"data");
                assert!(!fs.exists(&p("/state/t")));
            } else {
                vanished += 1;
                assert_eq!(fs.read(&p("/state/t")).unwrap(), b"data");
            }
        }
        assert!(survived > 0, "some unsynced renames must persist");
        assert!(vanished > 0, "some unsynced renames must be lost");

        // With the directory synced, the rename is always durable.
        let fs = setup();
        fs.write(&p("/state/t"), b"data").unwrap();
        fs.sync_file(&p("/state/t")).unwrap();
        fs.rename(&p("/state/t"), &p("/state/final")).unwrap();
        fs.sync_dir(&p("/state")).unwrap();
        fs.crash_now();
        fs.reboot();
        assert_eq!(fs.read(&p("/state/final")).unwrap(), b"data");
    }

    #[test]
    fn same_seed_same_ops_same_crash_image() {
        let run = |seed: u64| {
            let fs = Arc::new(SimFs::new(seed));
            fs.create_dir_all(&p("/state")).unwrap();
            for i in 0..10 {
                fs.write(&p(&format!("/state/f{i}")), &[i as u8; 64])
                    .unwrap();
                if i % 3 == 0 {
                    fs.sync_file(&p(&format!("/state/f{i}"))).unwrap();
                }
            }
            fs.rename(&p("/state/f1"), &p("/state/g1")).unwrap();
            fs.crash_now();
            fs.reboot();
            fs.image()
        };
        assert_eq!(run(11), run(11), "same seed must replay identically");
        assert_ne!(run(11), run(12), "different seeds must diverge");
    }

    #[test]
    fn scheduled_crash_trips_at_the_exact_op() {
        let fs = setup();
        fs.set_plan(FaultPlan::crash_after(2));
        fs.write(&p("/state/one"), b"1").unwrap();
        fs.write(&p("/state/two"), b"2").unwrap();
        let err = fs.write(&p("/state/three"), b"3").unwrap_err();
        assert!(SimFs::is_crash(&err), "{err}");
        assert!(SimFs::is_crash(&fs.read(&p("/state/one")).unwrap_err()));
        assert!(fs.crashed());
        fs.reboot();
        assert!(!fs.exists(&p("/state/three")));
    }

    #[test]
    fn enospc_tears_and_reports() {
        let fs = Arc::new(SimFs::new(3));
        fs.create_dir_all(&p("/state")).unwrap();
        fs.set_plan(FaultPlan {
            enospc_per_mille: 1000,
            ..FaultPlan::default()
        });
        let err = fs.write(&p("/state/full"), b"does not fit").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        fs.set_plan(FaultPlan::default());
        if let Ok(content) = fs.read(&p("/state/full")) {
            assert!(b"does not fit".starts_with(content.as_slice()));
        }
    }

    #[test]
    fn commit_replace_is_all_or_nothing_under_crashes() {
        // Crash at every syscall boundary inside commit_replace: the
        // target is always the old content in full or the new content
        // in full.
        for ops_before_crash in 0..8 {
            for seed in 0..16 {
                let fs = Arc::new(SimFs::new(seed));
                fs.create_dir_all(&p("/state")).unwrap();
                let target = p("/state/file");
                commit_replace(fs.as_ref(), &target, b"old-contents").unwrap();
                fs.set_plan(FaultPlan::crash_after(ops_before_crash));
                let result = commit_replace(fs.as_ref(), &target, b"new!");
                if fs.crashed() {
                    fs.reboot();
                } else {
                    result.unwrap();
                    fs.set_plan(FaultPlan::default());
                }
                let content = fs.read(&target).unwrap();
                assert!(
                    content == b"old-contents" || content == b"new!",
                    "torn commit after {ops_before_crash} ops (seed {seed}): {content:?}"
                );
            }
        }
    }

    #[test]
    fn sim_fs_lists_and_removes_directories() {
        let fs = setup();
        fs.create_dir_all(&p("/state/job-1.spill/visited")).unwrap();
        fs.create_dir_all(&p("/state/job-1.spill/frontier"))
            .unwrap();
        fs.write(&p("/state/job-1.spill/visited/run"), b"x")
            .unwrap();
        assert_eq!(
            fs.list_dirs(&p("/state")).unwrap(),
            vec![p("/state/job-1.spill")]
        );
        assert_eq!(
            fs.list_dirs(&p("/state/job-1.spill")).unwrap(),
            vec![
                p("/state/job-1.spill/frontier"),
                p("/state/job-1.spill/visited")
            ]
        );
        // A populated directory refuses removal; emptied, it goes, and
        // the listing reflects it.
        let err = fs.remove(&p("/state/job-1.spill/visited")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::DirectoryNotEmpty);
        fs.remove(&p("/state/job-1.spill/visited/run")).unwrap();
        fs.remove(&p("/state/job-1.spill/visited")).unwrap();
        fs.remove(&p("/state/job-1.spill/frontier")).unwrap();
        fs.remove(&p("/state/job-1.spill")).unwrap();
        assert!(fs.list_dirs(&p("/state")).unwrap().is_empty());
    }

    #[test]
    fn real_fs_lists_and_removes_directories() {
        let dir = std::env::temp_dir().join(format!("pnp_vfs_dirs_{}", std::process::id()));
        let fs = RealFs;
        fs.create_dir_all(&dir.join("scratch/visited")).unwrap();
        fs.write(&dir.join("scratch/visited/run"), b"x").unwrap();
        assert_eq!(fs.list_dirs(&dir).unwrap(), vec![dir.join("scratch")]);
        assert!(fs.remove(&dir.join("scratch/visited")).is_err());
        fs.remove(&dir.join("scratch/visited/run")).unwrap();
        fs.remove(&dir.join("scratch/visited")).unwrap();
        fs.remove(&dir.join("scratch")).unwrap();
        assert!(fs.list_dirs(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exact_injections_fire_at_their_op_and_record_the_trace() {
        let fs = setup();
        // setup() performed 1 op (create_dir_all); the writes below are
        // ops 2, 3, 4.
        fs.set_injections(vec![
            FsInjection {
                at_op: 3,
                kind: FsFaultKind::Enospc,
            },
            FsInjection {
                at_op: 4,
                kind: FsFaultKind::Crash,
            },
        ]);
        fs.write(&p("/state/a"), b"fine").unwrap();
        let err = fs.write(&p("/state/b"), b"torn-by-enospc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        if let Ok(content) = fs.read(&p("/state/b")) {
            assert!(b"torn-by-enospc".starts_with(content.as_slice()));
        }
        // That read crashed the process (op 4).
        assert!(fs.crashed());
        assert_eq!(fs.pending_injections(), 0);
        let trace = fs.fault_trace();
        assert_eq!(trace.len(), 2, "{trace:?}");
        assert_eq!(
            trace[0],
            FsFaultRecord {
                op: 3,
                kind: FsFaultKind::Enospc,
                path: p("/state/b"),
            }
        );
        assert_eq!(trace[1].op, 4);
        assert_eq!(trace[1].kind, FsFaultKind::Crash);
    }

    #[test]
    fn injections_survive_reboot_and_plan_changes() {
        let fs = setup();
        fs.set_injections(vec![
            FsInjection {
                at_op: 2,
                kind: FsFaultKind::Crash,
            },
            FsInjection {
                at_op: 4,
                kind: FsFaultKind::Eio,
            },
        ]);
        assert!(fs.write(&p("/state/a"), b"x").is_err());
        assert!(fs.crashed());
        fs.reboot();
        fs.set_plan(FaultPlan::default());
        // The op counter kept running: op 3 succeeds, op 4 fails EIO.
        fs.write(&p("/state/a"), b"y").unwrap();
        let err = fs.write(&p("/state/a"), b"z").unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
        let kinds: Vec<FsFaultKind> = fs.fault_trace().into_iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![FsFaultKind::Crash, FsFaultKind::Eio]);
    }

    #[test]
    fn plan_drawn_faults_land_in_the_trace_deterministically() {
        let run = |seed: u64| {
            let fs = Arc::new(SimFs::new(seed));
            fs.create_dir_all(&p("/state")).unwrap();
            fs.set_plan(FaultPlan {
                enospc_per_mille: 400,
                eio_per_mille: 200,
                ..FaultPlan::default()
            });
            for i in 0..32 {
                let _ = fs.write(&p(&format!("/state/f{i}")), &[i as u8; 16]);
                let _ = fs.sync_file(&p(&format!("/state/f{i}")));
            }
            fs.fault_trace()
        };
        let trace = run(9);
        assert!(!trace.is_empty(), "faults must fire at these rates");
        assert_eq!(trace, run(9), "same seed must record the same trace");
        assert_ne!(trace, run(10), "different seeds must diverge");
    }

    #[test]
    fn real_fs_commit_replace_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pnp_vfs_test_{}", std::process::id()));
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let target = dir.join("artifact");
        commit_replace(&fs, &target, b"v1").unwrap();
        commit_replace(&fs, &target, b"v2").unwrap();
        assert_eq!(fs.read(&target).unwrap(), b"v2");
        assert!(!fs.exists(&tmp_sibling(&target)), "tmp must be consumed");
        assert_eq!(fs.list(&dir).unwrap(), vec![target.clone()]);
        fs.sync_dir(&dir).unwrap();
        fs.remove(&target).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
