//! Versioned, self-describing binary snapshots of an interrupted safety
//! search, with their own little serializer (no external dependencies).
//!
//! A snapshot captures everything needed to resume a breadth-first safety
//! search exactly where it stopped: the search tree's parent links and
//! depths, the unexpanded frontier (with full state payloads), the visited
//! set's backend payload, cumulative statistics, and a fingerprint of the
//! compiled [`Program`] so a snapshot can never be resumed against a
//! different model.
//!
//! ## Wire format (version 2, little-endian)
//!
//! ```text
//! magic     8 B   "PNPSNAP1"
//! version   u32
//! fingerprint u64            -- program_fingerprint() of the model
//! tag       str              -- caller label (e.g. the property name)
//! backend   u8 (+ params)    -- 0 exact | 1 compact | 2 bitstate | 3 disk
//! stats     9 × u64          -- steps, max_depth, peak_frontier,
//!                               approx_memory, elapsed_ns, replay_rejected,
//!                               spilled_states, spill_bytes, merge_passes
//! parents   u64 count, entries (flag u8, parent u64, step)
//! depths    u64 count, u64 each
//! frontier  u64 count, (id u64, state) each
//! visited   backend payload  -- exact/disk: none (rebuilt by replay);
//!                               compact: hashes; bitstate: arena words
//! checksum  u64              -- FNV-1a + mix64 over all preceding bytes
//! ```
//!
//! The trailing checksum makes truncation and bit corruption detectable:
//! decoding verifies it before parsing, so a damaged file yields a clean
//! [`SnapshotError`], never a panic or a garbage resume. The exact
//! backend's visited payload is deliberately *not* serialized — it is the
//! heaviest structure and is fully determined by the parent links, so
//! resume rebuilds it by replaying each state's discovery step.

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;

use crate::program::{ProcId, Program};
use crate::rng::fnv64;
use crate::state::{Msg, ProcState, State, Step};
use crate::vfs::{commit_replace, real_fs, VfsHandle};
use crate::visited::VisitedKind;

const MAGIC: &[u8; 8] = b"PNPSNAP1";
const VERSION: u32 = 2;

/// A stable 64-bit fingerprint of a compiled [`Program`].
///
/// Computed over the program's canonical debug rendering, which covers
/// every structural detail (channels, processes, transitions, guards,
/// initial values); native functions contribute their names. Two programs
/// with the same fingerprint are structurally identical for search
/// purposes, so resuming a snapshot against a program with a different
/// fingerprint is refused.
pub fn program_fingerprint(program: &Program) -> u64 {
    fnv64(format!("{program:?}").as_bytes())
}

/// Why a snapshot could not be written, read, or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An I/O failure while storing or loading.
    Io(String),
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The data ends before the encoded structures do.
    Truncated,
    /// The checksum does not match, or a structural invariant is broken.
    Corrupted(String),
    /// The snapshot belongs to a different program.
    FingerprintMismatch {
        /// Fingerprint of the program being resumed.
        expected: u64,
        /// Fingerprint stored in the snapshot.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PnP snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::Corrupted(what) => write!(f, "snapshot is corrupted: {what}"),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different program \
                 (program fingerprint {expected:#018x}, snapshot has {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Cumulative statistics carried inside a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SnapStats {
    pub steps: u64,
    pub max_depth: u64,
    pub peak_frontier: u64,
    pub approx_memory_bytes: u64,
    pub elapsed_nanos: u64,
    pub replay_rejected: u64,
    pub spilled_states: u64,
    pub spill_bytes: u64,
    pub merge_passes: u64,
}

/// The visited-set backend payload carried inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum VisitedPayload {
    /// Exact sets are rebuilt by replaying the parent links.
    Exact,
    /// The compacted 64-bit hashes.
    Compact(Vec<u64>),
    /// The bitstate arena words plus the insert count.
    Bitstate { arena: Vec<u64>, inserted: u64 },
}

/// A decoded checkpoint of an interrupted safety search.
///
/// Produced by [`crate::Checker::checkpoint_to`] flushes; load one with
/// [`Snapshot::decode`] and hand it to [`crate::Checker::resume_from`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) fingerprint: u64,
    pub(crate) tag: String,
    pub(crate) kind: VisitedKind,
    pub(crate) stats: SnapStats,
    pub(crate) parents: Vec<Option<(usize, Step)>>,
    pub(crate) depths: Vec<usize>,
    pub(crate) frontier: Vec<(usize, State)>,
    pub(crate) visited: VisitedPayload,
}

impl Snapshot {
    /// The fingerprint of the program this snapshot belongs to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The caller-supplied label (e.g. the property name being checked).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The visited-set backend the interrupted search was using.
    pub fn visited_kind(&self) -> VisitedKind {
        self.kind
    }

    /// Unique states discovered before the interruption.
    pub fn states_covered(&self) -> usize {
        self.parents.len()
    }

    /// States discovered but not yet expanded.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether this snapshot was taken from a search over `program`.
    pub fn matches_program(&self, program: &Program) -> bool {
        self.fingerprint == program_fingerprint(program)
    }

    /// Serializes the snapshot to its versioned binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(self.fingerprint);
        w.str(&self.tag);
        match self.kind {
            VisitedKind::Exact => w.u8(0),
            VisitedKind::Compact => w.u8(1),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => {
                w.u8(2);
                w.u64(arena_bytes as u64);
                w.u32(hashes);
            }
            VisitedKind::DiskExact => w.u8(3),
        }
        w.u64(self.stats.steps);
        w.u64(self.stats.max_depth);
        w.u64(self.stats.peak_frontier);
        w.u64(self.stats.approx_memory_bytes);
        w.u64(self.stats.elapsed_nanos);
        w.u64(self.stats.replay_rejected);
        w.u64(self.stats.spilled_states);
        w.u64(self.stats.spill_bytes);
        w.u64(self.stats.merge_passes);
        w.u64(self.parents.len() as u64);
        for parent in &self.parents {
            match parent {
                None => w.u8(0),
                Some((id, step)) => {
                    w.u8(1);
                    w.u64(*id as u64);
                    w.step(step);
                }
            }
        }
        w.u64(self.depths.len() as u64);
        for &d in &self.depths {
            w.u64(d as u64);
        }
        w.u64(self.frontier.len() as u64);
        for (id, state) in &self.frontier {
            w.u64(*id as u64);
            w.state(state);
        }
        match &self.visited {
            VisitedPayload::Exact => {}
            VisitedPayload::Compact(hashes) => {
                w.u64(hashes.len() as u64);
                for &h in hashes {
                    w.u64(h);
                }
            }
            VisitedPayload::Bitstate { arena, inserted } => {
                w.u64(arena.len() as u64);
                for &word in arena {
                    w.u64(word);
                }
                w.u64(*inserted);
            }
        }
        let checksum = fnv64(&w.out);
        w.u64(checksum);
        w.out
    }

    /// Parses a snapshot from its binary form, verifying magic, version,
    /// and checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for anything that is not a well-formed
    /// version-2 snapshot — wrong magic, unknown version, truncation, a
    /// checksum mismatch, or internally inconsistent structures. Never
    /// panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(
                if bytes.starts_with(MAGIC) || MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::BadMagic
                },
            );
        }
        if &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv64(body) != stored {
            return Err(SnapshotError::Corrupted("checksum mismatch".into()));
        }
        let mut r = Reader {
            bytes: body,
            pos: 8,
        };
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let fingerprint = r.u64()?;
        let tag = r.str()?;
        let kind = match r.u8()? {
            0 => VisitedKind::Exact,
            1 => VisitedKind::Compact,
            2 => {
                let arena_bytes = r.usize()?;
                let hashes = r.u32()?;
                VisitedKind::Bitstate {
                    arena_bytes,
                    hashes,
                }
            }
            3 => VisitedKind::DiskExact,
            other => {
                return Err(SnapshotError::Corrupted(format!(
                    "unknown visited-set backend tag {other}"
                )))
            }
        };
        let stats = SnapStats {
            steps: r.u64()?,
            max_depth: r.u64()?,
            peak_frontier: r.u64()?,
            approx_memory_bytes: r.u64()?,
            elapsed_nanos: r.u64()?,
            replay_rejected: r.u64()?,
            spilled_states: r.u64()?,
            spill_bytes: r.u64()?,
            merge_passes: r.u64()?,
        };
        let n_parents = r.usize()?;
        let mut parents = Vec::new();
        for i in 0..n_parents {
            match r.u8()? {
                0 => parents.push(None),
                1 => {
                    let id = r.usize()?;
                    if id >= i {
                        return Err(SnapshotError::Corrupted(format!(
                            "state {i} claims later/self parent {id}"
                        )));
                    }
                    let step = r.step()?;
                    parents.push(Some((id, step)));
                }
                other => {
                    return Err(SnapshotError::Corrupted(format!(
                        "bad parent flag {other} at state {i}"
                    )))
                }
            }
        }
        let n_depths = r.usize()?;
        if n_depths != n_parents {
            return Err(SnapshotError::Corrupted(format!(
                "{n_parents} parents but {n_depths} depths"
            )));
        }
        let mut depths = Vec::new();
        for _ in 0..n_depths {
            depths.push(r.usize()?);
        }
        let n_frontier = r.usize()?;
        let mut frontier = Vec::new();
        for _ in 0..n_frontier {
            let id = r.usize()?;
            if id >= n_parents {
                return Err(SnapshotError::Corrupted(format!(
                    "frontier references unknown state {id}"
                )));
            }
            let state = r.state()?;
            frontier.push((id, state));
        }
        let visited = match kind {
            VisitedKind::Exact | VisitedKind::DiskExact => VisitedPayload::Exact,
            VisitedKind::Compact => {
                let n = r.usize()?;
                let mut hashes = Vec::new();
                for _ in 0..n {
                    hashes.push(r.u64()?);
                }
                VisitedPayload::Compact(hashes)
            }
            VisitedKind::Bitstate { .. } => {
                let n = r.usize()?;
                let mut arena = Vec::new();
                for _ in 0..n {
                    arena.push(r.u64()?);
                }
                let inserted = r.u64()?;
                VisitedPayload::Bitstate { arena, inserted }
            }
        };
        if r.pos != r.bytes.len() {
            return Err(SnapshotError::Corrupted(format!(
                "{} trailing bytes",
                r.bytes.len() - r.pos
            )));
        }
        Ok(Snapshot {
            fingerprint,
            tag,
            kind,
            stats,
            parents,
            depths,
            frontier,
            visited,
        })
    }
}

/// Where checkpoint bytes go. Implementations must replace, not append:
/// each flush stores a complete snapshot superseding the previous one.
pub trait SnapshotSink {
    /// Atomically replaces the stored snapshot with `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when storing fails.
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

impl SnapshotSink for Box<dyn SnapshotSink> {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).store(bytes)
    }
}

/// A [`SnapshotSink`] that writes to a file, crash-consistently: bytes go
/// to a `.tmp` sibling, the tmp file is fsynced, renamed over the target,
/// and the parent directory is fsynced — so an interrupted flush can never
/// leave a half-written snapshot at the target path, and a completed flush
/// survives power loss (see [`commit_replace`]).
#[derive(Debug, Clone)]
pub struct FileSink {
    path: PathBuf,
    vfs: VfsHandle,
}

impl FileSink {
    /// A sink writing snapshots to `path` on the real filesystem.
    pub fn new(path: impl Into<PathBuf>) -> FileSink {
        FileSink::with_vfs(path, real_fs())
    }

    /// A sink writing snapshots to `path` through `vfs` (so the simulated
    /// filesystem can inject storage faults into checkpoint flushes).
    pub fn with_vfs(path: impl Into<PathBuf>, vfs: VfsHandle) -> FileSink {
        FileSink {
            path: path.into(),
            vfs,
        }
    }

    /// The target path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl SnapshotSink for FileSink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        commit_replace(self.vfs.as_ref(), &self.path, bytes)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", self.path.display())))
    }
}

/// An in-memory sink: each flush replaces the buffer's contents. Keep a
/// clone of the `Rc` to read the latest snapshot back (tests, embedding).
impl SnapshotSink for std::rc::Rc<std::cell::RefCell<Vec<u8>>> {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        *self.borrow_mut() = bytes.to_vec();
        Ok(())
    }
}

/// Loads and decodes a snapshot file.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the file cannot be read, or any
/// decoding error for malformed contents.
pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Snapshot, SnapshotError> {
    let path = path.as_ref();
    let bytes =
        std::fs::read(path).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
    Snapshot::decode(&bytes)
}

/// Encodes one state with the snapshot state codec. The out-of-core run
/// files ([`crate::extmem`]) reuse this so a state has exactly one byte
/// representation across every on-disk structure.
pub(crate) fn encode_state(state: &State) -> Vec<u8> {
    let mut w = Writer::new();
    w.state(state);
    w.out
}

/// Decodes one state written by [`encode_state`], requiring the whole
/// buffer to be consumed.
pub(crate) fn decode_state(bytes: &[u8]) -> Result<State, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let state = r.state()?;
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupted(format!(
            "{} trailing bytes after state",
            bytes.len() - r.pos
        )));
    }
    Ok(state)
}

// ---------------------------------------------------------------------
// The serializer
// ---------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { out: Vec::new() }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn step(&mut self, step: &Step) {
        self.u64(step.proc.index() as u64);
        self.u64(step.trans as u64);
        match step.partner {
            None => self.u8(0),
            Some((proc, trans)) => {
                self.u8(1);
                self.u64(proc.index() as u64);
                self.u64(trans as u64);
            }
        }
    }

    fn state(&mut self, state: &State) {
        self.u64(state.procs.len() as u64);
        for proc in state.procs.iter() {
            self.u32(proc.loc);
            self.u64(proc.locals.len() as u64);
            for &v in proc.locals.iter() {
                self.i32(v);
            }
        }
        self.u64(state.chans.len() as u64);
        for chan in state.chans.iter() {
            self.u64(chan.len() as u64);
            for msg in chan.iter() {
                self.u64(msg.fields().len() as u64);
                for &v in msg.fields() {
                    self.i32(v);
                }
            }
        }
        self.u64(state.globals.len() as u64);
        for &v in state.globals.iter() {
            self.i32(v);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupted(format!("count {v} overflows")))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupted("tag is not UTF-8".into()))
    }

    fn step(&mut self) -> Result<Step, SnapshotError> {
        let proc = ProcId::from_index(self.usize()?);
        let trans = self.usize()?;
        let partner = match self.u8()? {
            0 => None,
            1 => Some((ProcId::from_index(self.usize()?), self.usize()?)),
            other => {
                return Err(SnapshotError::Corrupted(format!(
                    "bad partner flag {other}"
                )))
            }
        };
        Ok(Step {
            proc,
            trans,
            partner,
        })
    }

    fn state(&mut self) -> Result<State, SnapshotError> {
        let n_procs = self.usize()?;
        let mut procs = Vec::new();
        for _ in 0..n_procs {
            let loc = self.u32()?;
            let n_locals = self.usize()?;
            let mut locals = Vec::new();
            for _ in 0..n_locals {
                locals.push(self.i32()?);
            }
            procs.push(ProcState {
                loc,
                locals: locals.into_boxed_slice(),
            });
        }
        let n_chans = self.usize()?;
        let mut chans = Vec::new();
        for _ in 0..n_chans {
            let n_msgs = self.usize()?;
            let mut queue = VecDeque::new();
            for _ in 0..n_msgs {
                let n_fields = self.usize()?;
                let mut fields = Vec::new();
                for _ in 0..n_fields {
                    fields.push(self.i32()?);
                }
                queue.push_back(Msg::new(fields));
            }
            chans.push(queue);
        }
        let n_globals = self.usize()?;
        let mut globals = Vec::new();
        for _ in 0..n_globals {
            globals.push(self.i32()?);
        }
        Ok(State {
            procs: procs.into_boxed_slice(),
            chans: chans.into_boxed_slice(),
            globals: globals.into_boxed_slice(),
        })
    }
}

/// A small fully-populated snapshot for cross-module tests (the durable
/// generation store roundtrips real snapshot payloads through it).
#[cfg(test)]
pub(crate) fn test_snapshot() -> Snapshot {
    tests::sample_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        let state = State {
            procs: vec![ProcState {
                loc: 3,
                locals: vec![1, -2].into_boxed_slice(),
            }]
            .into_boxed_slice(),
            chans: vec![VecDeque::from([Msg::new(vec![7, 8])])].into_boxed_slice(),
            globals: vec![-9, 0, 42].into_boxed_slice(),
        };
        let step = Step {
            proc: ProcId::from_index(0),
            trans: 1,
            partner: Some((ProcId::from_index(2), 0)),
        };
        Snapshot {
            fingerprint: 0xdead_beef_1234_5678,
            tag: "no_deadlock".into(),
            kind: VisitedKind::Bitstate {
                arena_bytes: 1024,
                hashes: 3,
            },
            stats: SnapStats {
                steps: 10,
                max_depth: 4,
                peak_frontier: 6,
                approx_memory_bytes: 4096,
                elapsed_nanos: 1_000_000,
                replay_rejected: 1,
                spilled_states: 5,
                spill_bytes: 640,
                merge_passes: 2,
            },
            parents: vec![None, Some((0, step))],
            depths: vec![0, 1],
            frontier: vec![(1, state)],
            visited: VisitedPayload::Bitstate {
                arena: vec![0b1011, 0, u64::MAX],
                inserted: 2,
            },
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.fingerprint, snap.fingerprint);
        assert_eq!(decoded.tag, snap.tag);
        assert_eq!(decoded.kind, snap.kind);
        assert_eq!(decoded.stats, snap.stats);
        assert_eq!(decoded.parents, snap.parents);
        assert_eq!(decoded.depths, snap.depths);
        assert_eq!(decoded.frontier.len(), 1);
        assert_eq!(decoded.frontier[0].0, 1);
        assert_eq!(decoded.frontier[0].1, snap.frontier[0].1);
        assert_eq!(decoded.visited, snap.visited);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            Snapshot::decode(b"definitely not a snapshot, sorry").err(),
            Some(SnapshotError::BadMagic)
        );
        assert!(Snapshot::decode(&[]).is_err());
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..len])
                .expect_err(&format!("truncation to {len} bytes must fail"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::Corrupted(_)
                ),
                "unexpected error at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_snapshot().encode();
        // Flip one bit in each byte: the checksum (or magic) must catch it.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn unsupported_version_is_reported() {
        let snap = sample_snapshot();
        let mut bytes = snap.encode();
        // Overwrite the version field (offset 8) and re-seal the checksum.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let checksum = fnv64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&bytes).err(),
            Some(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn file_sink_roundtrips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("pnp_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("search.pnpsnap");
        let mut sink = FileSink::new(&path);
        sink.store(b"old").unwrap();
        let snap = sample_snapshot();
        sink.store(&snap.encode()).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.tag, "no_deadlock");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_snapshot("/nonexistent/dir/nope.pnpsnap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
    }
}
