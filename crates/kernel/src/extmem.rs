//! External-memory building blocks for out-of-core search: checksummed
//! `PNPRUN01` run files on the [`Vfs`](crate::vfs::Vfs), a k-way
//! streaming merge with dedup, and a BFS frontier that spills to disk.
//!
//! ## Run file wire format (little-endian)
//!
//! ```text
//! magic     8 B   "PNPRUN01"
//! count     u64
//! entries   count × (key u64, len u64, payload bytes)
//! checksum  u64   -- FNV-1a + mix64 over all preceding bytes
//! ```
//!
//! Runs holding visited-set partitions are sorted by `(key, payload)`;
//! frontier chunks reuse the same envelope in insertion order. Every run
//! is written through [`commit_replace`], so a crash mid-write can never
//! leave a half-written file at a run's path, and the trailing checksum
//! turns torn prefixes and bit rot into clean [`io::ErrorKind::InvalidData`]
//! errors instead of garbage states.

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::rc::Rc;

use crate::rng::fnv64;
use crate::snapshot::{decode_state, encode_state};
use crate::state::State;
use crate::vfs::{commit_replace, VfsHandle};

pub(crate) const RUN_MAGIC: &[u8; 8] = b"PNPRUN01";

/// One record in a run file: a 64-bit sort key (a state hash for visited
/// runs, a discovery id for frontier chunks) and an opaque payload (the
/// snapshot-codec encoding of the state).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct RunEntry {
    pub key: u64,
    pub payload: Vec<u8>,
}

fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("run file corrupted: {}", what.into()),
    )
}

/// Serializes entries into the checksummed `PNPRUN01` envelope.
pub(crate) fn encode_run(entries: &[RunEntry]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(8 + 8 + entries.iter().map(|e| 16 + e.payload.len()).sum::<usize>() + 8);
    out.extend_from_slice(RUN_MAGIC);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for entry in entries {
        out.extend_from_slice(&entry.key.to_le_bytes());
        out.extend_from_slice(&(entry.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&entry.payload);
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses a `PNPRUN01` run, verifying magic and checksum first so any
/// truncation or bit flip is a clean [`io::ErrorKind::InvalidData`] error.
pub(crate) fn decode_run(bytes: &[u8]) -> io::Result<Vec<RunEntry>> {
    if bytes.len() < 8 + 8 + 8 {
        return Err(corrupt("shorter than the fixed envelope"));
    }
    if &bytes[..8] != RUN_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv64(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let count = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let count = usize::try_from(count).map_err(|_| corrupt("entry count overflows"))?;
    let mut pos: usize = 16;
    let mut entries = Vec::with_capacity(count.min(body.len() / 16));
    for i in 0..count {
        let header_end = pos
            .checked_add(16)
            .filter(|&end| end <= body.len())
            .ok_or_else(|| corrupt(format!("entry {i} header out of bounds")))?;
        let key = u64::from_le_bytes(body[pos..pos + 8].try_into().unwrap());
        let len = u64::from_le_bytes(body[pos + 8..header_end].try_into().unwrap());
        let len =
            usize::try_from(len).map_err(|_| corrupt(format!("entry {i} length overflows")))?;
        let end = header_end
            .checked_add(len)
            .filter(|&end| end <= body.len())
            .ok_or_else(|| corrupt(format!("entry {i} payload out of bounds")))?;
        entries.push(RunEntry {
            key,
            payload: body[header_end..end].to_vec(),
        });
        pos = end;
    }
    if pos != body.len() {
        return Err(corrupt(format!("{} trailing bytes", body.len() - pos)));
    }
    Ok(entries)
}

/// Merges sorted runs into one sorted run via a k-way streaming heap,
/// dropping duplicate `(key, payload)` records. Inputs must each be
/// sorted by `(key, payload)`; the output is, too.
pub(crate) fn merge_runs(runs: Vec<Vec<RunEntry>>) -> Vec<RunEntry> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut iters: Vec<_> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::new();
    for (source, iter) in iters.iter_mut().enumerate() {
        if let Some(entry) = iter.next() {
            heap.push(Reverse((entry.key, entry.payload, source)));
        }
    }
    let mut out: Vec<RunEntry> = Vec::new();
    while let Some(Reverse((key, payload, source))) = heap.pop() {
        if let Some(entry) = iters[source].next() {
            heap.push(Reverse((entry.key, entry.payload, source)));
        }
        let duplicate = out
            .last()
            .is_some_and(|last| last.key == key && last.payload == payload);
        if !duplicate {
            out.push(RunEntry { key, payload });
        }
    }
    out
}

/// A FIFO BFS frontier that keeps a bounded tail in RAM and spills full
/// chunks to `PNPRUN01` files, reading them back (and deleting them) in
/// order as the search drains the queue.
///
/// Structure: `head` (states read back or pushed to the front) →
/// spilled `chunks` (oldest first) → `tail` (the in-RAM write buffer).
/// `push_front` is infallible so budget-trip rollback never touches
/// the disk.
#[derive(Debug)]
pub(crate) struct SpillFrontier {
    vfs: VfsHandle,
    dir: PathBuf,
    head: VecDeque<(usize, Rc<State>)>,
    chunks: VecDeque<u64>,
    tail: VecDeque<(usize, Rc<State>)>,
    tail_bytes: usize,
    chunk_cap_bytes: usize,
    per_state_bytes: usize,
    next_chunk: u64,
    len: usize,
    spilled_states: usize,
    spill_bytes: usize,
}

impl SpillFrontier {
    /// An empty spilled frontier storing chunks under `dir` (created if
    /// missing; stale chunk files from a previous run are wiped).
    pub(crate) fn new(
        vfs: VfsHandle,
        dir: impl Into<PathBuf>,
        chunk_cap_bytes: usize,
        per_state_bytes: usize,
    ) -> io::Result<SpillFrontier> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        for path in vfs.list(&dir)? {
            if path.extension().is_some_and(|e| e == "pnprun") {
                vfs.remove(&path)?;
            }
        }
        Ok(SpillFrontier {
            vfs,
            dir,
            head: VecDeque::new(),
            chunks: VecDeque::new(),
            tail: VecDeque::new(),
            tail_bytes: 0,
            chunk_cap_bytes: chunk_cap_bytes.max(1),
            per_state_bytes: per_state_bytes.max(1),
            next_chunk: 0,
            len: 0,
            spilled_states: 0,
            spill_bytes: 0,
        })
    }

    fn chunk_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("frontier-{seq:08}.pnprun"))
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// States spilled to chunk files so far (cumulative).
    pub(crate) fn spilled_states(&self) -> usize {
        self.spilled_states
    }

    /// Bytes written to chunk files so far (cumulative).
    pub(crate) fn spill_bytes(&self) -> usize {
        self.spill_bytes
    }

    /// RAM actually held by this frontier: the head/tail state buffers
    /// plus chunk bookkeeping — the spilled middle costs nothing here.
    pub(crate) fn ram_bytes(&self) -> usize {
        (self.head.len() + self.tail.len()) * self.per_state_bytes + self.chunks.len() * 16
    }

    /// Appends to the queue, flushing the tail to a chunk file once it
    /// crosses the chunk capacity. On a flush error the tail (including
    /// this state) stays in RAM, so no state is ever lost.
    pub(crate) fn push_back(&mut self, id: usize, state: Rc<State>) -> io::Result<()> {
        let bytes = encode_state(&state).len() + 16;
        self.tail.push_back((id, state));
        self.tail_bytes += bytes;
        self.len += 1;
        if self.tail_bytes >= self.chunk_cap_bytes {
            self.flush_tail()?;
        }
        Ok(())
    }

    /// Returns a state to the front of the queue (budget-trip rollback).
    /// Purely in-RAM, so it cannot fail.
    pub(crate) fn push_front(&mut self, id: usize, state: Rc<State>) {
        self.head.push_front((id, state));
        self.len += 1;
    }

    /// Pops the oldest state, reading back (and then deleting) the oldest
    /// chunk file when the in-RAM head is exhausted. A chunk that fails to
    /// read stays on disk and in the queue, so the caller can checkpoint
    /// or retry without losing states.
    pub(crate) fn pop_front(&mut self) -> io::Result<Option<(usize, Rc<State>)>> {
        if self.head.is_empty() {
            if let Some(&seq) = self.chunks.front() {
                let path = self.chunk_path(seq);
                let mut loaded = VecDeque::new();
                for entry in decode_run(&self.vfs.read(&path)?)? {
                    let id =
                        usize::try_from(entry.key).map_err(|_| corrupt("frontier id overflows"))?;
                    let state = decode_state(&entry.payload)
                        .map_err(|e| corrupt(format!("frontier state: {e}")))?;
                    loaded.push_back((id, Rc::new(state)));
                }
                // Fully decoded: only now consume the chunk.
                self.chunks.pop_front();
                let _ = self.vfs.remove(&path);
                self.head = loaded;
            } else if !self.tail.is_empty() {
                std::mem::swap(&mut self.head, &mut self.tail);
                self.tail_bytes = 0;
            }
        }
        let popped = self.head.pop_front();
        if popped.is_some() {
            self.len -= 1;
        }
        Ok(popped)
    }

    /// A non-destructive FIFO-ordered copy of every queued state, for
    /// checkpoint snapshots (chunks are read but not consumed).
    pub(crate) fn snapshot_states(&self) -> io::Result<Vec<(usize, State)>> {
        let mut out = Vec::with_capacity(self.len);
        for (id, state) in &self.head {
            out.push((*id, (**state).clone()));
        }
        for &seq in &self.chunks {
            for entry in decode_run(&self.vfs.read(&self.chunk_path(seq))?)? {
                let id =
                    usize::try_from(entry.key).map_err(|_| corrupt("frontier id overflows"))?;
                let state = decode_state(&entry.payload)
                    .map_err(|e| corrupt(format!("frontier state: {e}")))?;
                out.push((id, state));
            }
        }
        for (id, state) in &self.tail {
            out.push((*id, (**state).clone()));
        }
        Ok(out)
    }

    fn flush_tail(&mut self) -> io::Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let entries: Vec<RunEntry> = self
            .tail
            .iter()
            .map(|(id, state)| RunEntry {
                key: *id as u64,
                payload: encode_state(state),
            })
            .collect();
        let bytes = encode_run(&entries);
        commit_replace(self.vfs.as_ref(), &self.chunk_path(self.next_chunk), &bytes)?;
        self.chunks.push_back(self.next_chunk);
        self.next_chunk += 1;
        self.spilled_states += entries.len();
        self.spill_bytes += bytes.len();
        self.tail.clear();
        self.tail_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcState;
    use crate::vfs::{SimFs, Vfs};
    use std::path::Path;
    use std::sync::Arc;

    fn entry(key: u64, payload: &[u8]) -> RunEntry {
        RunEntry {
            key,
            payload: payload.to_vec(),
        }
    }

    fn tiny_state(tag: i32) -> State {
        State {
            procs: vec![ProcState {
                loc: tag as u32,
                locals: vec![tag, -tag].into_boxed_slice(),
            }]
            .into_boxed_slice(),
            chans: Vec::new().into_boxed_slice(),
            globals: vec![tag].into_boxed_slice(),
        }
    }

    #[test]
    fn run_roundtrip_preserves_entries() {
        let entries = vec![entry(1, b"a"), entry(2, b""), entry(2, b"bb")];
        assert_eq!(decode_run(&encode_run(&entries)).unwrap(), entries);
        assert_eq!(decode_run(&encode_run(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn every_truncation_and_bit_flip_is_a_clean_error() {
        let bytes = encode_run(&[entry(7, b"payload"), entry(9, b"x")]);
        for len in 0..bytes.len() {
            let err = decode_run(&bytes[..len]).expect_err("truncation must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                decode_run(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn merge_sorts_and_dedups_across_runs() {
        let a = vec![entry(1, b"a"), entry(3, b"c"), entry(5, b"e")];
        let b = vec![entry(1, b"a"), entry(3, b"b"), entry(5, b"e")];
        let merged = merge_runs(vec![a, b]);
        assert_eq!(
            merged,
            vec![
                entry(1, b"a"),
                entry(3, b"b"),
                entry(3, b"c"),
                entry(5, b"e")
            ]
        );
        assert!(merge_runs(Vec::new()).is_empty());
    }

    #[test]
    fn spill_frontier_preserves_fifo_order_across_chunks() {
        let fs = Arc::new(SimFs::new(11));
        // A ~40-byte state with a 1-byte chunk cap: every push flushes.
        let mut frontier = SpillFrontier::new(fs.clone(), Path::new("/spill"), 1, 64).unwrap();
        for i in 0..20 {
            frontier
                .push_back(i, Rc::new(tiny_state(i as i32)))
                .unwrap();
        }
        assert_eq!(frontier.len(), 20);
        assert!(frontier.spilled_states() > 0);
        let snapshot = frontier.snapshot_states().unwrap();
        assert_eq!(snapshot.len(), 20);
        // Rollback path: push_front must come out first.
        frontier.push_front(99, Rc::new(tiny_state(99)));
        let mut seen = Vec::new();
        while let Some((id, state)) = frontier.pop_front().unwrap() {
            assert_eq!(state.globals[0] as usize, id);
            seen.push(id);
        }
        let expected: Vec<usize> = std::iter::once(99).chain(0..20).collect();
        assert_eq!(seen, expected);
        assert!(frontier.is_empty());
        // Consumed chunks are deleted from disk.
        assert!(fs.list(Path::new("/spill")).unwrap().is_empty());
    }

    #[test]
    fn spill_frontier_interleaves_pushes_and_pops() {
        let fs = Arc::new(SimFs::new(12));
        let mut frontier = SpillFrontier::new(fs, Path::new("/spill"), 100, 64).unwrap();
        let mut next_push = 0usize;
        let mut next_pop = 0usize;
        for round in 0..50 {
            for _ in 0..=(round % 3) {
                frontier
                    .push_back(next_push, Rc::new(tiny_state(next_push as i32)))
                    .unwrap();
                next_push += 1;
            }
            if round % 2 == 0 {
                let (id, _) = frontier.pop_front().unwrap().unwrap();
                assert_eq!(id, next_pop, "FIFO order broken");
                next_pop += 1;
            }
        }
        while let Some((id, _)) = frontier.pop_front().unwrap() {
            assert_eq!(id, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn constructor_wipes_stale_chunks() {
        let fs = Arc::new(SimFs::new(13));
        {
            let mut old = SpillFrontier::new(fs.clone(), Path::new("/spill"), 1, 64).unwrap();
            old.push_back(0, Rc::new(tiny_state(0))).unwrap();
            assert!(!fs.list(Path::new("/spill")).unwrap().is_empty());
        }
        let fresh = SpillFrontier::new(fs.clone(), Path::new("/spill"), 1, 64).unwrap();
        assert!(fresh.is_empty());
        assert!(fs.list(Path::new("/spill")).unwrap().is_empty());
    }
}
