//! Breadth-first safety checking: deadlocks, invariants, assertions.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::expression::{EvalCtx, Expr};
use crate::extmem::SpillFrontier;
use crate::program::Program;
use crate::snapshot::{
    program_fingerprint, SnapStats, Snapshot, SnapshotError, SnapshotSink, VisitedPayload,
};
use crate::state::{
    apply_step, enabled_steps, is_valid_end_state, KernelError, State, StateView, Step,
};
use crate::trace::Trace;
use crate::vfs::VfsHandle;
use crate::visited::{
    disk_hash, AnyVisited, BitstateVisited, CompactVisited, DiskExactVisited, ExactVisited,
    VisitedKind, VisitedSet,
};

/// A boolean predicate over system states, used for invariants and LTL
/// propositions.
#[derive(Clone)]
pub struct Predicate(PredImpl);

#[derive(Clone)]
enum PredImpl {
    /// An expression over the program's *globals* (locals are not in scope).
    Expr(Expr),
    /// An arbitrary native predicate.
    Native {
        name: String,
        f: Arc<dyn Fn(&StateView<'_>) -> bool + Send + Sync>,
    },
}

impl Predicate {
    /// A predicate from an expression over the program's global variables.
    ///
    /// Local variables and `_pid` are not in scope; referencing them yields
    /// a checking-time [`KernelError`].
    pub fn from_expr(expr: Expr) -> Predicate {
        Predicate(PredImpl::Expr(expr))
    }

    /// A predicate from a native function with full read access to the
    /// state. The name appears in diagnostics.
    pub fn native(
        name: impl Into<String>,
        f: impl Fn(&StateView<'_>) -> bool + Send + Sync + 'static,
    ) -> Predicate {
        Predicate(PredImpl::Native {
            name: name.into(),
            f: Arc::new(f),
        })
    }

    /// Whether the predicate only reads global variables (and is therefore
    /// invisible to partial-order-reduced local steps).
    pub(crate) fn is_expr_only(&self) -> bool {
        matches!(self.0, PredImpl::Expr(_))
    }

    /// Returns the logical negation of this predicate.
    ///
    /// ```
    /// use pnp_kernel::{expr, Predicate};
    /// let p = Predicate::from_expr(expr::konst(1));
    /// let _not_p = p.negated();
    /// ```
    pub fn negated(&self) -> Predicate {
        match &self.0 {
            PredImpl::Expr(e) => Predicate(PredImpl::Expr(crate::expression::expr::not(e.clone()))),
            PredImpl::Native { name, f } => {
                let f = Arc::clone(f);
                Predicate(PredImpl::Native {
                    name: format!("not ({name})"),
                    f: Arc::new(move |view| !f(view)),
                })
            }
        }
    }

    pub(crate) fn eval(&self, view: &StateView<'_>) -> Result<bool, KernelError> {
        match &self.0 {
            PredImpl::Expr(e) => {
                let ctx = EvalCtx {
                    locals: &[],
                    globals: &view.state.globals,
                    pid: -1,
                };
                e.eval_bool(&ctx).map_err(|error| KernelError::Eval {
                    process: "(property)".to_string(),
                    transition: e.to_string(),
                    error,
                })
            }
            PredImpl::Native { f, .. } => Ok(f(view)),
        }
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            PredImpl::Expr(e) => write!(f, "Predicate({e})"),
            PredImpl::Native { name, .. } => write!(f, "Predicate(native:{name})"),
        }
    }
}

/// What [`Checker::check_safety`] should look for.
#[derive(Debug, Clone)]
pub struct SafetyChecks {
    /// Report states where no process can move and not every process is in
    /// a marked end location.
    pub deadlock: bool,
    /// Named predicates that must hold in every reachable state.
    pub invariants: Vec<(String, Predicate)>,
}

impl SafetyChecks {
    /// Checks for deadlock only.
    pub fn deadlock_only() -> SafetyChecks {
        SafetyChecks {
            deadlock: true,
            invariants: Vec::new(),
        }
    }

    /// Checks the given invariants (and deadlock).
    pub fn invariants(invariants: Vec<(String, Predicate)>) -> SafetyChecks {
        SafetyChecks {
            deadlock: true,
            invariants,
        }
    }
}

impl Default for SafetyChecks {
    fn default() -> SafetyChecks {
        SafetyChecks::deadlock_only()
    }
}

/// A cooperative cancellation handle for long-running searches.
///
/// Clone it, hand one copy to [`Checker::with_cancellation`], and call
/// [`CancelToken::cancel`] from anywhere (another thread, a signal
/// handler) to make the search stop at its next budget checkpoint with a
/// [`SafetyOutcome::LimitReached`] partial result.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which search budget stopped an exploration early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// [`SearchConfig::max_states`] unique states were interned.
    States,
    /// [`SearchConfig::max_time`] wall-clock time elapsed.
    Time,
    /// [`SearchConfig::max_depth`] was reached on every remaining
    /// frontier state.
    Depth,
    /// The [`SearchConfig::max_memory_bytes`] estimate was exceeded.
    Memory,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::States => "state budget",
            BudgetKind::Time => "time budget",
            BudgetKind::Depth => "depth budget",
            BudgetKind::Memory => "memory budget",
            BudgetKind::Cancelled => "cancellation",
        })
    }
}

/// Exploration limits and options.
///
/// All budgets degrade gracefully: tripping one ends the search with a
/// [`SafetyOutcome::LimitReached`] carrying partial [`SearchStats`]
/// instead of a panic or a silently-truncated `Holds`.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Stop after interning this many unique states (default one million).
    pub max_states: usize,
    /// Apply partial-order reduction (default on). The reduction is sound
    /// for deadlocks, assertions, and properties over *global* variables;
    /// it switches itself off automatically when a property uses a native
    /// predicate or when weak-fairness liveness search is requested.
    pub partial_order_reduction: bool,
    /// Stop once this much wall-clock time has elapsed (default none).
    pub max_time: Option<Duration>,
    /// Do not expand states deeper than this many steps from the initial
    /// state (default none). Everything up to the bound is still checked.
    pub max_depth: Option<usize>,
    /// Stop once the *estimated* memory footprint of the visited set and
    /// frontier exceeds this many bytes (default none). The estimate
    /// counts state payloads plus interning overhead; it is deterministic
    /// and usually within a small factor of the true footprint.
    pub max_memory_bytes: Option<usize>,
    /// Which visited-set backend to use (default [`VisitedKind::Exact`]).
    /// The lossy backends ([`VisitedKind::Compact`],
    /// [`VisitedKind::Bitstate`]) trade completeness for memory: a
    /// completed search then reports [`SafetyOutcome::HoldsApprox`] with
    /// the estimated omission probability instead of a definitive
    /// [`SafetyOutcome::Holds`].
    pub visited: VisitedKind,
    /// Number of worker threads for the safety search (default 1).
    ///
    /// `0` or `1` runs the exact sequential kernel. Larger values run a
    /// level-synchronized parallel BFS with per-worker work-stealing
    /// deques over a sharded visited set: the verdict is always identical
    /// to the sequential one, and for a completed exhaustive run so are
    /// `unique_states`, `steps`, and `max_depth` (see the crate docs for
    /// which report fields may vary). LTL checking
    /// ([`Checker::check_ltl`]) runs a swarmed CNDFS acceptance-cycle
    /// search at `threads > 1`: the verdict always matches the sequential
    /// nested DFS (every parallel-found lasso is replay-validated before
    /// it is reported; see [`crate::LtlReport::fallback`]), while the stats
    /// fields reflect whichever worker interleaving won.
    /// The out-of-core backend
    /// ([`VisitedKind::DiskExact`]) is also sequential: it routes to the
    /// sequential kernel regardless of this setting.
    pub threads: usize,
    /// Memory-pressure spill threshold in bytes (default none). When the
    /// estimated footprint crosses it, the search moves its in-RAM exact
    /// visited set and frontier to the out-of-core structures *mid-run*
    /// (the [`VisitedKind::DiskExact`] backend plus a spilled frontier)
    /// instead of tripping [`SafetyOutcome::LimitReached`]. With a lossy
    /// visited backend only the frontier can spill. Ignored by the
    /// parallel kernel.
    pub spill_at_bytes: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            max_states: 1_000_000,
            partial_order_reduction: true,
            max_time: None,
            max_depth: None,
            max_memory_bytes: None,
            visited: VisitedKind::Exact,
            threads: 1,
            spill_at_bytes: None,
        }
    }
}

impl SearchConfig {
    /// Shrinks the time budget to at most `window` — the deadline→budget
    /// wiring used by the service plane. A caller holding an end-to-end
    /// deadline re-derives the remaining window at every hop (dispatch,
    /// migration, hedged retry) and clamps with it, so a job never runs
    /// past its original envelope no matter how many times it moves. A
    /// zero window still arms a minimal budget (1 ms) so the search trips
    /// [`BudgetKind::Time`] immediately and reports honest partial stats
    /// instead of being skipped.
    pub fn clamp_time(&mut self, window: Duration) {
        let window = window.max(Duration::from_millis(1));
        self.max_time = Some(match self.max_time {
            Some(existing) => existing.min(window),
            None => window,
        });
    }
}

/// Statistics from one exploration.
///
/// Also the partial-progress record when a budget trips: together with
/// [`SafetyOutcome::LimitReached`] these fields make a budget trip
/// diagnosable from the report alone (how far the search got, how much it
/// still had queued, and roughly how much memory it was holding).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Unique states interned.
    pub unique_states: usize,
    /// Transitions (edges) explored.
    pub steps: usize,
    /// Length of the longest shortest-path explored (BFS depth).
    pub max_depth: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Largest BFS frontier (queue length) observed.
    pub peak_frontier: usize,
    /// Estimated peak memory footprint in bytes of the visited hash table
    /// plus frontier (state payloads and interning overhead).
    pub approx_memory_bytes: usize,
    /// Violations found under a lossy visited-set backend that exact
    /// replay could not confirm and were therefore *not* reported (zero in
    /// practice; the counter exists so silent drops are visible).
    pub replay_rejected: usize,
    /// States written to out-of-core spill storage (visited-set runs plus
    /// frontier chunks). Zero for a search that never spilled.
    pub spilled_states: usize,
    /// Bytes written to spill storage, including compaction rewrites.
    pub spill_bytes: usize,
    /// Merge-compaction passes over the on-disk visited runs.
    pub merge_passes: usize,
}

/// Renders a byte count with units chosen by magnitude (KiB, MiB, or
/// GiB), so multi-GiB runs don't print million-KiB figures.
fn fmt_bytes(bytes: usize) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= 1024.0 * MIB {
        format!("{:.1} GiB", b / (1024.0 * MIB))
    } else if b >= MIB {
        format!("{:.1} MiB", b / MIB)
    } else {
        format!("{} KiB", bytes / 1024)
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} steps, depth {}, peak frontier {}, ~{}, {:?}",
            self.unique_states,
            self.steps,
            self.max_depth,
            self.peak_frontier,
            fmt_bytes(self.approx_memory_bytes),
            self.elapsed
        )?;
        if self.spilled_states > 0 || self.spill_bytes > 0 {
            write!(
                f,
                " (spilled {} states, {}, {} merges)",
                self.spilled_states,
                fmt_bytes(self.spill_bytes),
                self.merge_passes
            )?;
        }
        Ok(())
    }
}

/// The result of a safety check.
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyOutcome {
    /// No violation found in the explored (complete, unless `LimitReached`)
    /// state space.
    Holds,
    /// The search completed under a *lossy* visited-set backend: no
    /// violation was found, but a hash collision could have hidden part of
    /// the state space, so this is a strong probabilistic verdict rather
    /// than a proof. (The converse direction is exact: violations reported
    /// under lossy backends are always real — see
    /// [`SearchStats::replay_rejected`].)
    HoldsApprox {
        /// The lossy backend that was used.
        hash_mode: VisitedKind,
        /// Unique states the search believes it visited.
        states_visited: usize,
        /// Estimated probability that any single new distinct state would
        /// have been wrongly skipped at the end of the search (for
        /// bitstate, the Bloom-filter estimate `(1 − e^(−kn/m))^k`; for
        /// compact hashing, `n / 2^64`).
        omission_probability: f64,
    },
    /// A named invariant does not hold in some reachable state.
    InvariantViolated {
        /// The invariant's name.
        name: String,
        /// Shortest counterexample.
        trace: Trace,
    },
    /// An in-model assertion failed.
    AssertionFailed {
        /// The assertion's message.
        message: String,
        /// Shortest counterexample.
        trace: Trace,
    },
    /// A reachable state has no enabled steps and is not a valid
    /// termination.
    Deadlock {
        /// Shortest path to the deadlock.
        trace: Trace,
    },
    /// A search budget tripped before the state space was exhausted.
    ///
    /// This is a *partial* result, not an error: no violation was found
    /// in the portion covered (`states_covered` interned states; see the
    /// report's [`SearchStats`] for depth, frontier, and memory
    /// figures). The property may still fail in the unexplored part.
    LimitReached {
        /// Which budget stopped the search.
        budget: BudgetKind,
        /// Unique states fully or partially explored before the stop.
        states_covered: usize,
        /// Queue length (states discovered but not yet expanded) at the
        /// moment the budget tripped.
        frontier: usize,
    },
    /// A native invariant predicate panicked while evaluating a reachable
    /// state. The panic is caught and isolated to this outcome instead of
    /// unwinding through the search.
    PredicateError {
        /// The invariant whose predicate panicked.
        name: String,
        /// The panic payload, if it was a string.
        message: String,
        /// Shortest path to the state that made the predicate panic.
        trace: Trace,
    },
}

impl SafetyOutcome {
    /// `true` when the full state space was searched and no violation was
    /// found. An approximate verdict ([`SafetyOutcome::HoldsApprox`]) is
    /// *not* `Holds`: use [`SafetyOutcome::holds_modulo_hashing`] to
    /// accept both.
    pub fn is_holds(&self) -> bool {
        matches!(self, SafetyOutcome::Holds)
    }

    /// `true` when no violation was found in a completed search, whether
    /// the visited set was exact or lossy.
    pub fn holds_modulo_hashing(&self) -> bool {
        matches!(
            self,
            SafetyOutcome::Holds | SafetyOutcome::HoldsApprox { .. }
        )
    }

    /// The counterexample trace, if there is a violation.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            SafetyOutcome::Holds
            | SafetyOutcome::HoldsApprox { .. }
            | SafetyOutcome::LimitReached { .. } => None,
            SafetyOutcome::InvariantViolated { trace, .. }
            | SafetyOutcome::AssertionFailed { trace, .. }
            | SafetyOutcome::PredicateError { trace, .. }
            | SafetyOutcome::Deadlock { trace } => Some(trace),
        }
    }

    /// `true` when the search stopped on a budget with a partial result.
    pub fn is_limit_reached(&self) -> bool {
        matches!(self, SafetyOutcome::LimitReached { .. })
    }
}

/// The report of a safety check: the outcome plus exploration statistics.
#[derive(Debug, Clone)]
pub struct SafetyReport {
    /// What was found.
    pub outcome: SafetyOutcome,
    /// Exploration statistics.
    pub stats: SearchStats,
    /// `true` when a search budget ([`SearchConfig::max_states`],
    /// `max_time`, `max_depth`, `max_memory_bytes`, or cancellation)
    /// stopped exploration before the state space was exhausted. The
    /// outcome is then [`SafetyOutcome::LimitReached`] unless a violation
    /// was found first.
    pub truncated: bool,
}

impl fmt::Display for SafetyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = match &self.outcome {
            SafetyOutcome::Holds => "holds".to_string(),
            SafetyOutcome::HoldsApprox {
                hash_mode,
                states_visited,
                omission_probability,
            } => format!(
                "holds modulo hashing ({hash_mode}; {states_visited} states; \
                 omission probability ≈ {omission_probability:.2e})"
            ),
            SafetyOutcome::InvariantViolated { name, trace } => {
                format!("invariant '{name}' violated ({}-step trace)", trace.len())
            }
            SafetyOutcome::AssertionFailed { message, trace } => {
                format!("assertion '{message}' failed ({}-step trace)", trace.len())
            }
            SafetyOutcome::Deadlock { trace } => {
                format!("deadlock ({}-step trace)", trace.len())
            }
            SafetyOutcome::LimitReached {
                budget,
                states_covered,
                frontier,
            } => format!(
                "inconclusive: {budget} tripped after {states_covered} states \
                 ({frontier} queued)"
            ),
            SafetyOutcome::PredicateError { name, message, .. } => {
                format!("predicate error in '{name}': {message}")
            }
        };
        write!(f, "{verdict} [{}]", self.stats)?;
        if self.truncated {
            write!(f, " (truncated)")?;
        }
        Ok(())
    }
}

/// What evaluating the invariants at one state produced.
#[derive(Clone)]
pub(crate) enum InvariantHit {
    /// Some invariant is false there.
    Violated(String),
    /// Some native predicate panicked there.
    Panicked {
        /// The invariant's name.
        name: String,
        /// The stringified panic payload.
        message: String,
    },
}

/// Evaluates every invariant at one state; `Some` when one is violated or
/// its native predicate panicked (the panic is caught and isolated to a
/// [`SafetyOutcome::PredicateError`] instead of unwinding the search).
pub(crate) fn eval_invariants(
    checks: &SafetyChecks,
    view: &StateView<'_>,
) -> Result<Option<InvariantHit>, KernelError> {
    for (name, predicate) in &checks.invariants {
        match catch_unwind(AssertUnwindSafe(|| predicate.eval(view))) {
            Ok(Ok(true)) => {}
            Ok(Ok(false)) => return Ok(Some(InvariantHit::Violated(name.clone()))),
            Ok(Err(error)) => return Err(error),
            Err(payload) => {
                return Ok(Some(InvariantHit::Panicked {
                    name: name.clone(),
                    message: panic_message(payload.as_ref()),
                }))
            }
        }
    }
    Ok(None)
}

/// Converts an [`InvariantHit`] plus its counterexample into an outcome.
pub(crate) fn hit_outcome(hit: InvariantHit, trace: Trace) -> SafetyOutcome {
    match hit {
        InvariantHit::Violated(name) => SafetyOutcome::InvariantViolated { name, trace },
        InvariantHit::Panicked { name, message } => SafetyOutcome::PredicateError {
            name,
            message,
            trace,
        },
    }
}

/// Rebuilds the counterexample trace for state `id` by replaying its
/// discovery chain from the initial state. Under a lossy backend
/// (`verify`), each step is additionally checked for enabledness and the
/// replay must land exactly on `expect` — `Ok(None)` means the chain does
/// not replay (a hash-collision artifact) and the finding must be
/// dropped, so lossy backends never report a false alarm.
pub(crate) fn rebuild_trace(
    program: &Program,
    parents: &[Option<(usize, Step)>],
    id: usize,
    expect: &State,
    verify: bool,
) -> Result<Option<Trace>, KernelError> {
    let mut chain = Vec::new();
    let mut cur = id;
    while let Some((parent, step)) = parents[cur] {
        chain.push(step);
        cur = parent;
    }
    chain.reverse();
    let mut state = State::initial(program);
    let mut events = Vec::new();
    for step in chain {
        if verify && !enabled_steps(program, &state)?.contains(&step) {
            return Ok(None);
        }
        let applied = apply_step(program, &state, step)?;
        events.extend(applied.events);
        state = applied.state;
    }
    if verify && state != *expect {
        return Ok(None);
    }
    Ok(Some(Trace::new(events)))
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Estimated bytes one interned state costs: the `State` payload (control
/// locations, process locals, channel buffers, globals) plus bookkeeping
/// overhead (hash-map entry, `Rc` headers, parent link, depth). A flat
/// per-state figure keeps the memory budget deterministic.
pub(crate) fn approx_state_bytes(program: &Program) -> usize {
    use std::mem::size_of;
    let payload: usize = size_of::<State>()
        + program
            .processes
            .iter()
            .map(|p| size_of::<crate::state::ProcState>() + p.locals.len() * size_of::<i32>())
            .sum::<usize>()
        + program
            .channels
            .iter()
            .map(|c| {
                size_of::<VecDeque<crate::state::Msg>>()
                    + c.capacity.max(1)
                        * (size_of::<crate::state::Msg>() + c.arity * size_of::<i32>())
            })
            .sum::<usize>()
        + program.globals.len() * size_of::<i32>();
    payload + 96
}

/// Captures the visited-set backend's content for a snapshot. Exact sets
/// serialize nothing — their content is reconstructed from the parent links
/// on resume, which is smaller and self-validating.
pub(crate) fn visited_payload(visited: &AnyVisited) -> VisitedPayload {
    match visited {
        AnyVisited::Exact(_) | AnyVisited::Disk(_) => VisitedPayload::Exact,
        AnyVisited::Compact(set) => VisitedPayload::Compact(set.snapshot_hashes()),
        AnyVisited::Bitstate(set) => {
            let (arena, inserted) = set.snapshot_arena();
            VisitedPayload::Bitstate {
                arena: arena.to_vec(),
                inserted: inserted as u64,
            }
        }
    }
}

/// Encodes the current search state into a [`Snapshot`] and hands it to the
/// sink. Sink failures surface as [`KernelError::Snapshot`]. The visited
/// payload and kind are passed separately so the sequential and parallel
/// explorers (whose backends differ in type) share this path — and their
/// snapshots stay mutually resumable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn flush_checkpoint(
    sink: &Rc<RefCell<dyn SnapshotSink>>,
    fingerprint: u64,
    tag: &str,
    kind: VisitedKind,
    visited: VisitedPayload,
    parents: &[Option<(usize, Step)>],
    depths: &[usize],
    frontier: Vec<(usize, State)>,
    stats: &SearchStats,
    elapsed: Duration,
) -> Result<(), KernelError> {
    let snapshot = Snapshot {
        fingerprint,
        tag: tag.to_string(),
        kind,
        stats: SnapStats {
            steps: stats.steps as u64,
            max_depth: stats.max_depth as u64,
            peak_frontier: stats.peak_frontier as u64,
            approx_memory_bytes: stats.approx_memory_bytes as u64,
            elapsed_nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            replay_rejected: stats.replay_rejected as u64,
            spilled_states: stats.spilled_states as u64,
            spill_bytes: stats.spill_bytes as u64,
            merge_passes: stats.merge_passes as u64,
        },
        parents: parents.to_vec(),
        depths: depths.to_vec(),
        frontier,
        visited,
    };
    sink.borrow_mut()
        .store(&snapshot.encode())
        .map_err(|error| KernelError::Snapshot {
            message: error.to_string(),
        })
}

/// Replays every state's discovery chain recorded in `parents` (parent ids
/// are strictly increasing, so a single forward pass suffices).
fn replay_states(
    program: &Program,
    parents: &[Option<(usize, Step)>],
) -> Result<Vec<Rc<State>>, KernelError> {
    let mut states: Vec<Rc<State>> = Vec::with_capacity(parents.len());
    for (id, parent) in parents.iter().enumerate() {
        let state = match parent {
            None if id == 0 => Rc::new(State::initial(program)),
            None => {
                return Err(KernelError::Snapshot {
                    message: format!("state {id} has no parent but is not the root"),
                })
            }
            Some((parent_id, step)) => {
                let applied = apply_step(program, &states[*parent_id], *step)?;
                Rc::new(applied.state)
            }
        };
        states.push(state);
    }
    Ok(states)
}

/// Rebuilds the visited-set backend recorded in a snapshot. Exact and
/// disk-backed sets are reconstructed by replaying every state's discovery
/// chain; lossy backends restore their serialized hash content directly.
/// `storage` is where a [`VisitedKind::DiskExact`] rebuild puts its runs.
fn restore_visited(
    program: &Program,
    snapshot: &Snapshot,
    per_state_bytes: usize,
    storage: &(VfsHandle, PathBuf),
    spill_at: Option<usize>,
) -> Result<AnyVisited, KernelError> {
    match &snapshot.visited {
        VisitedPayload::Exact if snapshot.kind == VisitedKind::DiskExact => {
            let mut disk =
                new_disk_visited(storage, spill_at).map_err(|error| KernelError::Snapshot {
                    message: format!("cannot prepare spill storage: {error}"),
                })?;
            for state in replay_states(program, &snapshot.parents)? {
                disk.insert(&state);
                if let Some(error) = disk.take_error() {
                    return Err(KernelError::Snapshot {
                        message: format!("out-of-core visited rebuild failed: {error}"),
                    });
                }
            }
            // The snapshot already carries the uninterrupted spill totals;
            // the rebuild's own writes must not be double-counted.
            disk.reset_spill_counters();
            Ok(AnyVisited::Disk(disk))
        }
        VisitedPayload::Exact => {
            let mut set = ExactVisited::new(per_state_bytes);
            for state in replay_states(program, &snapshot.parents)? {
                set.insert(&state);
            }
            Ok(AnyVisited::Exact(set))
        }
        VisitedPayload::Compact(hashes) => Ok(AnyVisited::Compact(CompactVisited::from_hashes(
            hashes.iter().copied(),
        ))),
        VisitedPayload::Bitstate { arena, inserted } => {
            let VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } = snapshot.kind
            else {
                return Err(KernelError::Snapshot {
                    message: "bitstate payload under a non-bitstate visited kind".to_string(),
                });
            };
            Ok(AnyVisited::Bitstate(BitstateVisited::from_arena(
                arena_bytes,
                hashes,
                arena.clone(),
                usize::try_from(*inserted).unwrap_or(usize::MAX),
            )))
        }
    }
}

/// The BFS queue: in RAM until the spill threshold moves it out of core.
enum Frontier {
    Ram(VecDeque<(usize, Rc<State>)>),
    Disk(SpillFrontier),
}

impl Frontier {
    fn len(&self) -> usize {
        match self {
            Frontier::Ram(queue) => queue.len(),
            Frontier::Disk(spill) => spill.len(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Frontier::Ram(queue) => queue.is_empty(),
            Frontier::Disk(spill) => spill.is_empty(),
        }
    }

    /// RAM resident bytes (a spilled frontier holds only its head/tail
    /// windows and chunk bookkeeping in memory).
    fn ram_bytes(&self, per_state_bytes: usize) -> usize {
        match self {
            Frontier::Ram(queue) => queue.len() * per_state_bytes,
            Frontier::Disk(spill) => spill.ram_bytes(),
        }
    }

    fn pop_front(&mut self) -> io::Result<Option<(usize, Rc<State>)>> {
        match self {
            Frontier::Ram(queue) => Ok(queue.pop_front()),
            Frontier::Disk(spill) => spill.pop_front(),
        }
    }

    /// Requeues at the front; infallible in both representations so budget
    /// rollback can never fail.
    fn push_front(&mut self, id: usize, state: Rc<State>) {
        match self {
            Frontier::Ram(queue) => queue.push_front((id, state)),
            Frontier::Disk(spill) => spill.push_front(id, state),
        }
    }

    fn push_back(&mut self, id: usize, state: Rc<State>) -> io::Result<()> {
        match self {
            Frontier::Ram(queue) => {
                queue.push_back((id, state));
                Ok(())
            }
            Frontier::Disk(spill) => spill.push_back(id, state),
        }
    }

    /// The full queue content in FIFO order, for checkpoint flushes.
    fn snapshot_states(&self) -> io::Result<Vec<(usize, State)>> {
        match self {
            Frontier::Ram(queue) => Ok(queue
                .iter()
                .map(|(id, state)| (*id, (**state).clone()))
                .collect()),
            Frontier::Disk(spill) => spill.snapshot_states(),
        }
    }
}

/// Deterministic RAM-footprint estimate of the live search structures.
fn memory_estimate(
    visited: &AnyVisited,
    frontier: &Frontier,
    n_states: usize,
    per_state_bytes: usize,
) -> usize {
    match visited {
        AnyVisited::Exact(_) => {
            // Frontier states share their payload with the visited set;
            // only the queue entries themselves count.
            visited.approx_bytes() + frontier.len() * std::mem::size_of::<usize>()
        }
        _ => {
            // Lossy and disk backends keep no RAM payloads: the per-state
            // cost is the parent/depth bookkeeping plus the frontier's
            // RAM-resident payloads.
            let parent_entry =
                std::mem::size_of::<Option<(usize, Step)>>() + std::mem::size_of::<usize>();
            visited.approx_bytes() + n_states * parent_entry + frontier.ram_bytes(per_state_bytes)
        }
    }
}

// Out-of-core tuning derived from the spill threshold: a tiny threshold
// (tests, chaos harnesses) gets proportionally tiny write buffers, Bloom
// front, and frontier chunks, so spilling actually exercises the disk
// structures instead of hiding everything in RAM buffers.
//
// The floors are deliberately *not* proportional all the way down: below a
// sane minimum chunk size, every few states cost a run-file write plus a
// merge-compaction rewrite, turning a linear search into quadratic I/O (a
// 0-byte budget once wrote ~70× its payload). Clamping to a few KiB per
// structure bounds the churn at a worst-case ~128 KiB of buffered RAM —
// an honest fixed cost that any out-of-core run must afford.

/// Minimum per-partition write-buffer size (bytes): small enough that
/// test-sized workloads still flush real runs, large enough to amortize
/// run writes and keep compaction rare.
const MIN_DISK_BUF_CAP: usize = 4 << 10;
/// Minimum Bloom-front arena (bytes). A saturated Bloom front forwards
/// every probe to run files, so starving it trades RAM for a read storm.
const MIN_DISK_BLOOM_BYTES: usize = 32 << 10;
/// Minimum frontier chunk size (bytes) before the tail spills.
const MIN_FRONTIER_CHUNK_CAP: usize = 4 << 10;

fn disk_buf_cap(spill_at: Option<usize>) -> usize {
    spill_at.map_or(DiskExactVisited::DEFAULT_BUF_CAP, |at| {
        (at / 32).clamp(MIN_DISK_BUF_CAP, DiskExactVisited::DEFAULT_BUF_CAP)
    })
}

fn disk_bloom_bytes(spill_at: Option<usize>) -> usize {
    spill_at.map_or(DiskExactVisited::DEFAULT_BLOOM_BYTES, |at| {
        (at / 2).clamp(MIN_DISK_BLOOM_BYTES, DiskExactVisited::DEFAULT_BLOOM_BYTES)
    })
}

fn frontier_chunk_cap(spill_at: Option<usize>) -> usize {
    spill_at.map_or(1 << 20, |at| {
        (at / 8).clamp(MIN_FRONTIER_CHUNK_CAP, 1 << 20)
    })
}

/// A fresh scratch directory under the system temp dir, for a search that
/// needs spill storage but was given none via [`Checker::spill_to`]. A
/// process-wide counter keeps concurrent searches apart.
fn default_spill_storage() -> (VfsHandle, PathBuf) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pnp-spill-{}-{n}", std::process::id()));
    (crate::vfs::real_fs(), dir)
}

/// Constructs the disk-backed visited set under `storage`.
fn new_disk_visited(
    storage: &(VfsHandle, PathBuf),
    spill_at: Option<usize>,
) -> io::Result<DiskExactVisited> {
    DiskExactVisited::new(
        VfsHandle::clone(&storage.0),
        storage.1.join("visited"),
        disk_buf_cap(spill_at),
        disk_bloom_bytes(spill_at),
    )
}

/// Decides how an out-of-core I/O failure degrades: a full disk trips the
/// memory budget (an honest `LimitReached` partial result — the structures
/// stay consistent, a failed flush keeps its states buffered); anything
/// else aborts the attempt as a transient [`KernelError::Snapshot`].
fn spill_trip(error: &io::Error, what: &str) -> Result<BudgetKind, KernelError> {
    if error.kind() == io::ErrorKind::StorageFull {
        Ok(BudgetKind::Memory)
    } else {
        Err(KernelError::Snapshot {
            message: format!("{what}: {error}"),
        })
    }
}

/// Moves the in-RAM exact visited set and/or RAM frontier out of core.
/// Non-destructive on failure: the RAM structures are only replaced after
/// their disk counterparts are fully built, so a failed transition leaves
/// the search state intact for an honest budget trip.
fn spill_to_disk(
    storage: &(VfsHandle, PathBuf),
    spill_at: Option<usize>,
    per_state_bytes: usize,
    visited: &mut AnyVisited,
    frontier: &mut Frontier,
) -> io::Result<()> {
    if matches!(visited, AnyVisited::Exact(_)) {
        let mut disk = new_disk_visited(storage, spill_at)?;
        if let AnyVisited::Exact(set) = &*visited {
            // Hash-set iteration order is nondeterministic; a sorted
            // insert order keeps the spill's disk-op sequence reproducible
            // under the seeded SimFs.
            let mut states: Vec<Rc<State>> = set.states().cloned().collect();
            states.sort_unstable_by_key(|state| disk_hash(state));
            for state in &states {
                disk.insert(state);
                if let Some(error) = disk.take_error() {
                    return Err(error);
                }
            }
        }
        *visited = AnyVisited::Disk(disk);
    }
    if matches!(frontier, Frontier::Ram(_)) {
        let mut spill = SpillFrontier::new(
            VfsHandle::clone(&storage.0),
            storage.1.join("frontier"),
            frontier_chunk_cap(spill_at),
            per_state_bytes,
        )?;
        if let Frontier::Ram(queue) = &*frontier {
            for (id, state) in queue {
                spill.push_back(*id, Rc::clone(state))?;
            }
        }
        *frontier = Frontier::Disk(spill);
    }
    Ok(())
}

/// Folds the live out-of-core counters into the stats, on top of the
/// baseline carried over from a resume snapshot — so a resumed spilled run
/// reports exactly the uninterrupted totals.
fn sync_spill_stats(
    stats: &mut SearchStats,
    base: (usize, usize, usize),
    visited: &AnyVisited,
    frontier: &Frontier,
) {
    let (mut spilled_states, mut spill_bytes, mut merge_passes) = base;
    if let AnyVisited::Disk(disk) = visited {
        spilled_states += disk.spilled_states();
        spill_bytes += disk.spill_bytes();
        merge_passes += disk.merge_passes();
    }
    if let Frontier::Disk(spill) = frontier {
        spilled_states += spill.spilled_states();
        spill_bytes += spill.spill_bytes();
    }
    stats.spilled_states = spilled_states;
    stats.spill_bytes = spill_bytes;
    stats.merge_passes = merge_passes;
}

/// The explicit-state model checker.
///
/// Create one per [`Program`]; the checking methods are read-only and can be
/// called repeatedly (e.g. once per property).
#[derive(Clone)]
pub struct Checker<'p> {
    pub(crate) program: &'p Program,
    pub(crate) config: SearchConfig,
    pub(crate) cancel: Option<CancelToken>,
    /// Flush a checkpoint every this many newly interned states (0 = only
    /// on a budget trip or cancellation).
    pub(crate) checkpoint_every: usize,
    /// Where checkpoints go, when checkpointing is enabled.
    pub(crate) sink: Option<Rc<RefCell<dyn SnapshotSink>>>,
    /// Caller label stored in snapshots (e.g. the property name).
    pub(crate) tag: String,
    /// Search state to resume from, set by [`Checker::resume_from`].
    pub(crate) resume: Option<Snapshot>,
    /// Where out-of-core structures live, set by [`Checker::spill_to`].
    pub(crate) storage: Option<(VfsHandle, PathBuf)>,
}

impl fmt::Debug for Checker<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("config", &self.config)
            .field("cancel", &self.cancel)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("has_sink", &self.sink.is_some())
            .field("tag", &self.tag)
            .field("resuming", &self.resume.is_some())
            .field("has_storage", &self.storage.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> Checker<'p> {
    /// Creates a checker with the default [`SearchConfig`].
    pub fn new(program: &'p Program) -> Checker<'p> {
        Checker::with_config(program, SearchConfig::default())
    }

    /// Creates a checker with explicit limits.
    pub fn with_config(program: &'p Program, config: SearchConfig) -> Checker<'p> {
        Checker {
            program,
            config,
            cancel: None,
            checkpoint_every: 0,
            sink: None,
            tag: String::new(),
            resume: None,
            storage: None,
        }
    }

    /// Creates a checker that resumes an interrupted safety search from a
    /// [`Snapshot`].
    ///
    /// The snapshot's program fingerprint must match `program`; the
    /// visited-set backend recorded in the snapshot is used regardless of
    /// any later [`Checker::with_search_config`] (a search cannot change
    /// backend midway). Budgets start at the default config — callers
    /// typically raise them via [`Checker::with_search_config`], otherwise
    /// the same budget that tripped the original run trips again.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::FingerprintMismatch`] when the snapshot
    /// was taken from a different program.
    pub fn resume_from(
        program: &'p Program,
        snapshot: Snapshot,
    ) -> Result<Checker<'p>, SnapshotError> {
        let expected = program_fingerprint(program);
        if snapshot.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                expected,
                found: snapshot.fingerprint,
            });
        }
        let mut checker = Checker::with_config(
            program,
            SearchConfig {
                visited: snapshot.kind,
                ..SearchConfig::default()
            },
        );
        checker.tag = snapshot.tag.clone();
        checker.resume = Some(snapshot);
        Ok(checker)
    }

    /// Replaces the search configuration. On a resuming checker the
    /// visited-set backend stays pinned to the snapshot's backend.
    pub fn with_search_config(mut self, config: SearchConfig) -> Checker<'p> {
        self.config = config;
        if let Some(snapshot) = &self.resume {
            self.config.visited = snapshot.kind;
        }
        self
    }

    /// Directs out-of-core storage — the [`VisitedKind::DiskExact`]
    /// backend's runs and any spilled frontier chunks — to `dir` on `vfs`.
    ///
    /// Without this, a search that needs spill storage uses a fresh
    /// scratch directory under the system temp dir on the real
    /// filesystem. The directory is scratch space: each search wipes any
    /// stale run files it finds there, and nothing in it outlives the
    /// search usefully.
    pub fn spill_to(mut self, vfs: VfsHandle, dir: impl Into<PathBuf>) -> Checker<'p> {
        self.storage = Some((vfs, dir.into()));
        self
    }

    /// Attaches a cooperative cancellation token; cancelling it makes any
    /// running search stop at its next checkpoint with
    /// [`SafetyOutcome::LimitReached`] (and flush a final snapshot when a
    /// checkpoint sink is attached).
    pub fn with_cancellation(mut self, token: CancelToken) -> Checker<'p> {
        self.cancel = Some(token);
        self
    }

    /// Attaches a checkpoint sink. While a safety search runs, snapshots
    /// are flushed to the sink periodically (see
    /// [`Checker::checkpoint_every`]) and — always — when a budget trips
    /// or the search is cancelled, so an interrupted run loses no work.
    pub fn checkpoint_to(mut self, sink: impl SnapshotSink + 'static) -> Checker<'p> {
        self.sink = Some(Rc::new(RefCell::new(sink)));
        self
    }

    /// Flush a checkpoint every `n_states` newly interned states (in
    /// addition to the final flush on a trip or cancellation). `0`
    /// (the default) disables periodic flushes.
    pub fn checkpoint_every(mut self, n_states: usize) -> Checker<'p> {
        self.checkpoint_every = n_states;
        self
    }

    /// Sets the label stored in snapshots, so a multi-property driver can
    /// tell which property an interrupted checkpoint belongs to.
    pub fn checkpoint_tag(mut self, tag: impl Into<String>) -> Checker<'p> {
        self.tag = tag.into();
        self
    }

    /// The program under check.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Exhaustively explores the reachable state space (breadth-first) and
    /// checks the requested safety properties. Counterexamples are
    /// shortest-path.
    ///
    /// With a lossy visited-set backend ([`SearchConfig::visited`]), a
    /// completed search reports [`SafetyOutcome::HoldsApprox`]; any
    /// violation is re-validated by exact replay from the initial state
    /// before being reported, so lossy backends can hide violations but
    /// never fabricate them.
    ///
    /// With a checkpoint sink attached ([`Checker::checkpoint_to`]),
    /// snapshots are flushed periodically and on every budget trip or
    /// cancellation; [`Checker::resume_from`] continues such a search with
    /// identical results to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model itself is broken (an
    /// expression fails to evaluate), when storing a checkpoint fails, or
    /// when a resume snapshot's contents do not replay.
    pub fn check_safety(&self, checks: &SafetyChecks) -> Result<SafetyReport, KernelError> {
        if self.config.threads > 1 && self.config.visited != VisitedKind::DiskExact {
            return crate::parallel::check_safety_parallel(self, checks);
        }
        let start = Instant::now();
        let program = self.program;
        let spill_at = self.config.spill_at_bytes;
        // Resolved lazily in spirit but once in practice: the directory is
        // only ever created when something actually spills.
        let storage = match &self.storage {
            Some((vfs, dir)) => (VfsHandle::clone(vfs), dir.clone()),
            None => default_spill_storage(),
        };

        // Partial-order reduction is only sound when every property reads
        // globals alone (local steps are then invisible).
        let reduction = (self.config.partial_order_reduction
            && checks.invariants.iter().all(|(_, p)| p.is_expr_only()))
        .then(|| crate::reduction::LocalLocations::analyze(program));

        let per_state_bytes = approx_state_bytes(program);
        let lossy = self.config.visited.is_lossy();
        // Only needed when snapshots are written (resume verified it
        // already); computing it walks the whole program, so gate it.
        let fingerprint = if self.sink.is_some() {
            program_fingerprint(program)
        } else {
            0
        };

        // Search state: parent links and depths per interned state id, the
        // frontier (discovered, unexpanded states with payloads), and the
        // visited-set backend. Fresh, or restored from a snapshot.
        let mut stats = SearchStats::default();
        let mut base_elapsed = Duration::ZERO;
        let mut visited: AnyVisited;
        let mut parents: Vec<Option<(usize, Step)>>;
        let mut depths: Vec<usize>;
        let mut frontier: Frontier;

        if let Some(snapshot) = &self.resume {
            visited = restore_visited(program, snapshot, per_state_bytes, &storage, spill_at)?;
            parents = snapshot.parents.clone();
            depths = snapshot.depths.clone();
            frontier = Frontier::Ram(
                snapshot
                    .frontier
                    .iter()
                    .map(|(id, state)| (*id, Rc::new(state.clone())))
                    .collect(),
            );
            stats.steps = snapshot.stats.steps as usize;
            stats.max_depth = snapshot.stats.max_depth as usize;
            stats.peak_frontier = snapshot.stats.peak_frontier as usize;
            stats.approx_memory_bytes = snapshot.stats.approx_memory_bytes as usize;
            stats.replay_rejected = snapshot.stats.replay_rejected as usize;
            stats.spilled_states = snapshot.stats.spilled_states as usize;
            stats.spill_bytes = snapshot.stats.spill_bytes as usize;
            stats.merge_passes = snapshot.stats.merge_passes as usize;
            base_elapsed = Duration::from_nanos(snapshot.stats.elapsed_nanos);
        } else {
            let initial = Rc::new(State::initial(program));
            if let Some(hit) = eval_invariants(checks, &StateView::new(program, &initial))? {
                return Ok(SafetyReport {
                    outcome: hit_outcome(hit, Trace::default()),
                    stats: SearchStats {
                        unique_states: 1,
                        elapsed: start.elapsed(),
                        ..stats
                    },
                    truncated: false,
                });
            }
            visited = match self.config.visited {
                VisitedKind::DiskExact => {
                    AnyVisited::Disk(new_disk_visited(&storage, spill_at).map_err(|error| {
                        KernelError::Snapshot {
                            message: format!("cannot prepare spill storage: {error}"),
                        }
                    })?)
                }
                kind => AnyVisited::new(kind, per_state_bytes),
            };
            visited.insert(&initial);
            parents = vec![None];
            depths = vec![0];
            frontier = Frontier::Ram(VecDeque::from([(0, initial)]));
            stats.peak_frontier = 1;
        }

        // Spill totals carried over from a resume snapshot; the live
        // structure counters start at zero and add on top, so a resumed
        // run reports exactly the uninterrupted totals.
        let spill_base = (stats.spilled_states, stats.spill_bytes, stats.merge_passes);

        let mut tripped: Option<BudgetKind> = None;
        let mut depth_trimmed = false;
        let mut states_at_last_flush = parents.len();

        'search: loop {
            if frontier.is_empty() {
                break 'search;
            }
            // A disk-backed visited set parks write failures instead of
            // returning them through the infallible trait; drain them here
            // so a full disk degrades to an honest budget trip before the
            // next expansion. (Probe failures never get this far — they
            // abort their expansion immediately, see below.)
            if let AnyVisited::Disk(disk) = &mut visited {
                if let Some(error) = disk.take_error() {
                    tripped = Some(spill_trip(&error, "out-of-core visited write failed")?);
                    break 'search;
                }
            }
            // Budget checkpoints run once per expanded state, *before* the
            // state is popped, so a tripped search's frontier (and thus its
            // snapshot) is complete and resumable without loss.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                tripped = Some(BudgetKind::Cancelled);
                break 'search;
            }
            if let Some(limit) = self.config.max_time {
                if base_elapsed + start.elapsed() >= limit {
                    tripped = Some(BudgetKind::Time);
                    break 'search;
                }
            }
            let mut mem = memory_estimate(&visited, &frontier, parents.len(), per_state_bytes);
            stats.approx_memory_bytes = stats.approx_memory_bytes.max(mem);
            // Graceful degradation: crossing the spill threshold moves the
            // RAM structures out of core instead of tripping a budget. The
            // estimate is recomputed so the memory budget below sees the
            // post-spill footprint.
            if let Some(threshold) = spill_at {
                let spillable =
                    matches!(visited, AnyVisited::Exact(_)) || matches!(frontier, Frontier::Ram(_));
                if spillable && mem >= threshold {
                    match spill_to_disk(
                        &storage,
                        spill_at,
                        per_state_bytes,
                        &mut visited,
                        &mut frontier,
                    ) {
                        Ok(()) => {
                            mem = memory_estimate(
                                &visited,
                                &frontier,
                                parents.len(),
                                per_state_bytes,
                            );
                        }
                        Err(error) => {
                            tripped = Some(spill_trip(&error, "mid-run spill failed")?);
                            break 'search;
                        }
                    }
                }
            }
            if let Some(limit) = self.config.max_memory_bytes {
                if mem >= limit {
                    tripped = Some(BudgetKind::Memory);
                    break 'search;
                }
            }
            if self.checkpoint_every > 0
                && parents.len() - states_at_last_flush >= self.checkpoint_every
            {
                if let Some(sink) = &self.sink {
                    stats.unique_states = parents.len();
                    sync_spill_stats(&mut stats, spill_base, &visited, &frontier);
                    let frontier_states =
                        frontier
                            .snapshot_states()
                            .map_err(|error| KernelError::Snapshot {
                                message: format!("out-of-core frontier snapshot failed: {error}"),
                            })?;
                    flush_checkpoint(
                        sink,
                        fingerprint,
                        &self.tag,
                        visited.kind(),
                        visited_payload(&visited),
                        &parents,
                        &depths,
                        frontier_states,
                        &stats,
                        base_elapsed + start.elapsed(),
                    )?;
                    states_at_last_flush = parents.len();
                }
            }

            let (id, state) = match frontier.pop_front() {
                Ok(Some(entry)) => entry,
                Ok(None) => break 'search,
                Err(error) => {
                    tripped = Some(spill_trip(&error, "out-of-core frontier read failed")?);
                    break 'search;
                }
            };
            if let Some(limit) = self.config.max_depth {
                if depths[id] >= limit {
                    // The state itself was already checked when it was
                    // discovered; only its expansion is skipped.
                    depth_trimmed = true;
                    continue;
                }
            }

            let mut steps = enabled_steps(program, &state)?;
            stats.max_depth = stats.max_depth.max(depths[id]);

            if steps.is_empty() {
                if checks.deadlock && !is_valid_end_state(program, &state) {
                    match rebuild_trace(program, &parents, id, &state, lossy)? {
                        Some(trace) => {
                            stats.unique_states = parents.len();
                            stats.elapsed = base_elapsed + start.elapsed();
                            sync_spill_stats(&mut stats, spill_base, &visited, &frontier);
                            return Ok(SafetyReport {
                                outcome: SafetyOutcome::Deadlock { trace },
                                stats,
                                truncated: false,
                            });
                        }
                        None => stats.replay_rejected += 1,
                    }
                }
                continue;
            }

            if let Some(analysis) = &reduction {
                steps = crate::reduction::ample_subset(analysis, &state, steps);
            }
            let mut steps_this_expansion = 0;
            for step in steps {
                stats.steps += 1;
                steps_this_expansion += 1;
                let applied = apply_step(program, &state, step)?;

                // Assertions fire on the edge: report even when the target
                // state was already visited.
                if let Some(message) = applied.assertion_failure {
                    match rebuild_trace(program, &parents, id, &state, lossy)? {
                        Some(prefix) => {
                            let mut events = prefix.events().to_vec();
                            events.extend(applied.events);
                            stats.unique_states = parents.len();
                            stats.elapsed = base_elapsed + start.elapsed();
                            sync_spill_stats(&mut stats, spill_base, &visited, &frontier);
                            return Ok(SafetyReport {
                                outcome: SafetyOutcome::AssertionFailed {
                                    message,
                                    trace: Trace::new(events),
                                },
                                stats,
                                truncated: false,
                            });
                        }
                        None => {
                            stats.replay_rejected += 1;
                            continue;
                        }
                    }
                }

                let next = Rc::new(applied.state);
                let already_visited = visited.contains(&next);
                if let AnyVisited::Disk(disk) = &mut visited {
                    if let Some(error) = disk.take_error() {
                        // A failed membership probe cannot be trusted:
                        // interning on a conservative "new" answer could
                        // double-count the state. Roll this expansion back
                        // (the same contract as the `max_states` trip
                        // below) so the search state stays exact.
                        stats.steps -= steps_this_expansion;
                        frontier.push_front(id, Rc::clone(&state));
                        tripped = Some(spill_trip(&error, "out-of-core visited probe failed")?);
                        break 'search;
                    }
                }
                if already_visited {
                    continue;
                }
                // Budget counting point: this check runs strictly *after*
                // the `visited.contains` dedup above, so only genuinely
                // new states are charged against `max_states` — the same
                // counting point the parallel kernel's `StateBudget`
                // enforces atomically (see `tests/golden_state_counts.rs`
                // for the regression pinning both).
                if parents.len() >= self.config.max_states {
                    // Roll this partial expansion back and requeue the
                    // current state at the *front*, so the snapshot frontier
                    // is exact and a resumed run re-expands it — counting
                    // precisely the steps an uninterrupted run would.
                    stats.steps -= steps_this_expansion;
                    frontier.push_front(id, Rc::clone(&state));
                    tripped = Some(BudgetKind::States);
                    break 'search;
                }
                let next_id = parents.len();
                visited.insert(&next);
                parents.push(Some((id, step)));
                depths.push(depths[id] + 1);

                if let Some(hit) = eval_invariants(checks, &StateView::new(program, &next))? {
                    match rebuild_trace(program, &parents, next_id, &next, lossy)? {
                        Some(trace) => {
                            stats.unique_states = parents.len();
                            stats.elapsed = base_elapsed + start.elapsed();
                            sync_spill_stats(&mut stats, spill_base, &visited, &frontier);
                            return Ok(SafetyReport {
                                outcome: hit_outcome(hit, trace),
                                stats,
                                truncated: false,
                            });
                        }
                        None => stats.replay_rejected += 1,
                    }
                }
                if let Err(error) = frontier.push_back(next_id, next) {
                    // The new state is retained in the spilled frontier's
                    // RAM tail even when its chunk flush fails, so the
                    // search state (and any final snapshot) stays complete.
                    // Roll the partial expansion back and requeue the
                    // current state (the same contract as the `max_states`
                    // trip above): a resumed run re-expands it, re-counting
                    // every transition while the dedup check skips the
                    // successors interned before the failure — so totals
                    // stay exactly those of an uninterrupted run.
                    stats.steps -= steps_this_expansion;
                    frontier.push_front(id, Rc::clone(&state));
                    tripped = Some(spill_trip(&error, "out-of-core frontier write failed")?);
                    break 'search;
                }
                stats.peak_frontier = stats.peak_frontier.max(frontier.len());
            }
        }

        // A depth-trimmed search that found nothing is still incomplete.
        if tripped.is_none() && depth_trimmed {
            tripped = Some(BudgetKind::Depth);
        }
        stats.unique_states = parents.len();
        stats.elapsed = base_elapsed + start.elapsed();
        sync_spill_stats(&mut stats, spill_base, &visited, &frontier);
        let outcome = match tripped {
            Some(budget) => {
                // An interrupted search always flushes a final snapshot:
                // budget trips and cancellation lose no work.
                if let Some(sink) = &self.sink {
                    let frontier_states =
                        frontier
                            .snapshot_states()
                            .map_err(|error| KernelError::Snapshot {
                                message: format!("out-of-core frontier snapshot failed: {error}"),
                            })?;
                    flush_checkpoint(
                        sink,
                        fingerprint,
                        &self.tag,
                        visited.kind(),
                        visited_payload(&visited),
                        &parents,
                        &depths,
                        frontier_states,
                        &stats,
                        stats.elapsed,
                    )?;
                }
                SafetyOutcome::LimitReached {
                    budget,
                    states_covered: parents.len(),
                    frontier: frontier.len(),
                }
            }
            None if lossy => SafetyOutcome::HoldsApprox {
                hash_mode: visited.kind(),
                states_visited: parents.len(),
                omission_probability: visited.omission_probability(),
            },
            None => SafetyOutcome::Holds,
        };
        Ok(SafetyReport {
            outcome,
            stats,
            truncated: tripped.is_some(),
        })
    }

    /// Searches for a reachable state satisfying `predicate`, returning the
    /// shortest witness trace if one exists (`Ok(Some(trace))`), or
    /// `Ok(None)` when no reachable state satisfies it.
    ///
    /// Reachability is the dual of an invariant: this is implemented as a
    /// violation search for `!predicate`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    ///
    /// ```
    /// # use pnp_kernel::{expr, Action, Checker, Guard, Predicate,
    /// #                  ProcessBuilder, ProgramBuilder};
    /// # let mut prog = ProgramBuilder::new();
    /// # let x = prog.global("x", 0);
    /// # let mut p = ProcessBuilder::new("p");
    /// # let s0 = p.location("s0");
    /// # let s1 = p.location("s1");
    /// # p.mark_end(s1);
    /// # p.transition(s0, s1, Guard::always(), Action::assign(x, 5.into()), "set");
    /// # prog.add_process(p)?;
    /// # let program = prog.build()?;
    /// let checker = Checker::new(&program);
    /// let witness = checker.find_reachable(&Predicate::from_expr(
    ///     expr::eq(expr::global(x), 5.into()),
    /// ))?;
    /// assert!(witness.is_some());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn find_reachable(&self, predicate: &Predicate) -> Result<Option<Trace>, KernelError> {
        let report = self.check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![("(reachability probe)".into(), predicate.negated())],
        })?;
        Ok(match report.outcome {
            SafetyOutcome::InvariantViolated { trace, .. } => Some(trace),
            _ => None,
        })
    }

    /// Replays a counterexample [`Trace`] against the program, verifying
    /// that its event sequence corresponds to a chain of enabled steps
    /// from the initial state. Returns the state the trace ends in, or
    /// `None` when the trace does not replay (no enabled step matches the
    /// next events at some point).
    ///
    /// Matching is greedy over the events each candidate step produces; a
    /// program whose distinct transitions emit identical event sequences
    /// from the same state can in principle make a genuine trace fail to
    /// replay, but every trace the checker itself reports uses the
    /// discovery chain and replays under this method.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    pub fn replay_trace(&self, trace: &Trace) -> Result<Option<State>, KernelError> {
        let program = self.program;
        let mut state = State::initial(program);
        let events = trace.events();
        let mut pos = 0;
        while pos < events.len() {
            let mut advanced = false;
            for step in enabled_steps(program, &state)? {
                let applied = apply_step(program, &state, step)?;
                let n = applied.events.len();
                if n > 0 && pos + n <= events.len() && applied.events[..] == events[pos..pos + n] {
                    state = applied.state;
                    pos += n;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(None);
            }
        }
        Ok(Some(state))
    }

    /// Counts the reachable state space without checking any property.
    /// Useful for measuring the cost of a design (see the paper's Section 6
    /// discussion of decomposition-induced state growth).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when the model is broken.
    pub fn state_space_size(&self) -> Result<SearchStats, KernelError> {
        let report = self.check_safety(&SafetyChecks {
            deadlock: false,
            invariants: Vec::new(),
        })?;
        Ok(report.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expr;
    use crate::program::{Action, Guard, ProcessBuilder, ProgramBuilder};
    use crate::trace::EventKind;

    /// Two processes that each toggle a shared flag n times.
    fn toggler(n: i32) -> Program {
        let mut prog = ProgramBuilder::new();
        let flag = prog.global("flag", 0);
        for name in ["a", "b"] {
            let mut p = ProcessBuilder::new(name);
            let count = p.local("count", 0);
            let s0 = p.location("loop");
            let s1 = p.location("done");
            p.mark_end(s1);
            p.transition(
                s0,
                s0,
                Guard::when(expr::lt(expr::local(count), n.into())),
                Action::assign_all(vec![
                    (flag.into(), expr::not(expr::global(flag))),
                    (count.into(), expr::local(count) + 1.into()),
                ]),
                "toggle",
            );
            p.transition(
                s0,
                s1,
                Guard::when(expr::ge(expr::local(count), n.into())),
                Action::Skip,
                "finish",
            );
            prog.add_process(p).unwrap();
        }
        prog.build().unwrap()
    }

    /// `k` independent processes each counting a local var to `n`:
    /// `(n + 1 + 1)^k` states with a BFS frontier wide enough (the
    /// diagonal of a `k`-cube) to overflow the minimum frontier chunk
    /// and force real chunk flushes — unlike `toggler`, whose frontier
    /// never grows past a few dozen states.
    fn counters(k: usize, n: i32) -> Program {
        let mut prog = ProgramBuilder::new();
        for i in 0..k {
            let mut p = ProcessBuilder::new(format!("c{i}"));
            let count = p.local("count", 0);
            let work = p.location("work");
            let done = p.location("done");
            p.mark_end(done);
            p.transition(
                work,
                work,
                Guard::when(expr::lt(expr::local(count), n.into())),
                Action::assign(count, expr::local(count) + 1.into()),
                "inc",
            );
            p.transition(
                work,
                done,
                Guard::when(expr::ge(expr::local(count), n.into())),
                Action::Skip,
                "finish",
            );
            prog.add_process(p).unwrap();
        }
        prog.build().unwrap()
    }

    #[test]
    fn tiny_spill_budget_completes_within_bounded_disk_ops() {
        // Regression for the derived-floor pathology: a 0-byte spill
        // budget used to derive near-zero write buffers and frontier
        // chunks, so every few states cost a run-file write plus a
        // merge-compaction rewrite — quadratic I/O on a linear search.
        // The floors now clamp to sane minimum chunk sizes, so the total
        // op count stays within a small multiple of the state count.
        let program = toggler(200);
        let fs = Arc::new(crate::vfs::SimFs::new(37));
        let report = Checker::with_config(
            &program,
            SearchConfig {
                spill_at_bytes: Some(0),
                ..SearchConfig::default()
            },
        )
        .spill_to(fs.clone() as crate::vfs::VfsHandle, "/spill")
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(report.outcome, SafetyOutcome::Holds);
        assert!(report.stats.spilled_states > 0, "{}", report.stats);
        let ops = fs.op_count();
        let states = report.stats.unique_states as u64;
        // With sane floors the run stays well under 1 op and ~1 KiB of
        // run-file writes per state (measured ~0.26 ops and ~440 B); the
        // old proportional floors burned ~2.8 ops and ~3.6 KiB per state.
        assert!(
            ops < states,
            "disk ops regressed to pathological levels: {ops} ops for {states} states"
        );
        assert!(
            report.stats.spill_bytes < report.stats.unique_states * 1000,
            "write amplification regressed: {} bytes for {states} states",
            report.stats.spill_bytes
        );
    }

    #[test]
    fn holds_for_true_invariant() {
        let program = toggler(2);
        let flag = program.global_by_name("flag").unwrap();
        let checker = Checker::new(&program);
        let report = checker
            .check_safety(&SafetyChecks::invariants(vec![(
                "flag is 0 or 1".into(),
                Predicate::from_expr(expr::and(
                    expr::ge(expr::global(flag), 0.into()),
                    expr::le(expr::global(flag), 1.into()),
                )),
            )]))
            .unwrap();
        assert!(report.outcome.is_holds());
        assert!(!report.truncated);
        assert!(report.stats.unique_states > 1);
    }

    #[test]
    fn finds_invariant_violation_with_shortest_trace() {
        let program = toggler(2);
        let flag = program.global_by_name("flag").unwrap();
        let checker = Checker::new(&program);
        let report = checker
            .check_safety(&SafetyChecks::invariants(vec![(
                "flag stays 0".into(),
                Predicate::from_expr(expr::eq(expr::global(flag), 0.into())),
            )]))
            .unwrap();
        match report.outcome {
            SafetyOutcome::InvariantViolated { name, trace } => {
                assert_eq!(name, "flag stays 0");
                // One toggle suffices; BFS must find the 1-step trace.
                assert_eq!(trace.len(), 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn initial_state_violation_gives_empty_trace() {
        let program = toggler(1);
        let checker = Checker::new(&program);
        let report = checker
            .check_safety(&SafetyChecks::invariants(vec![(
                "impossible".into(),
                Predicate::from_expr(0.into()),
            )]))
            .unwrap();
        match report.outcome {
            SafetyOutcome::InvariantViolated { trace, .. } => assert!(trace.is_empty()),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn detects_deadlock_on_mutual_wait() {
        // Two processes each wait to receive before sending: classic deadlock.
        let mut prog = ProgramBuilder::new();
        let c1 = prog.channel("c1", 0, 1);
        let c2 = prog.channel("c2", 0, 1);
        for (name, recv_chan, send_chan) in [("p", c1, c2), ("q", c2, c1)] {
            let mut p = ProcessBuilder::new(name);
            let s0 = p.location("wait");
            let s1 = p.location("reply");
            let s2 = p.location("done");
            p.mark_end(s2);
            p.transition(
                s0,
                s1,
                Guard::always(),
                Action::recv_any(recv_chan, 1),
                "recv",
            );
            p.transition(
                s1,
                s2,
                Guard::always(),
                Action::send(send_chan, vec![1.into()]),
                "send",
            );
            prog.add_process(p).unwrap();
        }
        let program = prog.build().unwrap();
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        match report.outcome {
            SafetyOutcome::Deadlock { trace } => assert!(trace.is_empty()),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn valid_end_states_are_not_deadlocks() {
        let program = toggler(1);
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert!(report.outcome.is_holds());
    }

    #[test]
    fn unmarked_termination_is_a_deadlock() {
        let mut prog = ProgramBuilder::new();
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("start");
        let s1 = p.location("stuck"); // not marked as an end location
        p.transition(s0, s1, Guard::always(), Action::Skip, "step");
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        match report.outcome {
            SafetyOutcome::Deadlock { trace } => {
                assert_eq!(trace.len(), 1);
                assert_eq!(trace.events()[0].label(), "step");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn assertion_failures_are_found_with_trace() {
        let mut prog = ProgramBuilder::new();
        let x = prog.global("x", 0);
        let mut p = ProcessBuilder::new("p");
        let s0 = p.location("inc");
        let s1 = p.location("check");
        let s2 = p.location("done");
        p.mark_end(s2);
        p.transition(
            s0,
            s1,
            Guard::always(),
            Action::assign(x, expr::global(x) + 2.into()),
            "x += 2",
        );
        p.transition(
            s1,
            s2,
            Guard::always(),
            Action::assert(expr::lt(expr::global(x), 2.into()), "x < 2"),
            "assert",
        );
        prog.add_process(p).unwrap();
        let program = prog.build().unwrap();
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        match report.outcome {
            SafetyOutcome::AssertionFailed { message, trace } => {
                assert_eq!(message, "x < 2");
                assert_eq!(trace.len(), 2);
                assert!(matches!(trace.events()[1].kind(), EventKind::Internal));
            }
            other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn native_predicates_see_full_state() {
        let program = toggler(1);
        let pid = program.process_by_name("a").unwrap();
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::invariants(vec![(
                "a never finishes".into(),
                Predicate::native("a not done", move |view| view.location_name(pid) != "done"),
            )]))
            .unwrap();
        assert!(matches!(
            report.outcome,
            SafetyOutcome::InvariantViolated { .. }
        ));
    }

    #[test]
    fn max_states_truncates_search() {
        let program = toggler(10);
        let checker = Checker::with_config(
            &program,
            SearchConfig {
                max_states: 5,
                ..SearchConfig::default()
            },
        );
        let report = checker
            .check_safety(&SafetyChecks {
                deadlock: false,
                invariants: Vec::new(),
            })
            .unwrap();
        assert!(report.truncated);
        assert!(report.stats.unique_states <= 5);
    }

    #[test]
    fn zero_time_budget_returns_partial_result() {
        let program = toggler(10);
        let checker = Checker::with_config(
            &program,
            SearchConfig {
                max_time: Some(Duration::ZERO),
                ..SearchConfig::default()
            },
        );
        let report = checker
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        match report.outcome {
            SafetyOutcome::LimitReached {
                budget,
                states_covered,
                ..
            } => {
                assert_eq!(budget, BudgetKind::Time);
                assert!(states_covered >= 1);
            }
            other => panic!("expected LimitReached, got {other:?}"),
        }
        assert!(report.truncated);
        // Partial stats are still populated.
        assert_eq!(report.stats.unique_states, 1);
    }

    #[test]
    fn tiny_memory_budget_trips_with_partial_stats() {
        let program = toggler(10);
        let checker = Checker::with_config(
            &program,
            SearchConfig {
                max_memory_bytes: Some(1024),
                ..SearchConfig::default()
            },
        );
        let report = checker
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        match report.outcome {
            SafetyOutcome::LimitReached { budget, .. } => {
                assert_eq!(budget, BudgetKind::Memory);
            }
            other => panic!("expected LimitReached, got {other:?}"),
        }
        assert!(report.stats.approx_memory_bytes >= 1024);
    }

    #[test]
    fn depth_budget_trims_but_still_checks_shallow_states() {
        let program = toggler(10);
        let flag = program.global_by_name("flag").unwrap();
        let checker = Checker::with_config(
            &program,
            SearchConfig {
                max_depth: Some(1),
                ..SearchConfig::default()
            },
        );
        // A violation within the depth bound is still found...
        let report = checker
            .check_safety(&SafetyChecks::invariants(vec![(
                "flag stays 0".into(),
                Predicate::from_expr(expr::eq(expr::global(flag), 0.into())),
            )]))
            .unwrap();
        assert!(matches!(
            report.outcome,
            SafetyOutcome::InvariantViolated { .. }
        ));
        // ...and an exhausted-at-the-bound search reports the trim.
        let report = checker
            .check_safety(&SafetyChecks {
                deadlock: false,
                invariants: Vec::new(),
            })
            .unwrap();
        assert!(matches!(
            report.outcome,
            SafetyOutcome::LimitReached {
                budget: BudgetKind::Depth,
                ..
            }
        ));
    }

    #[test]
    fn cancellation_stops_the_search() {
        let program = toggler(10);
        let token = CancelToken::new();
        token.cancel();
        let report = Checker::new(&program)
            .with_cancellation(token)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert!(matches!(
            report.outcome,
            SafetyOutcome::LimitReached {
                budget: BudgetKind::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn max_states_reports_limit_reached() {
        let program = toggler(10);
        let checker = Checker::with_config(
            &program,
            SearchConfig {
                max_states: 5,
                ..SearchConfig::default()
            },
        );
        let report = checker
            .check_safety(&SafetyChecks {
                deadlock: false,
                invariants: Vec::new(),
            })
            .unwrap();
        match report.outcome {
            SafetyOutcome::LimitReached {
                budget,
                states_covered,
                frontier,
            } => {
                assert_eq!(budget, BudgetKind::States);
                assert_eq!(states_covered, 5);
                assert!(frontier > 0, "an early stop must leave a frontier");
            }
            other => panic!("expected LimitReached, got {other:?}"),
        }
    }

    #[test]
    fn panicking_native_predicate_is_isolated() {
        let program = toggler(2);
        let flag = program.global_by_name("flag").unwrap();
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::invariants(vec![(
                "panicky".into(),
                Predicate::native("explodes when flag set", move |view| {
                    assert!(view.global(flag) == 0, "predicate blew up");
                    true
                }),
            )]))
            .unwrap();
        match report.outcome {
            SafetyOutcome::PredicateError {
                name,
                message,
                trace,
            } => {
                assert_eq!(name, "panicky");
                assert!(message.contains("predicate blew up"), "{message}");
                // BFS reaches the offending state in one toggle.
                assert_eq!(trace.len(), 1);
            }
            other => panic!("expected PredicateError, got {other:?}"),
        }
    }

    #[test]
    fn stats_report_peak_frontier_and_memory() {
        let program = toggler(3);
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert!(report.stats.peak_frontier >= 1);
        assert!(report.stats.approx_memory_bytes > 0);
        let text = report.stats.to_string();
        assert!(text.contains("peak frontier"), "{text}");
    }

    #[test]
    fn state_space_size_counts_interleavings() {
        // toggler(1): each process loops once then finishes.
        let small = Checker::new(&toggler(1)).state_space_size().unwrap();
        let large = Checker::new(&toggler(3)).state_space_size().unwrap();
        assert!(small.unique_states > 0);
        assert!(large.unique_states > small.unique_states);
    }

    #[test]
    fn find_reachable_returns_shortest_witness() {
        let program = toggler(2);
        let flag = program.global_by_name("flag").unwrap();
        let checker = Checker::new(&program);
        let witness = checker
            .find_reachable(&Predicate::from_expr(expr::eq(
                expr::global(flag),
                1.into(),
            )))
            .unwrap();
        assert_eq!(witness.unwrap().len(), 1);
        let none = checker
            .find_reachable(&Predicate::from_expr(expr::eq(
                expr::global(flag),
                9.into(),
            )))
            .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn negated_predicates_flip_both_variants() {
        let program = toggler(1);
        let view_holds = |p: &Predicate| {
            let initial = crate::state::State::initial(&program);
            p.eval(&StateView::new(&program, &initial)).unwrap()
        };
        let e = Predicate::from_expr(1.into());
        assert!(view_holds(&e));
        assert!(!view_holds(&e.negated()));
        let n = Predicate::native("always true", |_| true);
        assert!(view_holds(&n));
        assert!(!view_holds(&n.negated()));
    }

    #[test]
    fn reports_display_readably() {
        let program = toggler(1);
        let report = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        let text = report.to_string();
        assert!(text.starts_with("holds ["), "{text}");
        assert!(text.contains("states"), "{text}");
    }

    #[test]
    fn broken_property_expression_is_an_error() {
        let program = toggler(1);
        let report = Checker::new(&program).check_safety(&SafetyChecks::invariants(vec![(
            "bad".into(),
            Predicate::from_expr(expr::eq(Expr::Global(99), 1.into())),
        )]));
        assert!(matches!(report, Err(KernelError::Eval { .. })));
    }

    #[test]
    fn display_picks_units_by_magnitude() {
        let mut stats = SearchStats {
            approx_memory_bytes: 3 << 30,
            ..SearchStats::default()
        };
        assert!(stats.to_string().contains("~3.0 GiB"), "{stats}");
        stats.approx_memory_bytes = 5 << 20;
        assert!(stats.to_string().contains("~5.0 MiB"), "{stats}");
        stats.approx_memory_bytes = 7 << 10;
        assert!(stats.to_string().contains("~7 KiB"), "{stats}");
        assert!(!stats.to_string().contains("spilled"), "{stats}");
        stats.spilled_states = 42;
        stats.spill_bytes = 2 << 20;
        stats.merge_passes = 3;
        let text = stats.to_string();
        assert!(
            text.contains("spilled 42 states, 2.0 MiB, 3 merges"),
            "{text}"
        );
    }

    /// Storage on a seeded simulated filesystem for out-of-core tests.
    fn sim_storage(seed: u64) -> crate::vfs::VfsHandle {
        Arc::new(crate::vfs::SimFs::new(seed))
    }

    #[test]
    fn spilled_search_matches_in_memory_run() {
        // Big enough that the clamped minimum write buffers (see
        // `MIN_DISK_BUF_CAP`) actually flush runs to disk.
        let program = toggler(50);
        let baseline = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        let spilled = Checker::with_config(
            &program,
            SearchConfig {
                // Spill from the very first expansion.
                spill_at_bytes: Some(1),
                ..SearchConfig::default()
            },
        )
        .spill_to(sim_storage(31), "/spill")
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(spilled.outcome, baseline.outcome);
        assert_eq!(spilled.stats.unique_states, baseline.stats.unique_states);
        assert_eq!(spilled.stats.steps, baseline.stats.steps);
        assert_eq!(spilled.stats.max_depth, baseline.stats.max_depth);
        assert!(spilled.stats.spilled_states > 0, "{}", spilled.stats);
        assert!(spilled.stats.spill_bytes > 0, "{}", spilled.stats);
        assert_eq!(baseline.stats.spilled_states, 0);
    }

    #[test]
    fn spilled_search_finds_identical_counterexample() {
        let program = toggler(3);
        let flag = program.global_by_name("flag").unwrap();
        let checks = SafetyChecks::invariants(vec![(
            "flag stays 0".into(),
            Predicate::from_expr(expr::eq(expr::global(flag), 0.into())),
        )]);
        let baseline = Checker::new(&program).check_safety(&checks).unwrap();
        let spilled = Checker::with_config(
            &program,
            SearchConfig {
                spill_at_bytes: Some(1),
                ..SearchConfig::default()
            },
        )
        .spill_to(sim_storage(32), "/spill")
        .check_safety(&checks)
        .unwrap();
        assert_eq!(spilled.outcome, baseline.outcome);
    }

    #[test]
    fn disk_visited_backend_matches_exact() {
        let program = toggler(4);
        let baseline = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        let disk = Checker::with_config(
            &program,
            SearchConfig {
                visited: VisitedKind::DiskExact,
                ..SearchConfig::default()
            },
        )
        .spill_to(sim_storage(33), "/spill")
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(disk.outcome, baseline.outcome);
        assert_eq!(disk.stats.unique_states, baseline.stats.unique_states);
        assert_eq!(disk.stats.steps, baseline.stats.steps);
        assert_eq!(disk.stats.max_depth, baseline.stats.max_depth);
        // Exhaustive under an exact backend: the verdict is definitive,
        // not approximate.
        assert_eq!(disk.outcome, SafetyOutcome::Holds);
    }

    #[test]
    fn disk_visited_routes_to_the_sequential_kernel() {
        let program = toggler(2);
        let report = Checker::with_config(
            &program,
            SearchConfig {
                visited: VisitedKind::DiskExact,
                threads: 4,
                ..SearchConfig::default()
            },
        )
        .spill_to(sim_storage(34), "/spill")
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(report.outcome, SafetyOutcome::Holds);
    }

    #[test]
    fn enospc_during_spill_degrades_to_limit_reached() {
        // Big enough to overflow the minimum write buffers and force a
        // run-file write, which is what trips the fault plan.
        let program = toggler(50);
        let fs = Arc::new(crate::vfs::SimFs::new(35));
        fs.set_plan(crate::vfs::FaultPlan {
            enospc_per_mille: 1000,
            ..crate::vfs::FaultPlan::default()
        });
        let report = Checker::with_config(
            &program,
            SearchConfig {
                spill_at_bytes: Some(1),
                ..SearchConfig::default()
            },
        )
        .spill_to(fs, "/spill")
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        match report.outcome {
            SafetyOutcome::LimitReached {
                budget,
                states_covered,
                ..
            } => {
                assert_eq!(budget, BudgetKind::Memory);
                assert!(states_covered >= 1);
            }
            other => panic!("expected graceful LimitReached, got {other:?}"),
        }
        assert!(report.truncated);
    }

    #[test]
    fn enospc_interrupted_spilled_run_resumes_to_exact_totals() {
        // Regression for a partial-expansion leak: a frontier chunk
        // write that failed mid-expansion used to keep the steps already
        // counted for the interrupted state without requeueing it, so a
        // resumed run under-counted `steps` by that state's remaining
        // transitions (the serve chaos matrix caught it as a one-step
        // fingerprint divergence on enospc-during-merge seed 5).
        let program = counters(3, 16);
        let baseline = Checker::new(&program)
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();

        let fs = Arc::new(crate::vfs::SimFs::new(10));
        let config = SearchConfig {
            spill_at_bytes: Some(1),
            ..SearchConfig::default()
        };
        let buffer = Rc::new(RefCell::new(Vec::new()));
        let mut trips = 0u32;
        let report = loop {
            // Seeded ENOSPC draws against every spill write; each hit
            // must degrade to an honest memory trip whose final snapshot
            // resumes to exactly the uninterrupted totals. The plan goes
            // clean after a few trips so the loop always converges.
            fs.set_plan(if trips < 8 {
                crate::vfs::FaultPlan {
                    enospc_per_mille: 120,
                    ..crate::vfs::FaultPlan::default()
                }
            } else {
                crate::vfs::FaultPlan::default()
            });
            let checker = if buffer.borrow().is_empty() {
                Checker::with_config(&program, config)
            } else {
                let snapshot = Snapshot::decode(&buffer.borrow()).unwrap();
                Checker::resume_from(&program, snapshot)
                    .unwrap()
                    .with_search_config(config)
            };
            let attempt = checker
                .spill_to(fs.clone(), "/spill")
                .checkpoint_to(Rc::clone(&buffer))
                .check_safety(&SafetyChecks::deadlock_only());
            match attempt {
                Ok(report) => match report.outcome {
                    SafetyOutcome::LimitReached { budget, .. } => {
                        assert_eq!(budget, BudgetKind::Memory);
                        trips += 1;
                        assert!(trips < 50, "spilled search never converged");
                    }
                    _ => break report,
                },
                // An ENOSPC outside a live search (e.g. while rebuilding
                // the on-disk visited set during resume) is a clean
                // transient failure: retry from the same checkpoint.
                Err(KernelError::Snapshot { .. }) => {
                    trips += 1;
                    assert!(trips < 50, "spilled search never converged");
                }
                Err(other) => panic!("unexpected kernel error: {other}"),
            }
        };
        assert!(trips > 0, "fault plan never tripped a spill write");
        assert_eq!(report.outcome, SafetyOutcome::Holds);
        assert_eq!(report.stats.unique_states, baseline.stats.unique_states);
        assert_eq!(report.stats.steps, baseline.stats.steps);
        assert_eq!(report.stats.max_depth, baseline.stats.max_depth);
    }

    #[test]
    fn spilled_run_checkpoints_and_resumes_to_exact_totals() {
        let program = toggler(50);
        let fs = sim_storage(36);
        let config = SearchConfig {
            spill_at_bytes: Some(1),
            ..SearchConfig::default()
        };
        let uninterrupted = Checker::with_config(&program, config)
            .spill_to(fs.clone(), "/spill-a")
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();

        // Trip a state budget partway through, flushing a final snapshot.
        let buffer = Rc::new(RefCell::new(Vec::new()));
        let tripped = Checker::with_config(
            &program,
            SearchConfig {
                max_states: uninterrupted.stats.unique_states / 2,
                ..config
            },
        )
        .spill_to(fs.clone(), "/spill-b")
        .checkpoint_to(Rc::clone(&buffer))
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert!(tripped.truncated);

        let snapshot = Snapshot::decode(&buffer.borrow()).unwrap();
        assert_eq!(snapshot.kind, VisitedKind::DiskExact);
        let resumed = Checker::resume_from(&program, snapshot)
            .unwrap()
            .with_search_config(config)
            .spill_to(fs, "/spill-b")
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert_eq!(resumed.outcome, uninterrupted.outcome);
        assert_eq!(
            resumed.stats.unique_states,
            uninterrupted.stats.unique_states
        );
        assert_eq!(resumed.stats.steps, uninterrupted.stats.steps);
        assert_eq!(resumed.stats.max_depth, uninterrupted.stats.max_depth);
        assert!(resumed.stats.spilled_states > 0);
    }
}
