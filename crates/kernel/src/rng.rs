//! The one vendored PRNG of the workspace: SplitMix64.
//!
//! Every crate that needs deterministic randomness (the random simulator,
//! the bitstate hash family, the vendored proptest shim) uses this single
//! implementation instead of carrying its own copy. The generator is tiny,
//! splittable-quality, and has no external dependency; its output quality
//! is far beyond what scheduler picks or hash seeding need.

/// A small deterministic PRNG (SplitMix64).
///
/// The same seed always reproduces the same stream, which is what makes
/// simulation runs replayable and bitstate hash families stable across
/// checkpoint/resume.
///
/// ```
/// use pnp_kernel::SplitMix64;
/// let mut a = SplitMix64::seed_from_u64(7);
/// let mut b = SplitMix64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// A uniform index in `0..bound` (`bound` must be nonzero). Uses
    /// rejection sampling to avoid modulo bias.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }
}

/// The workspace's one content checksum: FNV-1a over `bytes`, finished
/// with the SplitMix64 mixer. Snapshots, generation envelopes, and the
/// persisted service queue all seal their bytes with this.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

/// SplitMix64's output mixer as a standalone finalizer: a fast, high-quality
/// 64-bit bijection, used to finish content hashes (state fingerprints,
/// snapshot checksums) so that nearby inputs land far apart.
pub fn mix64(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_index_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(0);
        for bound in [1usize, 2, 3, 7, 100] {
            for _ in 0..50 {
                assert!(rng.gen_index(bound) < bound);
            }
        }
    }

    #[test]
    fn mix64_is_not_identity_and_spreads_neighbors() {
        assert_ne!(mix64(1), 1);
        // Neighboring inputs should differ in many bits.
        let d = (mix64(5) ^ mix64(6)).count_ones();
        assert!(d > 10, "poor diffusion: {d} differing bits");
    }
}
