//! Publish/subscribe through the PnP standard interfaces (the paper's
//! Section 6 extension): a newswire with a tag-filtered subscriber.
//!
//! Run with: `cargo run --release --example pubsub_news`

use pnp::core::{
    ComponentBuilder, EventChannelSpec, ReceiveBinds, RecvPortKind, SendPortKind, Subscription,
    SystemBuilder,
};
use pnp::kernel::{expr, Action, Checker, Guard, Predicate, SafetyChecks};

const SPORTS: i32 = 1;
const WEATHER: i32 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = SystemBuilder::new();
    let published = sys.global("published", 0);
    let sports_seen = sys.global("sports_seen", 0);
    let anything_seen = sys.global("anything_seen", 0);

    let newswire = sys.event_connector(
        "newswire",
        EventChannelSpec {
            per_subscription_capacity: 2,
        },
    );
    let agency = sys.publisher(newswire, SendPortKind::AsynBlocking);
    let sports_desk = sys.subscriber(
        newswire,
        RecvPortKind::nonblocking(),
        Subscription::to_tag(SPORTS),
    );
    let archive = sys.subscriber(newswire, RecvPortKind::nonblocking(), Subscription::all());

    // Publisher: one weather item, one sports item.
    let mut publisher = ComponentBuilder::new("agency");
    let p0 = publisher.location("weather");
    let p1 = publisher.location("sports");
    let p2 = publisher.location("mark");
    let p3 = publisher.location("done");
    publisher.mark_end(p3);
    publisher.send_msg(p0, p1, &agency, 100.into(), WEATHER.into(), None);
    publisher.send_msg(p1, p2, &agency, 200.into(), SPORTS.into(), None);
    publisher.transition(
        p2,
        p3,
        Guard::always(),
        Action::assign(published, 1.into()),
        "all published",
    );

    // A subscriber component, reused for both desks (only the attachment
    // differs — standard interfaces at work).
    let desk = |name: &str, port, out| {
        let mut c = ComponentBuilder::new(name);
        let status = c.local("status", 0);
        let item = c.local("item", 0);
        let s0 = c.location("wait");
        let s1 = c.location("poll");
        let s2 = c.location("check");
        let s3 = c.location("record");
        let s4 = c.location("done");
        c.mark_end(s4);
        c.transition(
            s0,
            s1,
            Guard::when(expr::eq(expr::global(published), 1.into())),
            Action::Skip,
            "news is out",
        );
        c.recv_msg(
            s1,
            s2,
            port,
            None,
            ReceiveBinds::data_into(item).with_status(status),
        );
        c.transition(
            s2,
            s3,
            Guard::when(expr::eq(
                expr::local(status),
                pnp::core::signals::RECV_SUCC.into(),
            )),
            Action::assign(out, expr::local(item)),
            "record item",
        );
        c.transition(
            s2,
            s1,
            Guard::when(expr::ne(
                expr::local(status),
                pnp::core::signals::RECV_SUCC.into(),
            )),
            Action::Skip,
            "nothing yet",
        );
        c.goto(s3, s4, "desk done");
        c
    };

    sys.add_component(publisher);
    sys.add_component(desk("sports_desk", &sports_desk, sports_seen));
    sys.add_component(desk("archive", &archive, anything_seen));

    let system = sys.build()?;
    let checker = Checker::new(system.program());
    let report = checker.check_safety(&SafetyChecks::invariants(vec![(
        "the sports desk only ever sees sports".into(),
        Predicate::from_expr(expr::or(
            expr::eq(expr::global(sports_seen), 0.into()),
            expr::eq(expr::global(sports_seen), 200.into()),
        )),
    )]))?;
    println!(
        "sports-desk filter verified: {} ({} states)",
        report.outcome.is_holds(),
        report.stats.unique_states
    );

    let report = checker.check_safety(&SafetyChecks::deadlock_only())?;
    println!("deadlock-free: {}", report.outcome.is_holds());
    Ok(())
}
