//! Remote procedure call composed from the message-passing blocks (the
//! paper's Section 6 extension): a client queries an account server and the
//! checker proves the reply is always consistent.
//!
//! Run with: `cargo run --release --example rpc_bank`

use pnp::core::{ComponentBuilder, RpcConnector, SystemBuilder};
use pnp::kernel::{expr, Action, Checker, Guard, Predicate, SafetyChecks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = SystemBuilder::new();
    let observed = sys.global("observed_balance", -1);
    let rpc = RpcConnector::declare(&mut sys, "get_balance");

    // Client: call get_balance(acct=3) and publish the reply.
    let mut client = ComponentBuilder::new("client");
    let balance = client.local("balance", 0);
    let c0 = client.location("call");
    let c1 = client.location("publish");
    let c2 = client.location("done");
    client.mark_end(c2);
    rpc.emit_call(&mut client, c0, c1, 3.into(), 0.into(), balance);
    client.transition(
        c1,
        c2,
        Guard::always(),
        Action::assign(observed, expr::local(balance)),
        "publish balance",
    );

    // Server: balance(acct) = acct * 100.
    let mut server = ComponentBuilder::new("account_server");
    let acct = server.local("acct", 0);
    let s0 = server.location("serve");
    let s1 = server.location("reply");
    let s2 = server.location("done");
    server.mark_end(s2);
    rpc.emit_handle(&mut server, s0, s1, acct, None);
    rpc.emit_reply(&mut server, s1, s2, expr::local(acct) * 100.into());

    sys.add_component(client);
    sys.add_component(server);
    let system = sys.build()?;

    let checker = Checker::new(system.program());
    let report = checker.check_safety(&SafetyChecks {
        deadlock: true,
        invariants: vec![(
            "the observed balance is unset or exactly 300".into(),
            Predicate::from_expr(expr::or(
                expr::eq(expr::global(observed), (-1).into()),
                expr::eq(expr::global(observed), 300.into()),
            )),
        )],
    })?;
    println!(
        "RPC consistency + deadlock-freedom: {} ({} states in {:?})",
        report.outcome.is_holds(),
        report.stats.unique_states,
        report.stats.elapsed
    );
    Ok(())
}
