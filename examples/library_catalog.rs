//! Prints the building-block library (the paper's Fig. 1 table).
//!
//! Run with: `cargo run --example library_catalog`

use pnp::core::{BlockCategory, BlockLibrary};

fn main() {
    let catalog = BlockLibrary::catalog();
    for category in [
        BlockCategory::SendPort,
        BlockCategory::RecvPort,
        BlockCategory::Channel,
    ] {
        println!("== {} ==", category.label());
        for block in catalog.iter().filter(|b| b.category == category) {
            println!("  {:<22} {}", block.name, block.description);
        }
        println!();
    }
}
