//! A second plug-and-play case study: a fire-alarm panel.
//!
//! A sensor reports alarms for two zones through a connector to the siren
//! panel. The initial design uses a *dropping* single-slot buffer with a
//! fire-and-forget send — verification finds that a zone's alarm can be
//! lost without anyone noticing. Swapping two building blocks (FIFO
//! channel + blocking send) repairs the design; the sensor and panel
//! components are untouched.
//!
//! Run with: `cargo run --release --example alarm_system`

use pnp::core::{
    ChannelKind, ComponentBuilder, ReceiveBinds, RecvPortKind, SendPortKind, SystemBuilder,
};
use pnp::kernel::{expr, Action, Checker, Guard, Predicate};

const RECV_SUCC: i32 = pnp::core::signals::RECV_SUCC;

fn build(
    channel: ChannelKind,
    send: SendPortKind,
) -> (pnp::core::System, [pnp::kernel::GlobalId; 3]) {
    let mut sys = SystemBuilder::new();
    let sensor_done = sys.global("sensor_done", 0);
    let zone1 = sys.global("zone1_alarmed", 0);
    let zone2 = sys.global("zone2_alarmed", 0);

    let alarms = sys.connector("alarms", channel);
    let tx = sys.send_port(alarms, send);
    let rx = sys.recv_port(alarms, RecvPortKind::nonblocking());

    let mut sensor = ComponentBuilder::new("sensor");
    let s0 = sensor.location("zone1");
    let s1 = sensor.location("zone2");
    let s2 = sensor.location("mark");
    let s3 = sensor.location("done");
    sensor.mark_end(s3);
    sensor.send_msg(s0, s1, &tx, 1.into(), 0.into(), None);
    sensor.send_msg(s1, s2, &tx, 2.into(), 0.into(), None);
    sensor.transition(
        s2,
        s3,
        Guard::always(),
        Action::assign(sensor_done, 1.into()),
        "all zones reported",
    );

    let mut panel = ComponentBuilder::new("panel");
    let status = panel.local("status", 0);
    let zone = panel.local("zone", 0);
    // Snapshot of sensor_done taken *before* each poll: deciding "all
    // quiet" from a poll result older than the sensor's completion is a
    // race the checker catches (try deciding on sensor_done directly!).
    let pre_done = panel.local("pre_done", 0);
    let p_poll = panel.location("poll");
    let p_polling = panel.location("polling");
    let p_check = panel.location("check");
    let p_z1 = panel.location("sound_zone1");
    let p_z2 = panel.location("sound_zone2");
    let p_done = panel.location("done");
    panel.mark_end(p_done);
    panel.transition(
        p_poll,
        p_polling,
        Guard::always(),
        Action::assign(pre_done, expr::global(sensor_done)),
        "snapshot sensor state",
    );
    panel.recv_msg(
        p_polling,
        p_check,
        &rx,
        None,
        ReceiveBinds::data_into(zone).with_status(status),
    );
    let got = Guard::when(expr::eq(expr::local(status), RECV_SUCC.into()));
    panel.transition(
        p_check,
        p_z1,
        got.clone().and_when(expr::eq(expr::local(zone), 1.into())),
        Action::assign(zone1, 1.into()),
        "sound zone 1",
    );
    panel.transition(
        p_check,
        p_z2,
        got.and_when(expr::eq(expr::local(zone), 2.into())),
        Action::assign(zone2, 1.into()),
        "sound zone 2",
    );
    panel.goto(p_z1, p_poll, "keep polling");
    panel.goto(p_z2, p_poll, "keep polling");
    // Nothing pending AND the sensor had already finished before this
    // poll was issued: everything it sent must have been visible.
    panel.transition(
        p_check,
        p_done,
        Guard::when(expr::and(
            expr::ne(expr::local(status), RECV_SUCC.into()),
            expr::eq(expr::local(pre_done), 1.into()),
        )),
        Action::Skip,
        "all quiet",
    );
    panel.transition(
        p_check,
        p_poll,
        Guard::when(expr::and(
            expr::ne(expr::local(status), RECV_SUCC.into()),
            expr::ne(expr::local(pre_done), 1.into()),
        )),
        Action::Skip,
        "nothing yet",
    );

    sys.add_component(sensor);
    sys.add_component(panel);
    (sys.build().unwrap(), [sensor_done, zone1, zone2])
}

fn lost_alarm(system: &pnp::core::System, ids: [pnp::kernel::GlobalId; 3]) -> Option<usize> {
    let [_, _, zone2] = ids;
    let panel = system.program().process_by_name("panel").unwrap();
    // A lost alarm: the panel declared "all quiet" but zone 2 never sounded.
    let lost = Predicate::native("panel done, zone 2 silent", move |view| {
        view.location_name(panel) == "done" && view.global(zone2) == 0
    });
    Checker::new(system.program())
        .find_reachable(&lost)
        .unwrap()
        .map(|t| t.len())
}

fn main() {
    println!("== initial design: AsynNonblockingSend -> Dropping(1) ==");
    let (buggy, ids) = build(
        ChannelKind::Dropping { capacity: 1 },
        SendPortKind::AsynNonblocking,
    );
    match lost_alarm(&buggy, ids) {
        Some(steps) => println!("ALARM LOST: zone 2 can go silent ({steps}-step witness)"),
        None => println!("no lost alarms (unexpected!)"),
    }

    println!("\n== two-block fix: AsynBlockingSend -> FIFO(2) ==");
    let (fixed, ids) = build(
        ChannelKind::Fifo { capacity: 2 },
        SendPortKind::AsynBlocking,
    );
    match lost_alarm(&fixed, ids) {
        Some(steps) => println!("still lossy ({steps}-step witness)?!"),
        None => println!("verified: every alarm sounds before the panel rests"),
    }
    println!("(sensor and panel components identical in both designs)");
}
