//! The plug-and-play workflow driven entirely from the textual
//! architecture-description language: compile a spec, verify it, apply the
//! one-block fix *as a textual edit*, and verify again.
//!
//! Run with: `cargo run --release --example adl_workflow`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buggy = include_str!("specs/bridge_buggy.pnp");

    println!("== verifying the initial design (asyn_blocking enter ports) ==");
    let spec = pnp::lang::compile(buggy)?;
    let results = spec.verify_all()?;
    for result in &results {
        println!("  {result}");
    }

    // The paper's fix, as a one-token textual substitution on the enter
    // connectors only.
    let fixed = buggy.replace(
        "send blue_enter_tx: asyn_blocking",
        "send blue_enter_tx: syn_blocking",
    );
    let fixed = fixed.replace(
        "send red_enter_tx: asyn_blocking",
        "send red_enter_tx: syn_blocking",
    );

    println!("\n== after the one-block fix (syn_blocking enter ports) ==");
    let spec = pnp::lang::compile(&fixed)?;
    let results = spec.verify_all()?;
    for result in &results {
        println!("  {result}");
    }
    Ok(())
}
