//! Quantifying the paper's informal efficiency claim: the at-most-N design
//! yields better traffic flow than strict turn-taking when traffic is
//! asymmetric, because empty turns are yielded immediately.
//!
//! Run with: `cargo run --release --example bridge_throughput`

use pnp::bridge::{at_most_n_bridge, crossings_in, exactly_n_bridge, BridgeConfig};

fn main() {
    const STEPS: usize = 20_000;
    const SEEDS: u64 = 5;

    println!("crossings completed in {STEPS} scheduler steps (mean over {SEEDS} seeds)\n");
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "traffic (blue/red)", "exactly-N", "at-most-N", "speedup"
    );

    for (blue, red) in [(1usize, 1usize), (2, 1), (1, 0), (2, 0)] {
        let cfg = BridgeConfig::fixed().with_cars(blue, red).with_laps(None);
        let strict = exactly_n_bridge(&cfg).unwrap();
        let flexible = at_most_n_bridge(&cfg).unwrap();

        let mut strict_total = 0u64;
        let mut flexible_total = 0u64;
        for seed in 0..SEEDS {
            let (b, r) = crossings_in(strict.program(), STEPS, seed).unwrap();
            strict_total += b + r;
            let (b, r) = crossings_in(flexible.program(), STEPS, seed).unwrap();
            flexible_total += b + r;
        }
        let strict_mean = strict_total as f64 / SEEDS as f64;
        let flexible_mean = flexible_total as f64 / SEEDS as f64;
        let speedup = if strict_mean > 0.0 {
            format!("{:.1}x", flexible_mean / strict_mean)
        } else {
            "inf".to_string()
        };
        println!(
            "{:<22} {:>14.1} {:>14.1} {:>14}",
            format!("{blue} blue / {red} red"),
            strict_mean,
            flexible_mean,
            speedup
        );
    }

    println!(
        "\nWith an empty red side the strict design admits one batch and then\n\
         waits forever for exits that never come; the at-most-N design keeps\n\
         yielding the empty turn back, so blue traffic keeps flowing."
    );
}
