//! The paper's Section 4 walkthrough, end to end:
//!
//! 1. assemble the initial single-lane-bridge design (Fig. 13) with
//!    asynchronous enter sends,
//! 2. verify — the crash property is violated; print the counterexample at
//!    the building-block level,
//! 3. swap the one offending building block (async -> sync send port) and
//!    re-verify — the property holds, with every component model reused,
//! 4. build the extended at-most-N design (Fig. 14) and verify it too.
//!
//! Run with: `cargo run --release --example single_lane_bridge`

use pnp::bridge::{at_most_n_bridge, exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp::kernel::{Checker, SafetyChecks, SafetyOutcome};

fn verify(label: &str, system: &pnp::core::System) -> SafetyOutcome {
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .expect("bridge model evaluates");
    println!(
        "{label}: {} ({} states explored in {:?})",
        if report.outcome.is_holds() {
            "SAFE"
        } else {
            "UNSAFE"
        },
        report.stats.unique_states,
        report.stats.elapsed
    );
    report.outcome
}

fn main() {
    println!("== Initial design: exactly-N per turn, AsynBlockingSend enter ports ==");
    let buggy = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    match verify("fig. 13 (initial)", &buggy) {
        SafetyOutcome::InvariantViolated { trace, .. } => {
            println!("\ncounterexample ({} steps):", trace.len());
            print!("{}", buggy.explain_trace(&trace));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    println!("\n== One-block fix: swap in SynBlockingSend enter ports ==");
    let fixed = exactly_n_bridge(&BridgeConfig::fixed()).unwrap();
    verify("fig. 13 (fixed)", &fixed);
    println!("(component models are unchanged — only two send ports swapped)");

    println!("\n== Extended design: at-most-N per turn (Fig. 14) ==");
    let improved = at_most_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    verify("fig. 14 (at-most-N)", &improved);
}
