//! Quickstart: compose a connector from building blocks, verify the system,
//! then swap one block and re-verify — the plug-and-play loop.
//!
//! Run with: `cargo run --release --example quickstart`

use pnp::core::{
    ChannelKind, ComponentBuilder, ReceiveBinds, RecvPortKind, SendPortKind, SystemBuilder,
};
use pnp::kernel::{expr, Checker, Predicate, SafetyChecks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare a connector: pick a channel kind, attach ports.
    let mut sys = SystemBuilder::new();
    let delivered = sys.global("delivered", 0);
    let wire = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
    let tx = sys.send_port(wire, SendPortKind::AsynBlocking);
    let rx = sys.recv_port(wire, RecvPortKind::blocking());

    // 2. Components use the standard interfaces and never change.
    let mut producer = ComponentBuilder::new("producer");
    let p0 = producer.location("send");
    let p1 = producer.location("done");
    producer.mark_end(p1);
    producer.send_msg(p0, p1, &tx, 42.into(), 0.into(), None);

    let mut consumer = ComponentBuilder::new("consumer");
    let got = consumer.local("got", 0);
    let c0 = consumer.location("recv");
    let c1 = consumer.location("publish");
    let c2 = consumer.location("done");
    consumer.mark_end(c2);
    consumer.recv_msg(c0, c1, &rx, None, ReceiveBinds::data_into(got));
    consumer.transition(
        c1,
        c2,
        pnp::kernel::Guard::always(),
        pnp::kernel::Action::assign(delivered, expr::local(got)),
        "publish",
    );

    sys.add_component(producer);
    sys.add_component(consumer);

    // 3. Verify the design.
    let system = sys.build()?;
    println!("composition: {}", sys.connector_summary(wire));
    let checker = Checker::new(system.program());
    let report = checker.check_safety(&SafetyChecks::invariants(vec![(
        "only 0 or 42 is ever delivered".into(),
        Predicate::from_expr(expr::or(
            expr::eq(expr::global(delivered), 0.into()),
            expr::eq(expr::global(delivered), 42.into()),
        )),
    )]))?;
    println!(
        "verdict: {:?} ({} states, {:?})",
        report.outcome.is_holds(),
        report.stats.unique_states,
        report.stats.elapsed
    );

    // 4. Swap one building block — synchronous semantics — and re-verify.
    //    No component changes.
    sys.set_send_port_kind(&tx, SendPortKind::SynBlocking);
    let system2 = sys.build()?;
    let report2 = Checker::new(system2.program()).check_safety(&SafetyChecks::deadlock_only())?;
    println!(
        "after swap to SynBlockingSend: deadlock-free = {} ({} states)",
        report2.outcome.is_holds(),
        report2.stats.unique_states
    );
    Ok(())
}
