//! # pnp — Plug-and-Play Architectural Design and Verification
//!
//! Facade crate re-exporting the PnP workspace:
//!
//! * [`kernel`] — explicit-state model-checking kernel and random simulator,
//! * [`ltl`] — LTL parsing and Büchi automaton translation,
//! * [`core`] — the plug-and-play connector building blocks, standard
//!   component interfaces, and system assembly API (the paper's primary
//!   contribution),
//! * [`lang`] — a textual architecture-description language compiled onto
//!   the core builder (the role Promela/ArchStudio play in the paper),
//! * [`bridge`] — the single-lane bridge case study from the paper.
//!
//! See the repository README for a tour and `EXPERIMENTS.md` for the mapping
//! from the paper's figures and claims to runnable artifacts.

pub use pnp_bridge as bridge;
pub use pnp_core as core;
pub use pnp_kernel as kernel;
pub use pnp_lang as lang;
pub use pnp_ltl as ltl;
