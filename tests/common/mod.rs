//! Shared builders for the integration test suite: small producer/consumer
//! systems wired through configurable connectors.
#![allow(dead_code)] // each integration test binary uses a subset

use pnp_core::{
    ChannelKind, ComponentBuilder, ReceiveBinds, RecvAttachment, RecvPortKind, SendAttachment,
    SendPortKind, System, SystemBuilder,
};
use pnp_kernel::{
    expr, Action, Checker, Expr, GlobalId, Guard, Predicate, SafetyChecks, SafetyReport,
};

/// Signal value a component sees in its bound status local on success.
pub const RECV_SUCC: i32 = pnp_core::signals::RECV_SUCC;

/// Builds a producer that sends each `(data, tag)` pair in order through
/// `port`, sets `all_sent` to 1, and terminates.
pub fn producer(
    name: &str,
    port: &SendAttachment,
    messages: &[(i32, i32)],
    all_sent: GlobalId,
) -> ComponentBuilder {
    let mut p = ComponentBuilder::new(name);
    let mut at = p.location("start");
    for (i, &(data, tag)) in messages.iter().enumerate() {
        let next = p.location(format!("sent{i}"));
        p.send_msg(at, next, port, data.into(), tag.into(), None);
        at = next;
    }
    let done = p.location("done");
    p.mark_end(done);
    p.transition(
        at,
        done,
        Guard::always(),
        Action::assign(all_sent, 1.into()),
        "mark all sent",
    );
    p
}

/// Builds a consumer that receives `got.len()` messages (retrying on
/// `RECV_FAIL`, so it works with blocking and non-blocking ports alike) and
/// records the i-th payload into `got[i]`. An optional `selective` tag
/// filters every receive; with `wait_for` the consumer first waits for that
/// global to become 1.
pub fn consumer(
    name: &str,
    port: &RecvAttachment,
    got: &[GlobalId],
    selective: Option<i32>,
    wait_for: Option<GlobalId>,
) -> ComponentBuilder {
    let mut c = ComponentBuilder::new(name);
    let status = c.local("status", 0);
    let data = c.local("data", 0);
    let mut at = c.location("start");
    if let Some(flag) = wait_for {
        let go = c.location("go");
        c.transition(
            at,
            go,
            Guard::when(expr::eq(expr::global(flag), 1.into())),
            Action::Skip,
            "wait for producer",
        );
        at = go;
    }
    for (i, &slot) in got.iter().enumerate() {
        let check = c.location(format!("check{i}"));
        c.recv_msg(
            at,
            check,
            port,
            selective.map(Into::into),
            ReceiveBinds::data_into(data).with_status(status),
        );
        let store = c.location(format!("store{i}"));
        c.transition(
            check,
            store,
            Guard::when(expr::eq(expr::local(status), RECV_SUCC.into())),
            Action::assign(slot, expr::local(data)),
            format!("record message {i}"),
        );
        // Retry on failure (non-blocking port with nothing available yet).
        c.transition(
            check,
            at,
            Guard::when(expr::ne(expr::local(status), RECV_SUCC.into())),
            Action::Skip,
            "retry receive",
        );
        at = store;
    }
    let done = c.location("done");
    c.mark_end(done);
    c.goto(at, done, "consumer done");
    c
}

/// A one-producer / one-consumer system through a single connector.
pub struct Wire {
    /// The assembled system.
    pub system: System,
    /// The `all_sent` marker global.
    pub all_sent: GlobalId,
    /// Ids of the `got*` globals (one per expected receive).
    pub got: Vec<GlobalId>,
}

/// Builds a system where a producer sends `messages` through the
/// `(send, channel, recv)` connector composition and a consumer receives
/// `recv_count` of them (optionally selectively; optionally only after all
/// sends completed).
pub fn wire_system(
    send: SendPortKind,
    channel: ChannelKind,
    recv: RecvPortKind,
    messages: &[(i32, i32)],
    recv_count: usize,
    selective: Option<i32>,
    wait_for_all_sent: bool,
) -> Wire {
    let mut sys = SystemBuilder::new();
    let all_sent = sys.global("all_sent", 0);
    let got: Vec<_> = (0..recv_count)
        .map(|i| sys.global(format!("got{i}"), 0))
        .collect();
    let conn = sys.connector("wire", channel);
    let tx = sys.send_port(conn, send);
    let rx = sys.recv_port(conn, recv);
    let p = producer("producer", &tx, messages, all_sent);
    let c = consumer(
        "consumer",
        &rx,
        &got,
        selective,
        wait_for_all_sent.then_some(all_sent),
    );
    sys.add_component(p);
    sys.add_component(c);
    Wire {
        system: sys.build().expect("wire system builds"),
        all_sent,
        got,
    }
}

/// Runs a safety check with the given invariants (deadlock detection off).
pub fn check_invariants(system: &System, invariants: Vec<(String, Predicate)>) -> SafetyReport {
    Checker::new(system.program())
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants,
        })
        .expect("model evaluates")
}

/// `true` when a state satisfying `condition` (over globals) is reachable.
pub fn reachable(system: &System, condition: Expr) -> bool {
    let report = check_invariants(
        system,
        vec![(
            "reachability probe".to_string(),
            Predicate::from_expr(expr::not(condition)),
        )],
    );
    !report.outcome.is_holds()
}

/// Asserts the invariant holds over the full state space.
pub fn assert_invariant(system: &System, name: &str, condition: Expr) {
    let report = check_invariants(
        system,
        vec![(name.to_string(), Predicate::from_expr(condition))],
    );
    assert!(
        report.outcome.is_holds(),
        "invariant '{name}' violated: {:?}",
        report.outcome
    );
    assert!(!report.truncated, "search truncated for '{name}'");
}

/// Runs a deadlock check and returns the report.
pub fn check_deadlock(system: &System) -> SafetyReport {
    Checker::new(system.program())
        .check_safety(&SafetyChecks::deadlock_only())
        .expect("model evaluates")
}
