//! Fault-injection blocks: lossy / duplicating / reordering channel
//! decorators and crash-restart ports.
//!
//! The example tests pin down each fault's observable behaviour; the
//! property tests check the robustness contract the fault library promises:
//! decorating a channel (or crashing a port) never introduces a deadlock a
//! fault-free composition lacks, because every fault is reported through
//! the same status signals the standard interfaces already accept.

mod common;

use common::{check_deadlock, reachable, wire_system};
use pnp_core::signals::{SEND_FAIL, SEND_SUCC};
use pnp_core::{
    ChannelFault, ChannelKind, ComponentBuilder, RecvMode, RecvPortKind, SendPortKind,
    SystemBuilder,
};
use pnp_kernel::{expr, Action, Guard};
use proptest::prelude::*;

/// A one-shot producer that records the send status into a global, plus a
/// one-message consumer recording the payload — the smallest system where
/// both sides' observations are visible to properties.
fn status_wire(
    send: SendPortKind,
    channel: ChannelKind,
    recv: RecvPortKind,
) -> (pnp_core::System, pnp_kernel::GlobalId, pnp_kernel::GlobalId) {
    let mut sys = SystemBuilder::new();
    let sent_status = sys.global("sent_status", 0);
    let got = sys.global("got", 0);
    let conn = sys.connector("wire", channel);
    let tx = sys.send_port(conn, send);
    let rx = sys.recv_port(conn, recv);

    let mut p = ComponentBuilder::new("producer");
    let status = p.local("status", 0);
    let s0 = p.location("send");
    let s1 = p.location("record");
    let s2 = p.location("done");
    p.mark_end(s2);
    p.send_msg(s0, s1, &tx, 7.into(), 0.into(), Some(status));
    p.transition(
        s1,
        s2,
        Guard::always(),
        Action::assign(sent_status, expr::local(status)),
        "record send status",
    );

    let c = common::consumer("consumer", &rx, &[got], None, None);
    sys.add_component(p);
    sys.add_component(c);
    (sys.build().expect("system builds"), sent_status, got)
}

/// A lossy channel may drop the message in transit; a checking send port
/// surfaces the loss as `SEND_FAIL`. On the fault-free channel the same
/// composition can never fail (one message into a capacity-2 buffer).
#[test]
fn lossy_channel_reports_loss_to_a_checking_sender() {
    let base = ChannelKind::Fifo { capacity: 2 };
    let (faulty, status, got) = status_wire(
        SendPortKind::AsynChecking,
        ChannelKind::lossy(base),
        RecvPortKind::blocking(),
    );
    assert!(reachable(
        &faulty,
        expr::eq(expr::global(status), SEND_FAIL.into())
    ));
    // The no-fault branch still exists: delivery remains possible.
    assert!(reachable(&faulty, expr::eq(expr::global(got), 7.into())));

    let (clean, status, _) =
        status_wire(SendPortKind::AsynChecking, base, RecvPortKind::blocking());
    assert!(!reachable(
        &clean,
        expr::eq(expr::global(status), SEND_FAIL.into())
    ));
}

/// Swapping the checking port for a *blocking* (retrying) one masks the
/// loss entirely: the component can never observe `SEND_FAIL`, on the very
/// same lossy channel, without any change to the component model.
#[test]
fn lossy_loss_is_masked_by_a_retrying_sender() {
    let (sys, status, _) = status_wire(
        SendPortKind::AsynBlocking,
        ChannelKind::lossy(ChannelKind::Fifo { capacity: 2 }),
        RecvPortKind::blocking(),
    );
    assert!(!reachable(
        &sys,
        expr::eq(expr::global(status), SEND_FAIL.into())
    ));
    assert!(reachable(
        &sys,
        expr::eq(expr::global(status), SEND_SUCC.into())
    ));
    assert!(check_deadlock(&sys).outcome.is_holds());
}

/// A duplicating channel can deliver one send twice — and never invents
/// payloads that were not sent.
#[test]
fn duplicating_channel_can_deliver_twice() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::duplicating(ChannelKind::Fifo { capacity: 2 }),
        RecvPortKind::blocking(),
        &[(7, 0)],
        2,
        None,
        false,
    );
    assert!(reachable(
        &wire.system,
        expr::and(
            expr::eq(expr::global(wire.got[0]), 7.into()),
            expr::eq(expr::global(wire.got[1]), 7.into()),
        ),
    ));
    for g in &wire.got {
        common::assert_invariant(
            &wire.system,
            "no phantom payloads",
            expr::or(
                expr::eq(expr::global(*g), 0.into()),
                expr::eq(expr::global(*g), 7.into()),
            ),
        );
    }
}

/// A reordering channel may deliver any buffered message, so the FIFO
/// order guarantee (`fifo_preserves_order` in connector_semantics.rs) is
/// lost: receiving 2-then-1 becomes reachable.
#[test]
fn reordering_channel_can_swap_delivery_order() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::reordering(ChannelKind::Fifo { capacity: 2 }),
        RecvPortKind::blocking(),
        &[(1, 0), (2, 0)],
        2,
        None,
        true, // consumer starts only after both sends are buffered
    );
    assert!(reachable(
        &wire.system,
        expr::and(
            expr::eq(expr::global(wire.got[0]), 2.into()),
            expr::eq(expr::global(wire.got[1]), 1.into()),
        ),
    ));
    // In-order delivery also stays possible.
    assert!(reachable(
        &wire.system,
        expr::and(
            expr::eq(expr::global(wire.got[0]), 1.into()),
            expr::eq(expr::global(wire.got[1]), 2.into()),
        ),
    ));
}

/// A crash-restart send port may lose the message, but always reports the
/// loss (`SEND_FAIL`) — the component is never wedged, and the no-crash
/// delivery path survives.
#[test]
fn crash_restart_send_loses_but_reports() {
    let (sys, status, got) = status_wire(
        SendPortKind::CrashRestart,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
    );
    assert!(reachable(
        &sys,
        expr::eq(expr::global(status), SEND_FAIL.into())
    ));
    assert!(reachable(&sys, expr::eq(expr::global(got), 7.into())));
    assert!(check_deadlock(&sys).outcome.is_holds());
}

/// A crash-restart receive port reports `RECV_FAIL` on crash; a retrying
/// component still gets the message eventually (the crash only loses the
/// *request*, never a buffered message).
#[test]
fn crash_restart_recv_reports_and_recovers() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::crash_restart(),
        &[(7, 0)],
        1,
        None,
        false,
    );
    assert!(reachable(
        &wire.system,
        expr::eq(expr::global(wire.got[0]), 7.into())
    ));
    assert!(check_deadlock(&wire.system).outcome.is_holds());
}

// ---------------------------------------------------------------------
// Robustness contract (property tests)
// ---------------------------------------------------------------------

fn arb_send() -> impl Strategy<Value = SendPortKind> {
    (0usize..SendPortKind::ALL.len()).prop_map(|i| SendPortKind::ALL[i])
}

fn arb_recv() -> impl Strategy<Value = RecvPortKind> {
    (0usize..RecvPortKind::ALL.len()).prop_map(|i| RecvPortKind::ALL[i])
}

fn arb_base() -> impl Strategy<Value = ChannelKind> {
    (0usize..5, 1usize..3).prop_map(|(i, cap)| match i {
        0 => ChannelKind::SingleSlot,
        1 => ChannelKind::Fifo { capacity: cap },
        2 => ChannelKind::Priority { capacity: cap },
        3 => ChannelKind::Dropping { capacity: cap },
        _ => ChannelKind::Sliding { capacity: cap },
    })
}

fn arb_fault() -> impl Strategy<Value = ChannelFault> {
    (0usize..ChannelFault::ALL.len()).prop_map(|i| ChannelFault::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decorating the channel with any fault never introduces a deadlock:
    /// every `ALL x ALL` fault-free composition is deadlock-free (pinned by
    /// tests/connector_matrix.rs), and the decorated one must stay so.
    #[test]
    fn fault_decorators_never_introduce_deadlocks(
        send in arb_send(),
        recv in arb_recv(),
        base in arb_base(),
        fault in arb_fault(),
    ) {
        let recv = if send.is_synchronous() && recv.mode == RecvMode::Copy {
            // Copy delivery never removes, so a synchronous sender would
            // wait forever on fault-free channels too; normalise to the
            // same remove-mode pairing the matrix test uses for delivery.
            recv.with_mode(RecvMode::Remove)
        } else {
            recv
        };
        let clean = wire_system(send, base, recv, &[(7, 0)], 1, None, false);
        prop_assert!(
            check_deadlock(&clean.system).outcome.is_holds(),
            "fault-free base {} deadlocks", base.name()
        );
        let decorated = wire_system(
            send,
            ChannelKind::with_fault(fault, base),
            recv,
            &[(7, 0)],
            1,
            None,
            false,
        );
        prop_assert!(
            check_deadlock(&decorated.system).outcome.is_holds(),
            "{} introduced a deadlock under {}Send/{}",
            ChannelKind::with_fault(fault, base).name(), send.name(), recv.name()
        );
    }

    /// Crash-restart ports always re-enable: the system never deadlocks,
    /// and delivery stays reachable (the no-crash branch always exists).
    #[test]
    fn crash_restart_ports_always_reenable(
        recv in arb_recv(),
        base in arb_base(),
        crash_send in (0usize..2).prop_map(|i| i == 1),
    ) {
        let send = if crash_send {
            SendPortKind::CrashRestart
        } else {
            SendPortKind::AsynBlocking
        };
        let recv = recv.with_crash_restart();
        let wire = wire_system(send, base, recv, &[(7, 0)], 1, None, false);
        prop_assert!(
            check_deadlock(&wire.system).outcome.is_holds(),
            "crash ports deadlocked under {}Send/{}/{}",
            send.name(), base.name(), recv.name()
        );
        prop_assert!(
            reachable(&wire.system, expr::eq(expr::global(wire.got[0]), 7.into())),
            "delivery unreachable under {}Send/{}/{}",
            send.name(), base.name(), recv.name()
        );
    }
}
