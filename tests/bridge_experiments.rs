//! E6–E9, E13 — the single-lane bridge case study end to end
//! (paper Section 4, Figs. 12–14).

use pnp_bridge::{
    at_most_n_bridge, crossings_in, exactly_n_bridge, safety_invariant, side_props, BridgeConfig,
};
use pnp_kernel::{Checker, Fairness, LtlOutcome, SafetyChecks, SafetyOutcome};

/// E6: verification of the initial Fig. 13 design (asynchronous enter
/// sends) reports the crash, with a shortest counterexample that the
/// topology explains at the building-block level.
#[test]
fn buggy_bridge_crash_is_found_and_explained() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    let SafetyOutcome::InvariantViolated { name, trace } = report.outcome else {
        panic!("expected the crash, got {:?}", report.outcome);
    };
    assert!(name.contains("opposite-direction"));

    // E13: the counterexample reads at the architecture level: cars, the
    // asynchronous send port that lets them through too early, and the
    // FIFO channel buffering the un-processed requests.
    let text = system.explain_trace(&trace);
    assert!(text.contains("component BlueCar0"), "{text}");
    assert!(text.contains("component RedCar0"), "{text}");
    assert!(text.contains("send port AsynBlockingSend"), "{text}");
    assert!(text.contains("channel FIFO(2)"), "{text}");
    assert!(text.contains("drive onto bridge"), "{text}");
    // Both cars drive on in the violating run.
    assert_eq!(text.matches("drive onto bridge").count(), 2, "{text}");
}

/// E7: swapping the single building block (async -> sync enter send) fixes
/// the design; the component processes are untouched.
#[test]
fn one_block_fix_verifies_with_identical_components() {
    let buggy = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let fixed = exactly_n_bridge(&BridgeConfig::fixed()).unwrap();

    // The fix holds.
    let program = fixed.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    assert!(!report.truncated);

    // Component models byte-identical (name, locations, transitions, and
    // transition labels all agree).
    let shape = |s: &pnp_core::System| -> Vec<String> {
        s.program()
            .processes()
            .iter()
            .zip(s.topology().iter())
            .filter(|(_, (_, role))| !role.is_connector_part())
            .map(|(p, _)| {
                format!(
                    "{}:{}:{}",
                    p.name(),
                    p.location_count(),
                    p.transition_count()
                )
            })
            .collect()
    };
    assert_eq!(shape(&buggy), shape(&fixed));

    // Only the car-side send ports changed role kinds.
    let port_kinds = |s: &pnp_core::System| -> Vec<String> {
        s.topology()
            .iter()
            .filter_map(|(_, role)| match role {
                pnp_core::Role::SendPort { kind, connector } => {
                    Some(format!("{connector}:{}", kind.name()))
                }
                _ => None,
            })
            .collect()
    };
    let before = port_kinds(&buggy);
    let after = port_kinds(&fixed);
    let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
    assert_eq!(changed, 2, "exactly the two enter send ports change");
}

/// E8: the at-most-N design (Fig. 14) with the extra controller-to-
/// controller connectors verifies safe.
#[test]
fn at_most_n_design_verifies() {
    let system = at_most_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    assert!(!report.truncated);
}

/// E9 (verification side): with an empty red side, the strict-turn design
/// genuinely starves — "a blue car keeps crossing" is violated on every
/// schedule, fair or not.
#[test]
fn exactly_n_starves_one_sided_traffic() {
    let cfg = BridgeConfig::fixed().with_cars(1, 0).with_laps(None);
    let system = exactly_n_bridge(&cfg).unwrap();
    let program = system.program();
    let props = side_props(program);
    let report = Checker::new(program)
        .check_ltl_with(
            &pnp_ltl::parse("[] <> blue_on").unwrap(),
            &props,
            Fairness::Weak,
        )
        .unwrap();
    match report.outcome {
        LtlOutcome::Violated { .. } => {}
        other => panic!("expected starvation, got {other:?}"),
    }
}

/// E9 (simulation side): throughput comparison quantifying the paper's
/// informal claim that the at-most-N design improves traffic flow.
#[test]
fn at_most_n_outperforms_exactly_n_with_asymmetric_traffic() {
    let cfg = BridgeConfig::fixed().with_cars(1, 0).with_laps(None);
    let strict = exactly_n_bridge(&cfg).unwrap();
    let flexible = at_most_n_bridge(&cfg).unwrap();
    let mut strict_total = 0;
    let mut flexible_total = 0;
    for seed in 0..3 {
        strict_total += crossings_in(strict.program(), 5000, seed).unwrap().0;
        flexible_total += crossings_in(flexible.program(), 5000, seed).unwrap().0;
    }
    // The strict design admits one batch then waits for red exits that
    // never come.
    assert!(strict_total <= 3, "strict: {strict_total}");
    assert!(
        flexible_total >= strict_total * 5,
        "flexible {flexible_total} vs strict {strict_total}"
    );
}
