//! E11/E12 — the Section 6 extensions: publish/subscribe connectors, and
//! fused (optimized) connectors with their state-space ablation.

mod common;

use common::{check_deadlock, consumer, reachable};
use pnp_core::{
    ChannelKind, ComponentBuilder, EventChannelSpec, FusedConnectorKind, RecvPortKind,
    SendPortKind, Subscription, SystemBuilder,
};
use pnp_kernel::{expr, Checker, Guard};

/// One publisher, two subscribers (one tag-filtered): every matching
/// subscriber sees the event; the filtered one never sees foreign tags.
#[test]
fn events_fan_out_to_matching_subscriptions() {
    let mut sys = SystemBuilder::new();
    let all_sent = sys.global("all_sent", 0);
    let got_all = sys.global("got0", 0);
    let got_filtered = sys.global("got1", 0);

    let news = sys.event_connector(
        "news",
        EventChannelSpec {
            per_subscription_capacity: 2,
        },
    );
    let pub_port = sys.publisher(news, SendPortKind::AsynBlocking);
    let sub_all = sys.subscriber(news, RecvPortKind::nonblocking(), Subscription::all());
    let sub_sports = sys.subscriber(news, RecvPortKind::nonblocking(), Subscription::to_tag(2));

    // Publish (data 10, tag 1) then (data 20, tag 2).
    let publisher = common::producer("publisher", &pub_port, &[(10, 1), (20, 2)], all_sent);
    // The unfiltered subscriber reads one event; the filtered one reads one
    // event (which can only be the tag-2 event).
    let s1 = consumer("sub_all", &sub_all, &[got_all], None, Some(all_sent));
    let s2 = consumer(
        "sub_sports",
        &sub_sports,
        &[got_filtered],
        None,
        Some(all_sent),
    );
    sys.add_component(publisher);
    sys.add_component(s1);
    sys.add_component(s2);
    let system = sys.build().unwrap();

    // The filtered subscriber can only ever observe the tag-2 payload.
    common::assert_invariant(
        &system,
        "filter admits only tag 2",
        expr::or(
            expr::eq(expr::global(got_filtered), 0.into()),
            expr::eq(expr::global(got_filtered), 20.into()),
        ),
    );
    // Both events reach the unfiltered subscriber's queue; its first read
    // is the earlier event (per-subscription FIFO).
    common::assert_invariant(
        &system,
        "unfiltered sees fifo head",
        expr::or(
            expr::eq(expr::global(got_all), 0.into()),
            expr::eq(expr::global(got_all), 10.into()),
        ),
    );
    assert!(reachable(
        &system,
        expr::eq(expr::global(got_filtered), 20.into())
    ));
    assert!(reachable(
        &system,
        expr::eq(expr::global(got_all), 10.into())
    ));
    assert!(check_deadlock(&system).outcome.is_holds());
}

/// A full subscription queue drops new events for that subscriber only;
/// other subscribers still receive them.
#[test]
fn slow_subscribers_lose_events_quietly() {
    let mut sys = SystemBuilder::new();
    let all_sent = sys.global("all_sent", 0);
    let got = sys.global("got0", 0);

    let news = sys.event_connector("news", EventChannelSpec::default()); // capacity 1
    let pub_port = sys.publisher(news, SendPortKind::AsynBlocking);
    let sub = sys.subscriber(news, RecvPortKind::nonblocking(), Subscription::all());

    // Two publishes before the subscriber wakes: the second is dropped.
    let publisher = common::producer("publisher", &pub_port, &[(1, 0), (2, 0)], all_sent);
    let s = consumer("sub", &sub, &[got], None, Some(all_sent));
    sys.add_component(publisher);
    sys.add_component(s);
    let system = sys.build().unwrap();

    common::assert_invariant(
        &system,
        "only the first event survives a full queue",
        expr::or(
            expr::eq(expr::global(got), 0.into()),
            expr::eq(expr::global(got), 1.into()),
        ),
    );
    // The publisher always completes: publishing is fire-and-forget.
    assert!(check_deadlock(&system).outcome.is_holds());
}

/// Builds equivalent composed and fused async-FIFO systems and checks they
/// agree observably while the fused one explores far fewer states (the
/// Section 6 optimization, quantified).
#[test]
fn fused_async_fifo_matches_composed_and_is_smaller() {
    let build = |fused: bool| -> (pnp_core::System, pnp_kernel::GlobalId) {
        let mut sys = SystemBuilder::new();
        let all_sent = sys.global("all_sent", 0);
        let got = sys.global("got0", 0);
        let (tx, rx) = if fused {
            sys.fused_connector("wire", FusedConnectorKind::AsyncFifo { capacity: 2 })
        } else {
            let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
            (
                sys.send_port(conn, SendPortKind::AsynBlocking),
                sys.recv_port(conn, RecvPortKind::blocking()),
            )
        };
        let p = common::producer("producer", &tx, &[(7, 0), (8, 0)], all_sent);
        let c = consumer("consumer", &rx, &[got], None, None);
        sys.add_component(p);
        sys.add_component(c);
        (sys.build().unwrap(), got)
    };

    let (composed, got_c) = build(false);
    let (fused, got_f) = build(true);

    // Same observable facts: first delivery is the first message.
    for (system, got) in [(&composed, got_c), (&fused, got_f)] {
        common::assert_invariant(
            system,
            "fifo head first",
            expr::or(
                expr::eq(expr::global(got), 0.into()),
                expr::eq(expr::global(got), 7.into()),
            ),
        );
        assert!(reachable(system, expr::eq(expr::global(got), 7.into())));
        assert!(check_deadlock(system).outcome.is_holds());
    }

    // Ablation: the fused model's reachable state space is substantially
    // smaller even after partial-order reduction.
    let size = |s: &pnp_core::System| {
        Checker::new(s.program())
            .state_space_size()
            .unwrap()
            .unique_states
    };
    let composed_states = size(&composed);
    let fused_states = size(&fused);
    assert!(
        fused_states * 2 < composed_states,
        "expected >=2x reduction: fused {fused_states} vs composed {composed_states}"
    );
}

/// The fused synchronous handshake releases the sender only after delivery,
/// matching the composed SynBlocking -> SingleSlot -> BlRecv stack.
#[test]
fn fused_sync_handshake_is_synchronous() {
    let mut sys = SystemBuilder::new();
    let all_sent = sys.global("all_sent", 0);
    let got = sys.global("got0", 0);
    let (tx, rx) = sys.fused_connector("wire", FusedConnectorKind::SyncHandshake);
    let p = common::producer("producer", &tx, &[(7, 0)], all_sent);
    let c = consumer("consumer", &rx, &[got], None, None);
    sys.add_component(p);
    sys.add_component(c);
    let system = sys.build().unwrap();

    // Synchrony: the producer is never done while the message is
    // undelivered. Delivery is the rendezvous that binds the consumer's
    // `data` local, so probe that local directly (the `got` global is one
    // internal bookkeeping step behind).
    let consumer_pid = system.program().process_by_name("consumer").unwrap();
    let report = common::check_invariants(
        &system,
        vec![(
            "confirmation implies delivery".into(),
            pnp_kernel::Predicate::native("sent implies consumer holds data", move |view| {
                view.global(all_sent) == 0 || view.local(consumer_pid, 1) == 7
            }),
        )],
    );
    assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    assert!(reachable(&system, expr::eq(expr::global(got), 7.into())));
    assert!(check_deadlock(&system).outcome.is_holds());
}

/// Fused connectors appear in trace explanations under their own role.
#[test]
fn fused_role_appears_in_topology() {
    let mut sys = SystemBuilder::new();
    let (tx, _rx) = sys.fused_connector("wire", FusedConnectorKind::SyncHandshake);
    let mut c = ComponentBuilder::new("lonely");
    let s0 = c.location("s0");
    let s1 = c.location("s1");
    c.mark_end(s1);
    c.send_msg(s0, s1, &tx, 1.into(), 0.into(), None);
    // Add a guard-free consumer to keep the build well-formed.
    let _ = Guard::always();
    sys.add_component(c);
    let system = sys.build().unwrap();
    let described: Vec<String> = system
        .topology()
        .iter()
        .map(|(_, role)| role.describe())
        .collect();
    assert!(
        described.iter().any(|d| d.contains("FusedSyncHandshake")),
        "{described:?}"
    );
}
