//! E1/E4 — pinning down the *distinct* semantics of each building block.
//!
//! These tests are the executable version of the paper's Fig. 1 table and
//! Fig. 4 message-sequence charts: every row asserts an observable
//! difference between two compositions that swap exactly one block.

mod common;

use common::{check_deadlock, check_invariants, reachable, wire_system};
use pnp_core::{
    ChannelKind, ComponentBuilder, ReceiveBinds, RecvMode, RecvPortKind, SendPortKind,
    SystemBuilder,
};
use pnp_kernel::{expr, Action, Checker, Guard, Predicate, SafetyChecks};

/// FIFO channels preserve send order: with both messages sent before any
/// receive, the first receive always yields the first message.
#[test]
fn fifo_preserves_order() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        &[(1, 0), (2, 0)],
        2,
        None,
        true, // consumer starts only after both sends
    );
    common::assert_invariant(
        &wire.system,
        "first out is first in",
        expr::or(
            expr::eq(expr::global(wire.got[0]), 0.into()),
            expr::eq(expr::global(wire.got[0]), 1.into()),
        ),
    );
    assert!(reachable(
        &wire.system,
        expr::and(
            expr::eq(expr::global(wire.got[0]), 1.into()),
            expr::eq(expr::global(wire.got[1]), 2.into()),
        ),
    ));
}

/// Priority channels deliver the highest tag first, regardless of send
/// order — the exact opposite of the FIFO observation above.
#[test]
fn priority_delivers_urgent_first() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Priority { capacity: 2 },
        RecvPortKind::blocking(),
        &[(1, 1), (2, 9)], // payload 2 has the higher priority tag
        2,
        None,
        true,
    );
    common::assert_invariant(
        &wire.system,
        "urgent first",
        expr::or(
            expr::eq(expr::global(wire.got[0]), 0.into()),
            expr::eq(expr::global(wire.got[0]), 2.into()),
        ),
    );
}

/// Dropping channels silently lose messages when full; FIFO channels of the
/// same capacity, fed by a checking port, report the overflow instead.
#[test]
fn dropping_loses_quietly_where_fifo_blocks() {
    // Capacity 1, two sends before any receive: the second message
    // overflows.
    let dropping = wire_system(
        SendPortKind::AsynNonblocking,
        ChannelKind::Dropping { capacity: 1 },
        RecvPortKind::blocking(),
        &[(1, 0), (2, 0)],
        1,
        None,
        true,
    );
    // The consumer's single receive always gets message 1; message 2 was
    // dropped without any notification.
    common::assert_invariant(
        &dropping.system,
        "survivor is the first message",
        expr::or(
            expr::eq(expr::global(dropping.got[0]), 0.into()),
            expr::eq(expr::global(dropping.got[0]), 1.into()),
        ),
    );
    // And the producer terminates believing both sends succeeded.
    assert!(reachable(
        &dropping.system,
        expr::eq(expr::global(dropping.all_sent), 1.into()),
    ));

    // Same scenario on a FIFO(1): the producer cannot complete both sends
    // until the consumer drains one — no loss, just blocking. all_sent and
    // an un-received second message never coexist at termination.
    let fifo = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 1 },
        RecvPortKind::blocking(),
        &[(1, 0), (2, 0)],
        2,
        None,
        false,
    );
    let report = check_deadlock(&fifo.system);
    assert!(report.outcome.is_holds());
    assert!(reachable(
        &fifo.system,
        expr::and(
            expr::eq(expr::global(fifo.got[0]), 1.into()),
            expr::eq(expr::global(fifo.got[1]), 2.into()),
        ),
    ));
}

/// Sliding channels are the dual of dropping ones: when full, the *oldest*
/// message is evicted, so the survivor is the newest.
#[test]
fn sliding_keeps_the_latest() {
    // AsynBlocking confirms only after storage, so both messages have
    // reached the channel (and the eviction has happened) before the
    // consumer wakes.
    let sliding = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Sliding { capacity: 1 },
        RecvPortKind::blocking(),
        &[(1, 0), (2, 0)],
        1,
        None,
        true,
    );
    common::assert_invariant(
        &sliding.system,
        "survivor is the newest message",
        expr::or(
            expr::eq(expr::global(sliding.got[0]), 0.into()),
            expr::eq(expr::global(sliding.got[0]), 2.into()),
        ),
    );
    assert!(reachable(
        &sliding.system,
        expr::eq(expr::global(sliding.got[0]), 2.into()),
    ));
}

/// Selective receive retrieves the first *matching* message, skipping a
/// non-matching head (the channel-level `??` semantics).
#[test]
fn selective_receive_matches_tags() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        &[(10, 1), (20, 2)],
        1,
        Some(2), // only accept tag 2
        true,
    );
    common::assert_invariant(
        &wire.system,
        "selective receive takes the tagged message",
        expr::or(
            expr::eq(expr::global(wire.got[0]), 0.into()),
            expr::eq(expr::global(wire.got[0]), 20.into()),
        ),
    );
    assert!(reachable(
        &wire.system,
        expr::eq(expr::global(wire.got[0]), 20.into()),
    ));
}

/// Copy-mode receive ports leave the message in the buffer: a second
/// receive observes the same payload. Remove-mode ports consume it.
#[test]
fn copy_receive_redelivers_and_remove_consumes() {
    let copy = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::SingleSlot,
        RecvPortKind::blocking().with_mode(RecvMode::Copy),
        &[(7, 0)],
        2, // receive the same message twice
        None,
        false,
    );
    assert!(reachable(
        &copy.system,
        expr::and(
            expr::eq(expr::global(copy.got[0]), 7.into()),
            expr::eq(expr::global(copy.got[1]), 7.into()),
        ),
    ));
    let deadlock = check_deadlock(&copy.system);
    assert!(deadlock.outcome.is_holds(), "{:?}", deadlock.outcome);

    // Remove mode: the second blocking receive waits forever (livelock at
    // the polling port). "both receives succeeded" is unreachable.
    let remove = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::SingleSlot,
        RecvPortKind::blocking(),
        &[(7, 0)],
        2,
        None,
        false,
    );
    assert!(!reachable(
        &remove.system,
        expr::and(
            expr::eq(expr::global(remove.got[0]), 7.into()),
            expr::eq(expr::global(remove.got[1]), 7.into()),
        ),
    ));
}

/// The paper's Fig. 4 message-sequence charts: an asynchronous send port
/// confirms while the message may still be buffered; a synchronous send
/// port confirms only after delivery. Observable as "producer done while
/// the channel still holds the message".
#[test]
fn async_confirms_before_delivery_sync_after() {
    for (kind, confirmable_while_buffered) in [
        (SendPortKind::AsynNonblocking, true),
        (SendPortKind::AsynBlocking, true),
        (SendPortKind::SynBlocking, false),
    ] {
        // The consumer waits for all_sent, so with an async port the
        // producer can finish while the message sits in the channel.
        let wire = wire_system(
            kind,
            ChannelKind::SingleSlot,
            RecvPortKind::blocking(),
            &[(7, 0)],
            1,
            None,
            true,
        );
        let all_sent = wire.all_sent;
        let report = check_invariants(
            &wire.system,
            vec![(
                "never confirmed-but-buffered".into(),
                Predicate::native("not (confirmed and buffered)", move |view| {
                    let buffered: i32 = (0..view.program().processes().len())
                        .filter_map(|pi| {
                            pnp_core::channel_occupancy(view, pnp_kernel::ProcId::from_index(pi))
                        })
                        .sum();
                    !(view.global(all_sent) == 1 && buffered > 0)
                }),
            )],
        );
        let observed = !report.outcome.is_holds();
        assert_eq!(
            observed,
            confirmable_while_buffered,
            "{}: confirmed-while-buffered should be {confirmable_while_buffered}",
            kind.name()
        );
    }
}

/// Checking send ports report a full buffer to the component (SEND_FAIL);
/// blocking send ports never do — they retry.
#[test]
fn checking_send_reports_full_buffer() {
    for (kind, can_fail) in [
        (SendPortKind::AsynChecking, true),
        (SendPortKind::SynChecking, true),
        (SendPortKind::AsynBlocking, false),
    ] {
        // Capacity-1 channel, two back-to-back sends, consumer held back:
        // the second send meets a full buffer.
        let mut sys = SystemBuilder::new();
        let saw_fail = sys.global("saw_fail", 0);
        let release = sys.global("release", 0);
        let conn = sys.connector("wire", ChannelKind::SingleSlot);
        // The first message goes through an asynchronous port so the buffer
        // fills without waiting for delivery; the port kind under test then
        // meets the full buffer.
        let filler = sys.send_port(conn, SendPortKind::AsynBlocking);
        let tx = sys.send_port(conn, kind);
        let rx = sys.recv_port(conn, RecvPortKind::blocking());

        let mut p = ComponentBuilder::new("producer");
        let status = p.local("status", 0);
        let s0 = p.location("first");
        let s1 = p.location("second");
        let s2 = p.location("check");
        let s3 = p.location("done");
        p.mark_end(s3);
        p.send_msg(s0, s1, &filler, 1.into(), 0.into(), None);
        p.send_msg(s1, s2, &tx, 2.into(), 0.into(), Some(status));
        p.transition(
            s2,
            s3,
            Guard::always(),
            Action::assign_all(vec![
                (
                    saw_fail.into(),
                    expr::eq(expr::local(status), pnp_core::signals::SEND_FAIL.into()),
                ),
                (release.into(), 1.into()),
            ]),
            "record status",
        );

        let mut c = ComponentBuilder::new("consumer");
        let cs = c.local("status", 0);
        let c0 = c.location("wait");
        let c1 = c.location("recv");
        let c2 = c.location("check");
        let c3 = c.location("done");
        c.mark_end(c3);
        c.transition(
            c0,
            c1,
            Guard::when(expr::eq(expr::global(release), 1.into())),
            Action::Skip,
            "released",
        );
        c.recv_msg(c1, c2, &rx, None, ReceiveBinds::ignore().with_status(cs));
        c.goto(c2, c3, "consumer done");

        sys.add_component(p);
        sys.add_component(c);
        let system = sys.build().unwrap();

        let fail_seen = reachable(&system, expr::eq(expr::global(saw_fail), 1.into()));
        assert_eq!(
            fail_seen,
            can_fail,
            "{}: SEND_FAIL reachability should be {can_fail}",
            kind.name()
        );
        // For the checking kinds the failure is *guaranteed* in this
        // scenario (consumer is held until the producer decided).
        if can_fail {
            let report = Checker::new(system.program())
                .check_safety(&SafetyChecks {
                    deadlock: false,
                    invariants: vec![(
                        "second send always fails here".into(),
                        Predicate::from_expr(expr::or(
                            expr::eq(expr::global(release), 0.into()),
                            expr::eq(expr::global(saw_fail), 1.into()),
                        )),
                    )],
                })
                .unwrap();
            assert!(report.outcome.is_holds(), "{:?}", report.outcome);
        }
    }
}
