//! Golden state-space sizes: exploration is deterministic, so these exact
//! counts pin down the semantics of the step engine, the block models, and
//! the partial-order reduction. A change to any of them shows up here
//! first — deliberate changes should update the numbers (and the matching
//! tables in EXPERIMENTS.md).

mod common;

use common::wire_system;
use pnp_bridge::{exactly_n_bridge, safety_invariant, side_props, BridgeConfig};
use pnp_core::{
    ChannelKind, EventChannelSpec, RecvPortKind, SendPortKind, Subscription, SystemBuilder,
};
use pnp_kernel::{
    expr, BudgetKind, Checker, Fairness, LtlOutcome, Predicate, Proposition, SafetyChecks,
    SafetyOutcome, SearchConfig,
};

#[test]
fn buggy_bridge_explores_exactly_the_recorded_states() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    assert_eq!(report.stats.unique_states, 1047);
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn pipe_state_counts_match_experiments_table() {
    // Deadlock check of the shared test harness's 2-message pipe, POR on.
    // (EXPERIMENTS.md's E2 table uses the slightly leaner bench-crate
    // consumer, hence different absolute values; the *ordering* — sync
    // ports prune roughly half the states — is the same.)
    let expectations = [
        (SendPortKind::AsynNonblocking, 226usize),
        (SendPortKind::AsynBlocking, 194),
        (SendPortKind::AsynChecking, 194),
        (SendPortKind::SynBlocking, 95),
        (SendPortKind::SynChecking, 95),
    ];
    for (send, expected) in expectations {
        let wire = wire_system(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        let report = Checker::new(wire.system.program())
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert_eq!(
            report.stats.unique_states,
            expected,
            "{} composition drifted",
            send.name()
        );
    }
}

#[test]
fn threads_one_is_behaviorally_identical_to_sequential() {
    // `--threads 1` must dispatch to the exact sequential kernel: the
    // golden counts above are reproduced bit for bit under an explicit
    // single-thread config.
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .unwrap();
    assert_eq!(report.stats.unique_states, 1047);
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn parallel_search_reproduces_golden_counts() {
    // The level-synchronised parallel kernel explores the same reduced
    // state graph as the sequential kernel, so exhaustive Holds runs must
    // reproduce the golden counts exactly at any worker count.
    let expectations = [
        (SendPortKind::AsynNonblocking, 226usize),
        (SendPortKind::AsynBlocking, 194),
        (SendPortKind::SynBlocking, 95),
    ];
    for (send, expected) in expectations {
        let wire = wire_system(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        let report = Checker::with_config(
            wire.system.program(),
            SearchConfig {
                threads: 4,
                ..SearchConfig::default()
            },
        )
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(
            report.stats.unique_states,
            expected,
            "{} parallel count drifted from sequential golden count",
            send.name()
        );
    }

    // Violations keep the BFS shortest-counterexample guarantee: the buggy
    // bridge trace has the same golden length under the parallel kernel.
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .unwrap();
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn budget_counting_point_is_identical_in_both_kernels() {
    // Regression for the budget counting point: `max_states` counts unique
    // *interned* states, charged strictly after the visited-set dedup, in
    // both kernels. The AsynBlocking wire explores exactly 194 states, so
    // a budget of 194 completes (Holds) and a budget of 193 trips with
    // `states_covered == 193` — sequential and parallel alike.
    let run = |threads: usize, max_states: usize| {
        let wire = wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        Checker::with_config(
            wire.system.program(),
            SearchConfig {
                threads,
                max_states,
                ..SearchConfig::default()
            },
        )
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap()
    };
    for threads in [1, 4] {
        let exact = run(threads, 194);
        assert_eq!(
            exact.outcome,
            SafetyOutcome::Holds,
            "threads={threads}: budget equal to the state space must complete"
        );
        assert_eq!(exact.stats.unique_states, 194);

        let tripped = run(threads, 193);
        match tripped.outcome {
            SafetyOutcome::LimitReached {
                budget: BudgetKind::States,
                states_covered,
                ..
            } => assert_eq!(
                states_covered, 193,
                "threads={threads}: counting point drifted"
            ),
            ref other => panic!("threads={threads}: expected LimitReached, got {other:?}"),
        }
    }
}

#[test]
fn bridge_ltl_product_counts_match_recorded_goldens() {
    // E9's starvation spec, pinned at the *product automaton* level: the
    // nested DFS over (system × Büchi × weak-fairness counter) is
    // deterministic, so `unique_states` (product nodes colored) and
    // `steps` (product edges generated) must reproduce exactly. A change
    // here means the explored liveness graph itself changed — Büchi
    // translation, product construction, or fairness counters.
    let cfg = BridgeConfig::fixed().with_cars(1, 0).with_laps(None);
    let system = exactly_n_bridge(&cfg).unwrap();
    let program = system.program();
    let props = side_props(program);
    let report = Checker::new(program)
        .check_ltl_with(
            &pnp_ltl::parse("[] <> blue_on").unwrap(),
            &props,
            Fairness::Weak,
        )
        .unwrap();
    assert!(
        matches!(report.outcome, LtlOutcome::Violated { .. }),
        "{:?}",
        report.outcome
    );
    assert_eq!(
        report.stats.unique_states, 103,
        "bridge LTL product drifted"
    );
    assert_eq!(report.stats.steps, 329, "bridge LTL product edges drifted");

    // A property that *holds* (the bridge safety invariant phrased as
    // `[] safe`) explores the complete product: a stronger pin, since no
    // early cycle exit truncates it. Checked without fairness, which also
    // pins the partial-order-reduced product construction.
    let cfg = BridgeConfig::fixed().with_laps(Some(1));
    let system = exactly_n_bridge(&cfg).unwrap();
    let program = system.program();
    let (_, safe) = safety_invariant(program);
    let props = vec![Proposition::new("safe", safe)];
    let report = Checker::new(program)
        .check_ltl_with(&pnp_ltl::parse("[] safe").unwrap(), &props, Fairness::None)
        .unwrap();
    assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    assert_eq!(
        report.stats.unique_states, 11432,
        "bridge holds-product drifted"
    );
    assert_eq!(
        report.stats.steps, 21567,
        "bridge holds-product edges drifted"
    );
}

#[test]
fn pubsub_ltl_product_counts_match_recorded_goldens() {
    // The Section 6 publish/subscribe connector under an LTL delivery
    // spec, pinned at the product-automaton level like the bridge above.
    let build = || {
        let mut sys = SystemBuilder::new();
        let all_sent = sys.global("all_sent", 0);
        let got_all = sys.global("got0", 0);
        let news = sys.event_connector(
            "news",
            EventChannelSpec {
                per_subscription_capacity: 2,
            },
        );
        let pub_port = sys.publisher(news, SendPortKind::AsynBlocking);
        let sub_all = sys.subscriber(news, RecvPortKind::blocking(), Subscription::all());
        let publisher = common::producer("publisher", &pub_port, &[(10, 1), (20, 2)], all_sent);
        let sub = common::consumer("sub_all", &sub_all, &[got_all], None, Some(all_sent));
        sys.add_component(publisher);
        sys.add_component(sub);
        sys.build().unwrap()
    };

    let system = build();
    let program = system.program();
    let got0 = program.global_by_name("got0").unwrap();
    let delivered = Proposition::new(
        "delivered",
        Predicate::from_expr(expr::gt(expr::global(got0), 0.into())),
    );
    let report = Checker::new(program)
        .check_ltl_with(
            &pnp_ltl::parse("<> delivered").unwrap(),
            std::slice::from_ref(&delivered),
            Fairness::Weak,
        )
        .unwrap();
    assert!(report.outcome.is_holds(), "{:?}", report.outcome);
    assert_eq!(report.stats.unique_states, 25, "pubsub LTL product drifted");
    assert_eq!(report.stats.steps, 49, "pubsub LTL product edges drifted");
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let count = || {
        let wire = wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::Priority { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 2), (2, 1)],
            2,
            None,
            false,
        );
        Checker::new(wire.system.program())
            .state_space_size()
            .unwrap()
            .unique_states
    };
    let first = count();
    for _ in 0..3 {
        assert_eq!(count(), first);
    }
}
