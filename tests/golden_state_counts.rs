//! Golden state-space sizes: exploration is deterministic, so these exact
//! counts pin down the semantics of the step engine, the block models, and
//! the partial-order reduction. A change to any of them shows up here
//! first — deliberate changes should update the numbers (and the matching
//! tables in EXPERIMENTS.md).

mod common;

use common::wire_system;
use pnp_bridge::{exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::{BudgetKind, Checker, SafetyChecks, SafetyOutcome, SearchConfig};

#[test]
fn buggy_bridge_explores_exactly_the_recorded_states() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    assert_eq!(report.stats.unique_states, 1047);
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn pipe_state_counts_match_experiments_table() {
    // Deadlock check of the shared test harness's 2-message pipe, POR on.
    // (EXPERIMENTS.md's E2 table uses the slightly leaner bench-crate
    // consumer, hence different absolute values; the *ordering* — sync
    // ports prune roughly half the states — is the same.)
    let expectations = [
        (SendPortKind::AsynNonblocking, 226usize),
        (SendPortKind::AsynBlocking, 194),
        (SendPortKind::AsynChecking, 194),
        (SendPortKind::SynBlocking, 95),
        (SendPortKind::SynChecking, 95),
    ];
    for (send, expected) in expectations {
        let wire = wire_system(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        let report = Checker::new(wire.system.program())
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert_eq!(
            report.stats.unique_states,
            expected,
            "{} composition drifted",
            send.name()
        );
    }
}

#[test]
fn threads_one_is_behaviorally_identical_to_sequential() {
    // `--threads 1` must dispatch to the exact sequential kernel: the
    // golden counts above are reproduced bit for bit under an explicit
    // single-thread config.
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .unwrap();
    assert_eq!(report.stats.unique_states, 1047);
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn parallel_search_reproduces_golden_counts() {
    // The level-synchronised parallel kernel explores the same reduced
    // state graph as the sequential kernel, so exhaustive Holds runs must
    // reproduce the golden counts exactly at any worker count.
    let expectations = [
        (SendPortKind::AsynNonblocking, 226usize),
        (SendPortKind::AsynBlocking, 194),
        (SendPortKind::SynBlocking, 95),
    ];
    for (send, expected) in expectations {
        let wire = wire_system(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        let report = Checker::with_config(
            wire.system.program(),
            SearchConfig {
                threads: 4,
                ..SearchConfig::default()
            },
        )
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap();
        assert_eq!(
            report.stats.unique_states,
            expected,
            "{} parallel count drifted from sequential golden count",
            send.name()
        );
    }

    // Violations keep the BFS shortest-counterexample guarantee: the buggy
    // bridge trace has the same golden length under the parallel kernel.
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .unwrap();
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn budget_counting_point_is_identical_in_both_kernels() {
    // Regression for the budget counting point: `max_states` counts unique
    // *interned* states, charged strictly after the visited-set dedup, in
    // both kernels. The AsynBlocking wire explores exactly 194 states, so
    // a budget of 194 completes (Holds) and a budget of 193 trips with
    // `states_covered == 193` — sequential and parallel alike.
    let run = |threads: usize, max_states: usize| {
        let wire = wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        Checker::with_config(
            wire.system.program(),
            SearchConfig {
                threads,
                max_states,
                ..SearchConfig::default()
            },
        )
        .check_safety(&SafetyChecks::deadlock_only())
        .unwrap()
    };
    for threads in [1, 4] {
        let exact = run(threads, 194);
        assert_eq!(
            exact.outcome,
            SafetyOutcome::Holds,
            "threads={threads}: budget equal to the state space must complete"
        );
        assert_eq!(exact.stats.unique_states, 194);

        let tripped = run(threads, 193);
        match tripped.outcome {
            SafetyOutcome::LimitReached {
                budget: BudgetKind::States,
                states_covered,
                ..
            } => assert_eq!(
                states_covered, 193,
                "threads={threads}: counting point drifted"
            ),
            ref other => panic!("threads={threads}: expected LimitReached, got {other:?}"),
        }
    }
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let count = || {
        let wire = wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::Priority { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 2), (2, 1)],
            2,
            None,
            false,
        );
        Checker::new(wire.system.program())
            .state_space_size()
            .unwrap()
            .unique_states
    };
    let first = count();
    for _ in 0..3 {
        assert_eq!(count(), first);
    }
}
