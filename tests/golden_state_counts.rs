//! Golden state-space sizes: exploration is deterministic, so these exact
//! counts pin down the semantics of the step engine, the block models, and
//! the partial-order reduction. A change to any of them shows up here
//! first — deliberate changes should update the numbers (and the matching
//! tables in EXPERIMENTS.md).

mod common;

use common::wire_system;
use pnp_bridge::{exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::{Checker, SafetyChecks};

#[test]
fn buggy_bridge_explores_exactly_the_recorded_states() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let report = Checker::new(program)
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .unwrap();
    assert_eq!(report.stats.unique_states, 1047);
    assert_eq!(report.outcome.trace().unwrap().len(), 14);
}

#[test]
fn pipe_state_counts_match_experiments_table() {
    // Deadlock check of the shared test harness's 2-message pipe, POR on.
    // (EXPERIMENTS.md's E2 table uses the slightly leaner bench-crate
    // consumer, hence different absolute values; the *ordering* — sync
    // ports prune roughly half the states — is the same.)
    let expectations = [
        (SendPortKind::AsynNonblocking, 226usize),
        (SendPortKind::AsynBlocking, 194),
        (SendPortKind::AsynChecking, 194),
        (SendPortKind::SynBlocking, 95),
        (SendPortKind::SynChecking, 95),
    ];
    for (send, expected) in expectations {
        let wire = wire_system(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 0), (2, 0)],
            2,
            None,
            false,
        );
        let report = Checker::new(wire.system.program())
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert_eq!(
            report.stats.unique_states,
            expected,
            "{} composition drifted",
            send.name()
        );
    }
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let count = || {
        let wire = wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::Priority { capacity: 2 },
            RecvPortKind::blocking(),
            &[(1, 2), (2, 1)],
            2,
            None,
            false,
        );
        Checker::new(wire.system.program())
            .state_space_size()
            .unwrap()
            .unique_states
    };
    let first = count();
    for _ in 0..3 {
        assert_eq!(count(), first);
    }
}
