//! The fire-alarm case study (see `examples/alarm_system.rs`): a dropping
//! buffer silently loses an alarm; a two-block swap repairs the design with
//! identical components.

use pnp_core::{
    ChannelKind, ComponentBuilder, ReceiveBinds, RecvPortKind, SendPortKind, System, SystemBuilder,
};
use pnp_kernel::{expr, Action, Checker, GlobalId, Guard, Predicate};

const RECV_SUCC: i32 = pnp_core::signals::RECV_SUCC;

fn build(channel: ChannelKind, send: SendPortKind) -> (System, GlobalId) {
    let mut sys = SystemBuilder::new();
    let sensor_done = sys.global("sensor_done", 0);
    let zone1 = sys.global("zone1_alarmed", 0);
    let zone2 = sys.global("zone2_alarmed", 0);

    let alarms = sys.connector("alarms", channel);
    let tx = sys.send_port(alarms, send);
    let rx = sys.recv_port(alarms, RecvPortKind::nonblocking());

    let mut sensor = ComponentBuilder::new("sensor");
    let s0 = sensor.location("zone1");
    let s1 = sensor.location("zone2");
    let s2 = sensor.location("mark");
    let s3 = sensor.location("done");
    sensor.mark_end(s3);
    sensor.send_msg(s0, s1, &tx, 1.into(), 0.into(), None);
    sensor.send_msg(s1, s2, &tx, 2.into(), 0.into(), None);
    sensor.transition(
        s2,
        s3,
        Guard::always(),
        Action::assign(sensor_done, 1.into()),
        "all zones reported",
    );

    let mut panel = ComponentBuilder::new("panel");
    let status = panel.local("status", 0);
    let zone = panel.local("zone", 0);
    let pre_done = panel.local("pre_done", 0);
    let p_poll = panel.location("poll");
    let p_polling = panel.location("polling");
    let p_check = panel.location("check");
    let p_sound = panel.location("sound");
    let p_done = panel.location("done");
    panel.mark_end(p_done);
    panel.transition(
        p_poll,
        p_polling,
        Guard::always(),
        Action::assign(pre_done, expr::global(sensor_done)),
        "snapshot sensor state",
    );
    panel.recv_msg(
        p_polling,
        p_check,
        &rx,
        None,
        ReceiveBinds::data_into(zone).with_status(status),
    );
    let got = Guard::when(expr::eq(expr::local(status), RECV_SUCC.into()));
    panel.transition(
        p_check,
        p_sound,
        got.clone().and_when(expr::eq(expr::local(zone), 1.into())),
        Action::assign(zone1, 1.into()),
        "sound zone 1",
    );
    panel.transition(
        p_check,
        p_sound,
        got.and_when(expr::eq(expr::local(zone), 2.into())),
        Action::assign(zone2, 1.into()),
        "sound zone 2",
    );
    panel.goto(p_sound, p_poll, "keep polling");
    panel.transition(
        p_check,
        p_done,
        Guard::when(expr::and(
            expr::ne(expr::local(status), RECV_SUCC.into()),
            expr::eq(expr::local(pre_done), 1.into()),
        )),
        Action::Skip,
        "all quiet",
    );
    panel.transition(
        p_check,
        p_poll,
        Guard::when(expr::and(
            expr::ne(expr::local(status), RECV_SUCC.into()),
            expr::ne(expr::local(pre_done), 1.into()),
        )),
        Action::Skip,
        "nothing yet",
    );

    sys.add_component(sensor);
    sys.add_component(panel);
    (sys.build().unwrap(), zone2)
}

fn lost_alarm(system: &System, zone2: GlobalId) -> bool {
    let panel = system.program().process_by_name("panel").unwrap();
    let lost = Predicate::native("panel done, zone 2 silent", move |view| {
        view.location_name(panel) == "done" && view.global(zone2) == 0
    });
    Checker::new(system.program())
        .find_reachable(&lost)
        .unwrap()
        .is_some()
}

#[test]
fn dropping_buffer_can_lose_an_alarm() {
    let (system, zone2) = build(
        ChannelKind::Dropping { capacity: 1 },
        SendPortKind::AsynNonblocking,
    );
    assert!(lost_alarm(&system, zone2));
}

#[test]
fn fifo_with_blocking_send_never_loses_alarms() {
    let (system, zone2) = build(
        ChannelKind::Fifo { capacity: 2 },
        SendPortKind::AsynBlocking,
    );
    assert!(!lost_alarm(&system, zone2));
}

/// Even a plain single-slot (non-dropping) buffer suffices once the send
/// port blocks for space: lossiness came from the *dropping* channel plus
/// the fire-and-forget port, not the capacity.
#[test]
fn single_slot_with_blocking_send_is_also_safe() {
    let (system, zone2) = build(ChannelKind::SingleSlot, SendPortKind::AsynBlocking);
    assert!(!lost_alarm(&system, zone2));
}

/// The components are structurally identical in every variant.
#[test]
fn alarm_components_are_design_independent() {
    let shapes: Vec<Vec<(String, usize)>> = [
        build(
            ChannelKind::Dropping { capacity: 1 },
            SendPortKind::AsynNonblocking,
        )
        .0,
        build(
            ChannelKind::Fifo { capacity: 2 },
            SendPortKind::AsynBlocking,
        )
        .0,
        build(ChannelKind::SingleSlot, SendPortKind::SynBlocking).0,
    ]
    .iter()
    .map(|system| {
        system
            .program()
            .processes()
            .iter()
            .filter(|p| p.name() == "sensor" || p.name() == "panel")
            .map(|p| (p.name().to_string(), p.transition_count()))
            .collect()
    })
    .collect();
    assert_eq!(shapes[0], shapes[1]);
    assert_eq!(shapes[1], shapes[2]);
}
