//! E1/E3 — the building-block library conformance matrix (paper Figs. 1–3).
//!
//! Every send-port kind x channel kind x receive-port kind composition is
//! assembled around the *same* producer and consumer components (the
//! standard component interfaces) and verified:
//!
//! * a sent message is always deliverable (reachability),
//! * the consumer never observes a value that was not sent (invariant),
//! * the composition is deadlock-free.
//!
//! Per-kind semantics (ordering, loss, priority, selectivity, copy
//! delivery) are pinned down in `connector_semantics.rs`.

mod common;

use common::{check_deadlock, reachable, wire_system};
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::expr;

fn all_channels() -> Vec<ChannelKind> {
    vec![
        ChannelKind::SingleSlot,
        ChannelKind::Fifo { capacity: 2 },
        ChannelKind::Priority { capacity: 2 },
        ChannelKind::Dropping { capacity: 2 },
        ChannelKind::Sliding { capacity: 2 },
    ]
}

/// The full 5 x 5 x 4 composition matrix, one message end to end.
#[test]
fn every_composition_delivers_and_is_deadlock_free() {
    for send in SendPortKind::ALL {
        for channel in all_channels() {
            for recv in RecvPortKind::ALL {
                let wire = wire_system(send, channel, recv, &[(7, 0)], 1, None, false);
                let label = format!("{} -> {} -> {}", send.name(), channel.name(), recv.name());

                // The payload is deliverable...
                assert!(
                    reachable(&wire.system, expr::eq(expr::global(wire.got[0]), 7.into())),
                    "{label}: message not deliverable"
                );
                // ...nothing else ever arrives...
                let ok = expr::or(
                    expr::eq(expr::global(wire.got[0]), 0.into()),
                    expr::eq(expr::global(wire.got[0]), 7.into()),
                );
                common::assert_invariant(&wire.system, &format!("{label}: no phantom"), ok);
                // ...and the composition cannot deadlock.
                let report = check_deadlock(&wire.system);
                assert!(
                    report.outcome.is_holds(),
                    "{label}: deadlock: {:?}",
                    report.outcome.trace().map(|t| wire.system.explain_trace(t))
                );
            }
        }
    }
}

/// The consumer component is byte-identical across the whole matrix: the
/// standard interfaces hide every connector difference (paper Fig. 3).
#[test]
fn components_are_identical_across_the_matrix() {
    let mut shapes = Vec::new();
    for send in SendPortKind::ALL {
        for recv in RecvPortKind::ALL {
            let wire = wire_system(
                send,
                ChannelKind::SingleSlot,
                recv,
                &[(7, 0)],
                1,
                None,
                false,
            );
            let shape: Vec<(String, usize, usize)> = wire
                .system
                .program()
                .processes()
                .iter()
                .filter(|p| p.name() == "producer" || p.name() == "consumer")
                .map(|p| {
                    (
                        p.name().to_string(),
                        p.location_count(),
                        p.transition_count(),
                    )
                })
                .collect();
            shapes.push(shape);
        }
    }
    for pair in shapes.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "component models differ across connectors"
        );
    }
}

/// Two messages through every non-dropping channel arrive exactly once
/// each, in some order, with no loss.
#[test]
fn two_messages_survive_non_dropping_channels() {
    for channel in [
        ChannelKind::Fifo { capacity: 2 },
        ChannelKind::Priority { capacity: 2 },
    ] {
        for send in [SendPortKind::AsynBlocking, SendPortKind::SynBlocking] {
            let wire = wire_system(
                send,
                channel,
                RecvPortKind::blocking(),
                &[(1, 0), (2, 0)],
                2,
                None,
                false,
            );
            let label = format!("{} -> {}", send.name(), channel.name());
            // Both end up delivered (in FIFO order for the FIFO channel,
            // checked separately); the multiset {1,2} is preserved.
            let both = expr::or(
                expr::and(
                    expr::eq(expr::global(wire.got[0]), 1.into()),
                    expr::eq(expr::global(wire.got[1]), 2.into()),
                ),
                expr::and(
                    expr::eq(expr::global(wire.got[0]), 2.into()),
                    expr::eq(expr::global(wire.got[1]), 1.into()),
                ),
            );
            assert!(
                reachable(&wire.system, both.clone()),
                "{label}: both messages never delivered"
            );
            // Termination implies both delivered: consumer done => both set.
            let deadlock = check_deadlock(&wire.system);
            assert!(
                deadlock.outcome.is_holds(),
                "{label}: {:?}",
                deadlock.outcome
            );
        }
    }
}
