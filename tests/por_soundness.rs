//! Partial-order reduction soundness: the reduced search must agree with
//! full exploration on every verdict, while exploring no more states.

mod common;

use common::wire_system;
use pnp_bridge::{exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::{expr, Checker, Predicate, SafetyChecks, SafetyOutcome, SearchConfig};

fn outcomes_match(a: &SafetyOutcome, b: &SafetyOutcome) -> bool {
    matches!(
        (a, b),
        (SafetyOutcome::Holds, SafetyOutcome::Holds)
            | (
                SafetyOutcome::InvariantViolated { .. },
                SafetyOutcome::InvariantViolated { .. }
            )
            | (
                SafetyOutcome::AssertionFailed { .. },
                SafetyOutcome::AssertionFailed { .. }
            )
            | (
                SafetyOutcome::Deadlock { .. },
                SafetyOutcome::Deadlock { .. }
            )
    )
}

fn check_both(
    program: &pnp_kernel::Program,
    checks: &SafetyChecks,
) -> (SafetyOutcome, usize, usize) {
    let full = Checker::with_config(
        program,
        SearchConfig {
            partial_order_reduction: false,
            ..SearchConfig::default()
        },
    )
    .check_safety(checks)
    .unwrap();
    let reduced = Checker::new(program).check_safety(checks).unwrap();
    assert!(
        outcomes_match(&full.outcome, &reduced.outcome),
        "verdicts diverge: full={:?} reduced={:?}",
        full.outcome,
        reduced.outcome
    );
    // State-count dominance only holds for complete (Holds) searches.
    if full.outcome.is_holds() {
        assert!(
            reduced.stats.unique_states <= full.stats.unique_states,
            "reduction explored more states"
        );
    }
    (
        reduced.outcome,
        full.stats.unique_states,
        reduced.stats.unique_states,
    )
}

#[test]
fn por_agrees_on_the_buggy_bridge() {
    let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    let program = system.program();
    let checks = SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    };
    let (outcome, _, _) = check_both(program, &checks);
    assert!(matches!(outcome, SafetyOutcome::InvariantViolated { .. }));
}

#[test]
fn por_agrees_on_the_fixed_bridge_and_shrinks_it() {
    let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    let program = system.program();
    let checks = SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    };
    let (outcome, full, reduced) = check_both(program, &checks);
    assert!(outcome.is_holds());
    assert!(
        reduced * 2 < full,
        "expected >=2x shrink, got full={full} reduced={reduced}"
    );
}

#[test]
fn por_agrees_across_connector_compositions() {
    for send in [
        SendPortKind::AsynNonblocking,
        SendPortKind::SynBlocking,
        SendPortKind::AsynChecking,
    ] {
        for channel in [
            ChannelKind::SingleSlot,
            ChannelKind::Dropping { capacity: 1 },
        ] {
            for recv in [RecvPortKind::blocking(), RecvPortKind::nonblocking()] {
                let wire = wire_system(send, channel, recv, &[(7, 0), (9, 0)], 2, None, false);
                let program = wire.system.program();
                // Deadlock + a payload invariant together.
                let checks = SafetyChecks {
                    deadlock: true,
                    invariants: vec![(
                        "payloads are 0, 7 or 9".into(),
                        Predicate::from_expr(expr::and(
                            expr::or(
                                expr::or(
                                    expr::eq(expr::global(wire.got[0]), 0.into()),
                                    expr::eq(expr::global(wire.got[0]), 7.into()),
                                ),
                                expr::eq(expr::global(wire.got[0]), 9.into()),
                            ),
                            expr::or(
                                expr::or(
                                    expr::eq(expr::global(wire.got[1]), 0.into()),
                                    expr::eq(expr::global(wire.got[1]), 7.into()),
                                ),
                                expr::eq(expr::global(wire.got[1]), 9.into()),
                            ),
                        )),
                    )],
                };
                check_both(program, &checks);
            }
        }
    }
}

/// Native predicates force the reduction off automatically (they may read
/// locals); the verdict still matches an explicitly-unreduced run.
#[test]
fn native_predicates_disable_reduction_soundly() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::SingleSlot,
        RecvPortKind::blocking(),
        &[(7, 0)],
        1,
        None,
        false,
    );
    let program = wire.system.program();
    let consumer = program.process_by_name("consumer").unwrap();
    let checks = SafetyChecks {
        deadlock: false,
        invariants: vec![(
            "consumer data local is 0 or 7".into(),
            Predicate::native("local probe", move |view| {
                let v = view.local(consumer, 1);
                v == 0 || v == 7
            }),
        )],
    };
    let auto = Checker::new(program).check_safety(&checks).unwrap();
    let manual = Checker::with_config(
        program,
        SearchConfig {
            partial_order_reduction: false,
            ..SearchConfig::default()
        },
    )
    .check_safety(&checks)
    .unwrap();
    assert!(auto.outcome.is_holds());
    // Identical state counts prove the automatic opt-out kicked in.
    assert_eq!(auto.stats.unique_states, manual.stats.unique_states);
}

/// LTL verdicts agree with and without reduction (fairness off, where the
/// reduction is permitted).
#[test]
fn por_agrees_on_ltl_without_fairness() {
    let wire = wire_system(
        SendPortKind::AsynBlocking,
        ChannelKind::SingleSlot,
        RecvPortKind::blocking(),
        &[(7, 0)],
        1,
        None,
        false,
    );
    let program = wire.system.program();
    let delivered = pnp_kernel::Proposition::new(
        "delivered",
        Predicate::from_expr(expr::eq(expr::global(wire.got[0]), 7.into())),
    );
    let formula = pnp_ltl::parse("[] ! delivered").unwrap(); // must be violated
    for por in [true, false] {
        let report = Checker::with_config(
            program,
            SearchConfig {
                partial_order_reduction: por,
                ..SearchConfig::default()
            },
        )
        .check_ltl_with(
            &formula,
            std::slice::from_ref(&delivered),
            pnp_kernel::Fairness::None,
        )
        .unwrap();
        assert!(
            !report.outcome.is_holds(),
            "por={por}: expected violation, got {:?}",
            report.outcome
        );
    }
}
