/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest/src/lib.rs /root/repo/crates/proptest/src/strategy.rs /root/repo/crates/proptest/src/test_runner.rs
