/root/repo/target/release/deps/proptest-588b91b1f645ac78.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-588b91b1f645ac78.rlib: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-588b91b1f645ac78.rmeta: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
