/root/repo/target/release/deps/pnp_ltl-d2c3fc682bb57ba7.d: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/release/deps/libpnp_ltl-d2c3fc682bb57ba7.rlib: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/release/deps/libpnp_ltl-d2c3fc682bb57ba7.rmeta: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

crates/ltl/src/lib.rs:
crates/ltl/src/ast.rs:
crates/ltl/src/buchi.rs:
crates/ltl/src/nnf.rs:
crates/ltl/src/parse.rs:
