/root/repo/target/release/deps/experiments-4a4c11afb74e957d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-4a4c11afb74e957d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
