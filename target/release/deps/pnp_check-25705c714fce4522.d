/root/repo/target/release/deps/pnp_check-25705c714fce4522.d: crates/lang/src/bin/pnp-check.rs

/root/repo/target/release/deps/pnp_check-25705c714fce4522: crates/lang/src/bin/pnp-check.rs

crates/lang/src/bin/pnp-check.rs:
