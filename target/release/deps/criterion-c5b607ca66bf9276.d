/root/repo/target/release/deps/criterion-c5b607ca66bf9276.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c5b607ca66bf9276.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c5b607ca66bf9276.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
