/root/repo/target/release/deps/pnp_core-fa595d25dabebff4.d: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs

/root/repo/target/release/deps/libpnp_core-fa595d25dabebff4.rlib: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs

/root/repo/target/release/deps/libpnp_core-fa595d25dabebff4.rmeta: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/channels.rs:
crates/core/src/component.rs:
crates/core/src/diagram.rs:
crates/core/src/explain.rs:
crates/core/src/fused.rs:
crates/core/src/library.rs:
crates/core/src/ports.rs:
crates/core/src/pubsub.rs:
crates/core/src/rpc.rs:
crates/core/src/signals.rs:
crates/core/src/system.rs:
