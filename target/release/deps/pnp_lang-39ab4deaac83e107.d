/root/repo/target/release/deps/pnp_lang-39ab4deaac83e107.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

/root/repo/target/release/deps/libpnp_lang-39ab4deaac83e107.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

/root/repo/target/release/deps/libpnp_lang-39ab4deaac83e107.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
