/root/repo/target/release/deps/pnp_kernel-c4dd6f7e2ef8400a.d: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/libpnp_kernel-c4dd6f7e2ef8400a.rlib: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/libpnp_kernel-c4dd6f7e2ef8400a.rmeta: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/dot.rs:
crates/kernel/src/explore.rs:
crates/kernel/src/expression.rs:
crates/kernel/src/liveness.rs:
crates/kernel/src/program.rs:
crates/kernel/src/reduction.rs:
crates/kernel/src/sim.rs:
crates/kernel/src/state.rs:
crates/kernel/src/trace.rs:
