/root/repo/target/release/deps/pnp_bench-7523c8d40c6167ab.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpnp_bench-7523c8d40c6167ab.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpnp_bench-7523c8d40c6167ab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
