/root/repo/target/release/deps/pnp-af5324932077041d.d: src/lib.rs

/root/repo/target/release/deps/libpnp-af5324932077041d.rlib: src/lib.rs

/root/repo/target/release/deps/libpnp-af5324932077041d.rmeta: src/lib.rs

src/lib.rs:
