/root/repo/target/release/deps/pnp_bridge-5696fc860214a66b.d: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

/root/repo/target/release/deps/libpnp_bridge-5696fc860214a66b.rlib: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

/root/repo/target/release/deps/libpnp_bridge-5696fc860214a66b.rmeta: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

crates/bridge/src/lib.rs:
crates/bridge/src/cars.rs:
crates/bridge/src/controllers.rs:
crates/bridge/src/designs.rs:
crates/bridge/src/props.rs:
