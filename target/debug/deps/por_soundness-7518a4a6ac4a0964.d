/root/repo/target/debug/deps/por_soundness-7518a4a6ac4a0964.d: tests/por_soundness.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpor_soundness-7518a4a6ac4a0964.rmeta: tests/por_soundness.rs tests/common/mod.rs Cargo.toml

tests/por_soundness.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
