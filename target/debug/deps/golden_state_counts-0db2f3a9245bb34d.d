/root/repo/target/debug/deps/golden_state_counts-0db2f3a9245bb34d.d: tests/golden_state_counts.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_state_counts-0db2f3a9245bb34d.rmeta: tests/golden_state_counts.rs tests/common/mod.rs Cargo.toml

tests/golden_state_counts.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
