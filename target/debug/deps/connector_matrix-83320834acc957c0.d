/root/repo/target/debug/deps/connector_matrix-83320834acc957c0.d: tests/connector_matrix.rs tests/common/mod.rs

/root/repo/target/debug/deps/connector_matrix-83320834acc957c0: tests/connector_matrix.rs tests/common/mod.rs

tests/connector_matrix.rs:
tests/common/mod.rs:
