/root/repo/target/debug/deps/alarm_system-53bc37d6803e3c28.d: tests/alarm_system.rs

/root/repo/target/debug/deps/alarm_system-53bc37d6803e3c28: tests/alarm_system.rs

tests/alarm_system.rs:
