/root/repo/target/debug/deps/experiments-ce7f60162d2c1069.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-ce7f60162d2c1069.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
