/root/repo/target/debug/deps/pnp_bench-d38ac4cd016a01cc.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_bench-d38ac4cd016a01cc.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
