/root/repo/target/debug/deps/verification-19254ca5d009d19f.d: crates/bench/benches/verification.rs Cargo.toml

/root/repo/target/debug/deps/libverification-19254ca5d009d19f.rmeta: crates/bench/benches/verification.rs Cargo.toml

crates/bench/benches/verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
