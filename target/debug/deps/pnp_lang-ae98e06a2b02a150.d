/root/repo/target/debug/deps/pnp_lang-ae98e06a2b02a150.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

/root/repo/target/debug/deps/libpnp_lang-ae98e06a2b02a150.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
