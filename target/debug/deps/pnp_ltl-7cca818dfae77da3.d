/root/repo/target/debug/deps/pnp_ltl-7cca818dfae77da3.d: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_ltl-7cca818dfae77da3.rmeta: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs Cargo.toml

crates/ltl/src/lib.rs:
crates/ltl/src/ast.rs:
crates/ltl/src/buchi.rs:
crates/ltl/src/nnf.rs:
crates/ltl/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
