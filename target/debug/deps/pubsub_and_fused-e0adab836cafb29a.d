/root/repo/target/debug/deps/pubsub_and_fused-e0adab836cafb29a.d: tests/pubsub_and_fused.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpubsub_and_fused-e0adab836cafb29a.rmeta: tests/pubsub_and_fused.rs tests/common/mod.rs Cargo.toml

tests/pubsub_and_fused.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
