/root/repo/target/debug/deps/pnp_kernel-0940446e3cbeaade.d: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/libpnp_kernel-0940446e3cbeaade.rlib: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/libpnp_kernel-0940446e3cbeaade.rmeta: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/dot.rs:
crates/kernel/src/explore.rs:
crates/kernel/src/expression.rs:
crates/kernel/src/liveness.rs:
crates/kernel/src/program.rs:
crates/kernel/src/reduction.rs:
crates/kernel/src/sim.rs:
crates/kernel/src/state.rs:
crates/kernel/src/trace.rs:
