/root/repo/target/debug/deps/pnp_bridge-8abb6e9b1dbf9ec4.d: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_bridge-8abb6e9b1dbf9ec4.rmeta: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs Cargo.toml

crates/bridge/src/lib.rs:
crates/bridge/src/cars.rs:
crates/bridge/src/controllers.rs:
crates/bridge/src/designs.rs:
crates/bridge/src/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
