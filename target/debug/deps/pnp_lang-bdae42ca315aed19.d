/root/repo/target/debug/deps/pnp_lang-bdae42ca315aed19.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

/root/repo/target/debug/deps/libpnp_lang-bdae42ca315aed19.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

/root/repo/target/debug/deps/libpnp_lang-bdae42ca315aed19.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
