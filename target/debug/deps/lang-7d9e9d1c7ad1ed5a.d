/root/repo/target/debug/deps/lang-7d9e9d1c7ad1ed5a.d: crates/bench/benches/lang.rs crates/bench/benches/../../../examples/specs/wire.pnp crates/bench/benches/../../../examples/specs/bridge_buggy.pnp Cargo.toml

/root/repo/target/debug/deps/liblang-7d9e9d1c7ad1ed5a.rmeta: crates/bench/benches/lang.rs crates/bench/benches/../../../examples/specs/wire.pnp crates/bench/benches/../../../examples/specs/bridge_buggy.pnp Cargo.toml

crates/bench/benches/lang.rs:
crates/bench/benches/../../../examples/specs/wire.pnp:
crates/bench/benches/../../../examples/specs/bridge_buggy.pnp:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
