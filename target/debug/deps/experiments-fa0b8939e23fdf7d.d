/root/repo/target/debug/deps/experiments-fa0b8939e23fdf7d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-fa0b8939e23fdf7d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
