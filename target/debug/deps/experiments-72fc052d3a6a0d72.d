/root/repo/target/debug/deps/experiments-72fc052d3a6a0d72.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-72fc052d3a6a0d72.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
