/root/repo/target/debug/deps/spec_files-d949a9e779e3ab07.d: crates/lang/tests/spec_files.rs crates/lang/tests/../../../examples/specs/wire.pnp crates/lang/tests/../../../examples/specs/bridge_buggy.pnp crates/lang/tests/../../../examples/specs/bridge_fixed.pnp crates/lang/tests/../../../examples/specs/priority_mail.pnp crates/lang/tests/../../../examples/specs/newswire.pnp Cargo.toml

/root/repo/target/debug/deps/libspec_files-d949a9e779e3ab07.rmeta: crates/lang/tests/spec_files.rs crates/lang/tests/../../../examples/specs/wire.pnp crates/lang/tests/../../../examples/specs/bridge_buggy.pnp crates/lang/tests/../../../examples/specs/bridge_fixed.pnp crates/lang/tests/../../../examples/specs/priority_mail.pnp crates/lang/tests/../../../examples/specs/newswire.pnp Cargo.toml

crates/lang/tests/spec_files.rs:
crates/lang/tests/../../../examples/specs/wire.pnp:
crates/lang/tests/../../../examples/specs/bridge_buggy.pnp:
crates/lang/tests/../../../examples/specs/bridge_fixed.pnp:
crates/lang/tests/../../../examples/specs/priority_mail.pnp:
crates/lang/tests/../../../examples/specs/newswire.pnp:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
