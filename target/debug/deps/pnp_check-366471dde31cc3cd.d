/root/repo/target/debug/deps/pnp_check-366471dde31cc3cd.d: crates/lang/src/bin/pnp-check.rs

/root/repo/target/debug/deps/pnp_check-366471dde31cc3cd: crates/lang/src/bin/pnp-check.rs

crates/lang/src/bin/pnp-check.rs:
