/root/repo/target/debug/deps/pubsub_and_fused-a623680a075cc7b3.d: tests/pubsub_and_fused.rs tests/common/mod.rs

/root/repo/target/debug/deps/pubsub_and_fused-a623680a075cc7b3: tests/pubsub_and_fused.rs tests/common/mod.rs

tests/pubsub_and_fused.rs:
tests/common/mod.rs:
