/root/repo/target/debug/deps/pnp_bench-5a746e7fdd4e15ed.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpnp_bench-5a746e7fdd4e15ed.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpnp_bench-5a746e7fdd4e15ed.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
