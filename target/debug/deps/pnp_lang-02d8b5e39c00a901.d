/root/repo/target/debug/deps/pnp_lang-02d8b5e39c00a901.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs crates/lang/src/../../../examples/specs/wire.pnp crates/lang/src/../../../examples/specs/wire_lossy.pnp crates/lang/src/../../../examples/specs/bridge_buggy.pnp crates/lang/src/../../../examples/specs/priority_mail.pnp crates/lang/src/../../../examples/specs/newswire.pnp Cargo.toml

/root/repo/target/debug/deps/libpnp_lang-02d8b5e39c00a901.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs crates/lang/src/../../../examples/specs/wire.pnp crates/lang/src/../../../examples/specs/wire_lossy.pnp crates/lang/src/../../../examples/specs/bridge_buggy.pnp crates/lang/src/../../../examples/specs/priority_mail.pnp crates/lang/src/../../../examples/specs/newswire.pnp Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
crates/lang/src/../../../examples/specs/wire.pnp:
crates/lang/src/../../../examples/specs/wire_lossy.pnp:
crates/lang/src/../../../examples/specs/bridge_buggy.pnp:
crates/lang/src/../../../examples/specs/priority_mail.pnp:
crates/lang/src/../../../examples/specs/newswire.pnp:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
