/root/repo/target/debug/deps/fault_injection-9acb3edfb1006619.d: tests/fault_injection.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-9acb3edfb1006619.rmeta: tests/fault_injection.rs tests/common/mod.rs Cargo.toml

tests/fault_injection.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
