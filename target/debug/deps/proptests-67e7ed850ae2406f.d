/root/repo/target/debug/deps/proptests-67e7ed850ae2406f.d: crates/kernel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-67e7ed850ae2406f: crates/kernel/tests/proptests.rs

crates/kernel/tests/proptests.rs:
