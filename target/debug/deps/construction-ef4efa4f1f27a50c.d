/root/repo/target/debug/deps/construction-ef4efa4f1f27a50c.d: crates/bench/benches/construction.rs Cargo.toml

/root/repo/target/debug/deps/libconstruction-ef4efa4f1f27a50c.rmeta: crates/bench/benches/construction.rs Cargo.toml

crates/bench/benches/construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
