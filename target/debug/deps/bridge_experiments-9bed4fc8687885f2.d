/root/repo/target/debug/deps/bridge_experiments-9bed4fc8687885f2.d: tests/bridge_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libbridge_experiments-9bed4fc8687885f2.rmeta: tests/bridge_experiments.rs Cargo.toml

tests/bridge_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
