/root/repo/target/debug/deps/pnp_bench-b07f7554ee604349.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pnp_bench-b07f7554ee604349: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
