/root/repo/target/debug/deps/pnp_ltl-19bc8ee8badd9637.d: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/debug/deps/pnp_ltl-19bc8ee8badd9637: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

crates/ltl/src/lib.rs:
crates/ltl/src/ast.rs:
crates/ltl/src/buchi.rs:
crates/ltl/src/nnf.rs:
crates/ltl/src/parse.rs:
