/root/repo/target/debug/deps/pnp_core-285f02c8bc132dee.d: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs

/root/repo/target/debug/deps/pnp_core-285f02c8bc132dee: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/channels.rs:
crates/core/src/component.rs:
crates/core/src/diagram.rs:
crates/core/src/explain.rs:
crates/core/src/fused.rs:
crates/core/src/library.rs:
crates/core/src/ports.rs:
crates/core/src/pubsub.rs:
crates/core/src/rpc.rs:
crates/core/src/signals.rs:
crates/core/src/system.rs:
