/root/repo/target/debug/deps/por_soundness-35ccb7cdb5eda22c.d: tests/por_soundness.rs tests/common/mod.rs

/root/repo/target/debug/deps/por_soundness-35ccb7cdb5eda22c: tests/por_soundness.rs tests/common/mod.rs

tests/por_soundness.rs:
tests/common/mod.rs:
