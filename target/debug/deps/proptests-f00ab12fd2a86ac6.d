/root/repo/target/debug/deps/proptests-f00ab12fd2a86ac6.d: crates/ltl/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f00ab12fd2a86ac6: crates/ltl/tests/proptests.rs

crates/ltl/tests/proptests.rs:
