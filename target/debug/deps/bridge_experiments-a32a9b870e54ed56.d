/root/repo/target/debug/deps/bridge_experiments-a32a9b870e54ed56.d: tests/bridge_experiments.rs

/root/repo/target/debug/deps/bridge_experiments-a32a9b870e54ed56: tests/bridge_experiments.rs

tests/bridge_experiments.rs:
