/root/repo/target/debug/deps/pnp-47ea9f681dba6bdc.d: src/lib.rs

/root/repo/target/debug/deps/pnp-47ea9f681dba6bdc: src/lib.rs

src/lib.rs:
