/root/repo/target/debug/deps/ltl-860f18c6e84c8ac6.d: crates/bench/benches/ltl.rs Cargo.toml

/root/repo/target/debug/deps/libltl-860f18c6e84c8ac6.rmeta: crates/bench/benches/ltl.rs Cargo.toml

crates/bench/benches/ltl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
