/root/repo/target/debug/deps/criterion-21d7bd65bc979066.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-21d7bd65bc979066.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-21d7bd65bc979066.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
