/root/repo/target/debug/deps/lossy_bridge-a244aecf76c2e272.d: crates/bridge/tests/lossy_bridge.rs Cargo.toml

/root/repo/target/debug/deps/liblossy_bridge-a244aecf76c2e272.rmeta: crates/bridge/tests/lossy_bridge.rs Cargo.toml

crates/bridge/tests/lossy_bridge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
