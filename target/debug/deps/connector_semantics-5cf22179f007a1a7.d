/root/repo/target/debug/deps/connector_semantics-5cf22179f007a1a7.d: tests/connector_semantics.rs tests/common/mod.rs

/root/repo/target/debug/deps/connector_semantics-5cf22179f007a1a7: tests/connector_semantics.rs tests/common/mod.rs

tests/connector_semantics.rs:
tests/common/mod.rs:
