/root/repo/target/debug/deps/pnp_lang-ee5dde7fbc34fb2c.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs crates/lang/src/../../../examples/specs/wire.pnp crates/lang/src/../../../examples/specs/wire_lossy.pnp crates/lang/src/../../../examples/specs/bridge_buggy.pnp crates/lang/src/../../../examples/specs/priority_mail.pnp crates/lang/src/../../../examples/specs/newswire.pnp

/root/repo/target/debug/deps/pnp_lang-ee5dde7fbc34fb2c: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs crates/lang/src/../../../examples/specs/wire.pnp crates/lang/src/../../../examples/specs/wire_lossy.pnp crates/lang/src/../../../examples/specs/bridge_buggy.pnp crates/lang/src/../../../examples/specs/priority_mail.pnp crates/lang/src/../../../examples/specs/newswire.pnp

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
crates/lang/src/../../../examples/specs/wire.pnp:
crates/lang/src/../../../examples/specs/wire_lossy.pnp:
crates/lang/src/../../../examples/specs/bridge_buggy.pnp:
crates/lang/src/../../../examples/specs/priority_mail.pnp:
crates/lang/src/../../../examples/specs/newswire.pnp:
