/root/repo/target/debug/deps/pnp_bench-c3702f60b0046c91.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_bench-c3702f60b0046c91.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
