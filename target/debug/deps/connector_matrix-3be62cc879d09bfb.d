/root/repo/target/debug/deps/connector_matrix-3be62cc879d09bfb.d: tests/connector_matrix.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libconnector_matrix-3be62cc879d09bfb.rmeta: tests/connector_matrix.rs tests/common/mod.rs Cargo.toml

tests/connector_matrix.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
