/root/repo/target/debug/deps/pnp_ltl-fbf0c8f633185202.d: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/debug/deps/libpnp_ltl-fbf0c8f633185202.rmeta: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

crates/ltl/src/lib.rs:
crates/ltl/src/ast.rs:
crates/ltl/src/buchi.rs:
crates/ltl/src/nnf.rs:
crates/ltl/src/parse.rs:
