/root/repo/target/debug/deps/proptests-98ae2f507174c6dd.d: crates/kernel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-98ae2f507174c6dd.rmeta: crates/kernel/tests/proptests.rs Cargo.toml

crates/kernel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
