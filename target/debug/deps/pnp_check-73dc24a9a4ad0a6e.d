/root/repo/target/debug/deps/pnp_check-73dc24a9a4ad0a6e.d: crates/lang/src/bin/pnp-check.rs

/root/repo/target/debug/deps/pnp_check-73dc24a9a4ad0a6e: crates/lang/src/bin/pnp-check.rs

crates/lang/src/bin/pnp-check.rs:
