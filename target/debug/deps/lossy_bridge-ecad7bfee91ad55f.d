/root/repo/target/debug/deps/lossy_bridge-ecad7bfee91ad55f.d: crates/bridge/tests/lossy_bridge.rs

/root/repo/target/debug/deps/lossy_bridge-ecad7bfee91ad55f: crates/bridge/tests/lossy_bridge.rs

crates/bridge/tests/lossy_bridge.rs:
