/root/repo/target/debug/deps/connector_semantics-fa49735f09cd20a3.d: tests/connector_semantics.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libconnector_semantics-fa49735f09cd20a3.rmeta: tests/connector_semantics.rs tests/common/mod.rs Cargo.toml

tests/connector_semantics.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
