/root/repo/target/debug/deps/pnp_ltl-cd26c4438541a00d.d: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/debug/deps/libpnp_ltl-cd26c4438541a00d.rlib: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

/root/repo/target/debug/deps/libpnp_ltl-cd26c4438541a00d.rmeta: crates/ltl/src/lib.rs crates/ltl/src/ast.rs crates/ltl/src/buchi.rs crates/ltl/src/nnf.rs crates/ltl/src/parse.rs

crates/ltl/src/lib.rs:
crates/ltl/src/ast.rs:
crates/ltl/src/buchi.rs:
crates/ltl/src/nnf.rs:
crates/ltl/src/parse.rs:
