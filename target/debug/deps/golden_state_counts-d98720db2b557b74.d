/root/repo/target/debug/deps/golden_state_counts-d98720db2b557b74.d: tests/golden_state_counts.rs tests/common/mod.rs

/root/repo/target/debug/deps/golden_state_counts-d98720db2b557b74: tests/golden_state_counts.rs tests/common/mod.rs

tests/golden_state_counts.rs:
tests/common/mod.rs:
