/root/repo/target/debug/deps/pnp-455600c5b76e1204.d: src/lib.rs

/root/repo/target/debug/deps/libpnp-455600c5b76e1204.rlib: src/lib.rs

/root/repo/target/debug/deps/libpnp-455600c5b76e1204.rmeta: src/lib.rs

src/lib.rs:
