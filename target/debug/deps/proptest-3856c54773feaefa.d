/root/repo/target/debug/deps/proptest-3856c54773feaefa.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-3856c54773feaefa: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
