/root/repo/target/debug/deps/proptests-c3ff4eb96d57928b.d: crates/lang/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c3ff4eb96d57928b: crates/lang/tests/proptests.rs

crates/lang/tests/proptests.rs:
