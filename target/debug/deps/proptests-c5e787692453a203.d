/root/repo/target/debug/deps/proptests-c5e787692453a203.d: crates/ltl/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c5e787692453a203.rmeta: crates/ltl/tests/proptests.rs Cargo.toml

crates/ltl/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
