/root/repo/target/debug/deps/proptest-fb7f373db37a0dc3.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fb7f373db37a0dc3.rmeta: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
