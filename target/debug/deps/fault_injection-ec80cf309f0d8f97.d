/root/repo/target/debug/deps/fault_injection-ec80cf309f0d8f97.d: tests/fault_injection.rs tests/common/mod.rs

/root/repo/target/debug/deps/fault_injection-ec80cf309f0d8f97: tests/fault_injection.rs tests/common/mod.rs

tests/fault_injection.rs:
tests/common/mod.rs:
