/root/repo/target/debug/deps/proptest-ad8bfa20dff66ead.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ad8bfa20dff66ead.rmeta: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
