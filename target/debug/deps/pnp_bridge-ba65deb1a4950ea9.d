/root/repo/target/debug/deps/pnp_bridge-ba65deb1a4950ea9.d: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

/root/repo/target/debug/deps/libpnp_bridge-ba65deb1a4950ea9.rlib: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

/root/repo/target/debug/deps/libpnp_bridge-ba65deb1a4950ea9.rmeta: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

crates/bridge/src/lib.rs:
crates/bridge/src/cars.rs:
crates/bridge/src/controllers.rs:
crates/bridge/src/designs.rs:
crates/bridge/src/props.rs:
