/root/repo/target/debug/deps/pnp_bridge-846b47d364a339bb.d: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

/root/repo/target/debug/deps/pnp_bridge-846b47d364a339bb: crates/bridge/src/lib.rs crates/bridge/src/cars.rs crates/bridge/src/controllers.rs crates/bridge/src/designs.rs crates/bridge/src/props.rs

crates/bridge/src/lib.rs:
crates/bridge/src/cars.rs:
crates/bridge/src/controllers.rs:
crates/bridge/src/designs.rs:
crates/bridge/src/props.rs:
