/root/repo/target/debug/deps/pnp-1fa9d421de5e8542.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpnp-1fa9d421de5e8542.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
