/root/repo/target/debug/deps/pnp_core-a8a917ea05ee77d0.d: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_core-a8a917ea05ee77d0.rmeta: crates/core/src/lib.rs crates/core/src/channels.rs crates/core/src/component.rs crates/core/src/diagram.rs crates/core/src/explain.rs crates/core/src/fused.rs crates/core/src/library.rs crates/core/src/ports.rs crates/core/src/pubsub.rs crates/core/src/rpc.rs crates/core/src/signals.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/channels.rs:
crates/core/src/component.rs:
crates/core/src/diagram.rs:
crates/core/src/explain.rs:
crates/core/src/fused.rs:
crates/core/src/library.rs:
crates/core/src/ports.rs:
crates/core/src/pubsub.rs:
crates/core/src/rpc.rs:
crates/core/src/signals.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
