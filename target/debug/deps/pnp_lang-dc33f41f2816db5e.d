/root/repo/target/debug/deps/pnp_lang-dc33f41f2816db5e.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_lang-dc33f41f2816db5e.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/compile.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/report.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/compile.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
