/root/repo/target/debug/deps/spec_files-9cd75592cb911f8d.d: crates/lang/tests/spec_files.rs crates/lang/tests/../../../examples/specs/wire.pnp crates/lang/tests/../../../examples/specs/bridge_buggy.pnp crates/lang/tests/../../../examples/specs/bridge_fixed.pnp crates/lang/tests/../../../examples/specs/priority_mail.pnp crates/lang/tests/../../../examples/specs/newswire.pnp

/root/repo/target/debug/deps/spec_files-9cd75592cb911f8d: crates/lang/tests/spec_files.rs crates/lang/tests/../../../examples/specs/wire.pnp crates/lang/tests/../../../examples/specs/bridge_buggy.pnp crates/lang/tests/../../../examples/specs/bridge_fixed.pnp crates/lang/tests/../../../examples/specs/priority_mail.pnp crates/lang/tests/../../../examples/specs/newswire.pnp

crates/lang/tests/spec_files.rs:
crates/lang/tests/../../../examples/specs/wire.pnp:
crates/lang/tests/../../../examples/specs/bridge_buggy.pnp:
crates/lang/tests/../../../examples/specs/bridge_fixed.pnp:
crates/lang/tests/../../../examples/specs/priority_mail.pnp:
crates/lang/tests/../../../examples/specs/newswire.pnp:
