/root/repo/target/debug/deps/pnp_kernel-247eda166f7b317a.d: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_kernel-247eda166f7b317a.rmeta: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/dot.rs:
crates/kernel/src/explore.rs:
crates/kernel/src/expression.rs:
crates/kernel/src/liveness.rs:
crates/kernel/src/program.rs:
crates/kernel/src/reduction.rs:
crates/kernel/src/sim.rs:
crates/kernel/src/state.rs:
crates/kernel/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
