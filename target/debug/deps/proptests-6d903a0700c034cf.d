/root/repo/target/debug/deps/proptests-6d903a0700c034cf.d: crates/lang/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6d903a0700c034cf.rmeta: crates/lang/tests/proptests.rs Cargo.toml

crates/lang/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
