/root/repo/target/debug/deps/alarm_system-fddc070128236732.d: tests/alarm_system.rs Cargo.toml

/root/repo/target/debug/deps/libalarm_system-fddc070128236732.rmeta: tests/alarm_system.rs Cargo.toml

tests/alarm_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
