/root/repo/target/debug/deps/pnp_check-2aa9f8070af2529e.d: crates/lang/src/bin/pnp-check.rs

/root/repo/target/debug/deps/libpnp_check-2aa9f8070af2529e.rmeta: crates/lang/src/bin/pnp-check.rs

crates/lang/src/bin/pnp-check.rs:
