/root/repo/target/debug/deps/proptest-7043790b26b84a3c.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-7043790b26b84a3c.rlib: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-7043790b26b84a3c.rmeta: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
