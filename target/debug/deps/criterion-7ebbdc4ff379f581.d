/root/repo/target/debug/deps/criterion-7ebbdc4ff379f581.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-7ebbdc4ff379f581: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
