/root/repo/target/debug/deps/pnp_check-d37a64138a3613cf.d: crates/lang/src/bin/pnp-check.rs Cargo.toml

/root/repo/target/debug/deps/libpnp_check-d37a64138a3613cf.rmeta: crates/lang/src/bin/pnp-check.rs Cargo.toml

crates/lang/src/bin/pnp-check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
