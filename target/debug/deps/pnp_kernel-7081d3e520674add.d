/root/repo/target/debug/deps/pnp_kernel-7081d3e520674add.d: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/libpnp_kernel-7081d3e520674add.rmeta: crates/kernel/src/lib.rs crates/kernel/src/dot.rs crates/kernel/src/explore.rs crates/kernel/src/expression.rs crates/kernel/src/liveness.rs crates/kernel/src/program.rs crates/kernel/src/reduction.rs crates/kernel/src/sim.rs crates/kernel/src/state.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/dot.rs:
crates/kernel/src/explore.rs:
crates/kernel/src/expression.rs:
crates/kernel/src/liveness.rs:
crates/kernel/src/program.rs:
crates/kernel/src/reduction.rs:
crates/kernel/src/sim.rs:
crates/kernel/src/state.rs:
crates/kernel/src/trace.rs:
