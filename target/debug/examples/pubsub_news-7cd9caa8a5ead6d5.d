/root/repo/target/debug/examples/pubsub_news-7cd9caa8a5ead6d5.d: examples/pubsub_news.rs Cargo.toml

/root/repo/target/debug/examples/libpubsub_news-7cd9caa8a5ead6d5.rmeta: examples/pubsub_news.rs Cargo.toml

examples/pubsub_news.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
