/root/repo/target/debug/examples/rpc_bank-a2f1234b1378f820.d: examples/rpc_bank.rs

/root/repo/target/debug/examples/rpc_bank-a2f1234b1378f820: examples/rpc_bank.rs

examples/rpc_bank.rs:
