/root/repo/target/debug/examples/alarm_system-b84cff7c1232da56.d: examples/alarm_system.rs Cargo.toml

/root/repo/target/debug/examples/libalarm_system-b84cff7c1232da56.rmeta: examples/alarm_system.rs Cargo.toml

examples/alarm_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
