/root/repo/target/debug/examples/alarm_system-dd601940604808e7.d: examples/alarm_system.rs

/root/repo/target/debug/examples/alarm_system-dd601940604808e7: examples/alarm_system.rs

examples/alarm_system.rs:
