/root/repo/target/debug/examples/library_catalog-0cdfb57b83e943f6.d: examples/library_catalog.rs

/root/repo/target/debug/examples/library_catalog-0cdfb57b83e943f6: examples/library_catalog.rs

examples/library_catalog.rs:
