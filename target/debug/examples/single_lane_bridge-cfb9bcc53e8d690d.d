/root/repo/target/debug/examples/single_lane_bridge-cfb9bcc53e8d690d.d: examples/single_lane_bridge.rs Cargo.toml

/root/repo/target/debug/examples/libsingle_lane_bridge-cfb9bcc53e8d690d.rmeta: examples/single_lane_bridge.rs Cargo.toml

examples/single_lane_bridge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
