/root/repo/target/debug/examples/library_catalog-8ce74e39da1b716b.d: examples/library_catalog.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_catalog-8ce74e39da1b716b.rmeta: examples/library_catalog.rs Cargo.toml

examples/library_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
