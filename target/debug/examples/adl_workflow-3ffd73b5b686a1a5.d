/root/repo/target/debug/examples/adl_workflow-3ffd73b5b686a1a5.d: examples/adl_workflow.rs examples/specs/bridge_buggy.pnp Cargo.toml

/root/repo/target/debug/examples/libadl_workflow-3ffd73b5b686a1a5.rmeta: examples/adl_workflow.rs examples/specs/bridge_buggy.pnp Cargo.toml

examples/adl_workflow.rs:
examples/specs/bridge_buggy.pnp:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
