/root/repo/target/debug/examples/bridge_throughput-93b08ff7879ced8f.d: examples/bridge_throughput.rs

/root/repo/target/debug/examples/bridge_throughput-93b08ff7879ced8f: examples/bridge_throughput.rs

examples/bridge_throughput.rs:
