/root/repo/target/debug/examples/rpc_bank-449b35142e5855fc.d: examples/rpc_bank.rs Cargo.toml

/root/repo/target/debug/examples/librpc_bank-449b35142e5855fc.rmeta: examples/rpc_bank.rs Cargo.toml

examples/rpc_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
