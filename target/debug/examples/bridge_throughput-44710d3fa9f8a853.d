/root/repo/target/debug/examples/bridge_throughput-44710d3fa9f8a853.d: examples/bridge_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libbridge_throughput-44710d3fa9f8a853.rmeta: examples/bridge_throughput.rs Cargo.toml

examples/bridge_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
