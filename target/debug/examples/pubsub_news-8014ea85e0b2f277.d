/root/repo/target/debug/examples/pubsub_news-8014ea85e0b2f277.d: examples/pubsub_news.rs

/root/repo/target/debug/examples/pubsub_news-8014ea85e0b2f277: examples/pubsub_news.rs

examples/pubsub_news.rs:
