/root/repo/target/debug/examples/adl_workflow-b23012e9a8928ad1.d: examples/adl_workflow.rs examples/specs/bridge_buggy.pnp

/root/repo/target/debug/examples/adl_workflow-b23012e9a8928ad1: examples/adl_workflow.rs examples/specs/bridge_buggy.pnp

examples/adl_workflow.rs:
examples/specs/bridge_buggy.pnp:
