/root/repo/target/debug/examples/quickstart-36a6f885eac54ce1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-36a6f885eac54ce1: examples/quickstart.rs

examples/quickstart.rs:
