/root/repo/target/debug/examples/single_lane_bridge-aea5342354f69ebc.d: examples/single_lane_bridge.rs

/root/repo/target/debug/examples/single_lane_bridge-aea5342354f69ebc: examples/single_lane_bridge.rs

examples/single_lane_bridge.rs:
